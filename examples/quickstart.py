"""Quickstart: archive the paper's company database (Figs. 2-5).

Run with::

    python examples/quickstart.py

Demonstrates the whole pipeline on the running example of the paper:
define keys, merge four versions into one archive, then query it
through the ``repro.open(...)`` facade — retrieve a past version,
evaluate temporal XPath with predicate pushdown, stream the changes
between two versions, query an element's temporal history — and look
at the archive's own XML representation.
"""

import repro
from repro.core import Archive
from repro.keys import parse_key_spec
from repro.xmltree import parse_document, to_pretty_string, to_string

# 1. Keys (Sec. 3): departments are identified by name, employees by
#    (first name, last name) within their department, telephone numbers
#    by their own content, and each employee has at most one salary.
KEYS = """
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
"""

# 2. Four versions of the database (Fig. 2).
VERSIONS = [
    "<db><dept><name>finance</name></dept></db>",
    """<db><dept><name>finance</name>
         <emp><fn>Jane</fn><ln>Smith</ln></emp></dept></db>""",
    """<db><dept><name>finance</name>
         <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp></dept>
        <dept><name>marketing</name>
         <emp><fn>John</fn><ln>Doe</ln></emp></dept></db>""",
    """<db><dept><name>finance</name>
         <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
         <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal>
              <tel>123-6789</tel><tel>112-3456</tel></emp></dept></db>""",
]


def main() -> None:
    spec = parse_key_spec(KEYS)
    archive = Archive(spec)

    print("=== merging versions ===")
    for number, source in enumerate(VERSIONS, start=1):
        stats = archive.add_version(parse_document(source))
        print(
            f"version {number}: matched {stats.nodes_matched} nodes, "
            f"inserted {stats.nodes_inserted}, content changes "
            f"{stats.frontier_content_changes}"
        )

    # The facade: one queryable surface (works over paths and open
    # storage backends too — ``repro.open("archive.xml")``).
    db = repro.open(archive)

    print("\n=== retrieve version 3 ===")
    print(to_pretty_string(db.at(3).snapshot(), indent="  "))

    print("=== temporal XPath (planned, index-aware) ===")
    for emp in db.at(3).select("/db/dept[name='finance']/emp"):
        print(f"  finance employee at v3: {to_string(emp)}")
    for tel in db.at(4).select("//tel/text()"):
        print(f"  telephone at v4: {tel}")
    print("  plan:", db.explain("/db/dept[name='finance']/emp")[2].strip())

    print("\n=== what changed between versions 3 and 4? ===")
    for change in db.between(3, 4).changes():
        print(f"  {change}")

    print("\n=== temporal history (Sec. 7.2) ===")
    doe = db.history("/db/dept[name=finance]/emp[fn=John, ln=Doe]")
    print(f"John Doe (finance) exists at versions: {doe.existence.to_text()}")
    print(
        "first appeared in version "
        f"{db.first_appearance('/db/dept[name=finance]/emp[fn=John, ln=Doe]')}"
    )
    salary = db.history("/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal")
    for timestamps, content in salary.changes:
        print(f"  salary was {content!r} during versions {timestamps.to_text()}")

    print("\n=== the archive is itself XML (Fig. 5) ===")
    text = archive.to_xml_string()
    print(text if len(text) < 2000 else text[:2000] + "...")

    revived = Archive.from_xml_string(text, spec)
    assert revived.to_xml_string() == text
    print("round-trip through XML: OK")


if __name__ == "__main__":
    main()
