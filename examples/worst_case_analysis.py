"""When key-based archiving loses — and what compression recovers.

Run with::

    python examples/worst_case_analysis.py

Sec. 5.3's worst case: elements whose *key values* mutate between
versions.  A line diff records a one-line change; the key-based
archiver must treat the element as deleted and a highly similar one as
inserted, storing it twice.  This example reproduces the effect on
XMark data, shows the crossover the paper observes ("up to the points
where our archive gets about 1.2 times larger than the incremental
diff repository" the compressed archive still wins), and demonstrates
what the diff repository can *not* do well: track element identity.
"""

from repro.compress import gzip_pieces_size
from repro.compress.xmill import compressed_text_size
from repro.core import Archive
from repro.data import XMarkGenerator, xmark_key_spec
from repro.diffbase import IncrementalDiffRepository


def main() -> None:
    spec = xmark_key_spec()
    generator = XMarkGenerator(seed=13, items=50, people=25, auctions=15)
    versions = generator.versions_worst_case(8, percent=5.0)

    archive = Archive(spec)
    repo = IncrementalDiffRepository()

    print("ver   archive  V1+diffs    ratio   xmill(arc)  gzip(diffs)")
    for number, version in enumerate(versions, start=1):
        archive.add_version(version.copy())
        repo.add_version(version)
        archive_text = archive.to_xml_string()
        archive_bytes = len(archive_text.encode())
        repo_bytes = repo.total_bytes()
        xm = compressed_text_size(archive_text)
        gz = gzip_pieces_size(repo.pieces())
        marker = "  <-- compressed archive still smaller" if xm < gz else ""
        print(
            f"{number:>3}  {archive_bytes:>8}  {repo_bytes:>8}  "
            f"{archive_bytes / repo_bytes:>7.3f}  {xm:>10}  {gz:>11}{marker}"
        )

    print()
    print(
        "The raw archive pays for key mutations (each mutated element is\n"
        "stored twice), but it is the only representation that can answer:\n"
    )

    # Identity tracking: pick an item that survived all versions.
    survivors = [
        node.get_attribute("id")
        for node in versions[-1].iter_elements()
        if node.tag == "item" and node.get_attribute("id")
    ]
    for item_id in survivors:
        # Find its region by looking it up in the final version.
        for region in versions[-1].find("regions").element_children():
            if any(
                item.get_attribute("id") == item_id
                for item in region.find_all("item")
            ):
                try:
                    history = archive.history(
                        f"/site/regions/{region.tag}/item[id={item_id}]"
                    )
                except Exception:
                    continue
                if len(history.existence) == len(versions):
                    print(
                        f"  item {item_id} (region {region.tag}) existed in "
                        f"every version: {history.existence.to_text()}"
                    )
                    break
        else:
            continue
        break

    print(
        "\nA diff repository would need to replay and reason over every\n"
        "delta to answer the same question (Sec. 1's Fig. 1 problem)."
    )


if __name__ == "__main__":
    main()
