"""Archiving beyond main memory (the Swiss-Prot scenario, Sec. 6).

Run with::

    python examples/external_memory.py

Swiss-Prot versions run to hundreds of megabytes; the paper's basic
archiver is in-memory and "quickly ran out of memory on a machine with
256MB".  This example drives the external-memory archiver: the archive
lives on disk as a key-sorted event stream, incoming versions are
sorted through bounded-size runs, and the merge is a single pass over
both streams.  A deliberately tiny memory budget shows the machinery
working; the result is verified byte-identical to the in-memory
archiver's.
"""

import tempfile

from repro.core import Archive
from repro.data import SwissProtGenerator, swissprot_key_spec
from repro.storage import ExternalArchiver


def main() -> None:
    spec = swissprot_key_spec()
    generator = SwissProtGenerator(seed=7, initial_records=20)
    versions = generator.generate_versions(5)

    with tempfile.TemporaryDirectory() as directory:
        # A budget of 40 nodes per sorted run — absurdly small, to force
        # many runs and several merge phases (a real deployment would
        # use millions).
        external = ExternalArchiver(directory, spec, memory_budget=40, fan_in=4)
        in_memory = Archive(spec)

        print("=== merging versions through the external archiver ===")
        for number, version in enumerate(versions, start=1):
            stats = external.add_version(version.copy())
            in_memory.add_version(version)
            print(
                f"version {number}: matched {stats.nodes_matched}, "
                f"inserted {stats.nodes_inserted}; archive stream now "
                f"{external.archive_bytes()} bytes on disk"
            )

        print("\n=== I/O accounting (Sec. 6 analysis) ===")
        print(f"pages read:    {external.io_stats.pages_read()}")
        print(f"pages written: {external.io_stats.pages_written()}")
        print(f"page size:     {external.io_stats.page_size} bytes")

        print("\n=== verification ===")
        identical = (
            external.to_archive().to_xml_string() == in_memory.to_xml_string()
        )
        print(f"external archive identical to in-memory archive: {identical}")
        assert identical

        oldest = external.retrieve(1)
        print(
            f"retrieved version 1 from the stream: "
            f"{len(oldest.find_all('Record'))} protein records"
        )


if __name__ == "__main__":
    main()
