"""Archiving a curated scientific database (the OMIM scenario, Sec. 1).

Run with::

    python examples/curated_database.py

Generates an OMIM-like database — heavily accretive, frequently
published — archives a stretch of versions, and contrasts the storage
cost with the delta-based alternatives.  Then answers the temporal
questions the paper motivates through the ``repro.open(...)`` facade:
when did an observation first appear, and when was it last changed?
"""

import repro
from repro.compress import gzip_pieces_size
from repro.compress.xmill import compressed_text_size
from repro.core import Archive
from repro.data import OmimGenerator, omim_key_spec
from repro.diffbase import CumulativeDiffRepository, IncrementalDiffRepository
from repro.xmltree import serialized_size


def main() -> None:
    spec = omim_key_spec()
    generator = OmimGenerator(seed=42, initial_records=50)
    versions = generator.generate_versions(15)

    archive = Archive(spec)
    incremental = IncrementalDiffRepository()
    cumulative = CumulativeDiffRepository()
    for version in versions:
        archive.add_version(version.copy())
        incremental.add_version(version)
        cumulative.add_version(version)

    last = versions[-1]
    print("=== storage after 15 versions ===")
    print(f"last version alone:        {serialized_size(last):>9} bytes")
    archive_text = archive.to_xml_string()
    print(f"merged archive:            {len(archive_text.encode()):>9} bytes")
    print(f"V1 + incremental diffs:    {incremental.total_bytes():>9} bytes")
    print(f"V1 + cumulative diffs:     {cumulative.total_bytes():>9} bytes")
    print(f"gzip(V1 + inc diffs):      {gzip_pieces_size(incremental.pieces()):>9} bytes")
    print(f"xmill(archive):            {compressed_text_size(archive_text):>9} bytes")

    print("\n=== temporal queries (the ArchiveDB facade) ===")
    db = repro.open(archive)

    # When did the newest record first appear?
    records = last.find_all("Record")
    newest = records[-1].find("Num").text_content()
    print(
        f"record {newest} first appeared in version "
        f"{db.first_appearance(f'/ROOT/Record[Num={newest}]')}"
    )

    # When was some record's free text last changed?
    for record in records:
        num = record.find("Num").text_content()
        text_history = db.history(f"/ROOT/Record[Num={num}]/Text")
        if text_history.changes and len(text_history.changes) > 1:
            print(
                f"record {num}'s Text was modified "
                f"{len(text_history.changes) - 1} time(s); "
                f"current text dates from version "
                f"{db.last_change(f'/ROOT/Record[Num={num}]/Text')}"
            )
            break
    else:
        print("no record text was modified in this run")

    # A planned XPath query materializes only what it selects: the
    # key-equality predicate routes through the sorted child index.
    result = db.at(db.last_version).select(f"/ROOT/Record[Num='{newest}']/Text/text()")
    text = result.first() or ""
    print(
        f"record {newest}'s text today ({len(text)} chars) — planned query "
        f"visited {result.stats.nodes_visited()} nodes, "
        f"{result.stats.index_lookups} index lookups"
    )

    # What happened between two published versions?
    added = [c for c in db.between(5, 10).changes() if c.kind == "added"]
    print(f"versions 5 -> 10 added {len(added)} records")

    # Retrieval of an old version is a single scan of the archive.
    version_5 = db.at(5).snapshot()
    print(
        f"\nretrieved version 5: {len(version_5.find_all('Record'))} records, "
        f"{serialized_size(version_5)} bytes"
    )


if __name__ == "__main__":
    main()
