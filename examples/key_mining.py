"""Inferring keys from data (the Sec. 9 open question, answered).

Run with::

    python examples/key_mining.py

The archiver needs a key specification, which the paper assumes "are
provided by experts of the database" and asks "whether the keys can be
automatically derived, through data analysis or mining methodologies on
various versions".  This example mines keys from generated versions of
each dataset and compares them against the expert specifications of
Appendix B — then archives with the mined keys to show they work.
"""

from repro.core import Archive, documents_equivalent
from repro.data import (
    OmimGenerator,
    SwissProtGenerator,
    omim_key_spec,
)
from repro.data.company import company_versions, company_key_spec
from repro.keys import mine_keys


def show(title, mined, expert):
    print(f"=== {title} ===")
    print("mined keys:")
    for key in mined:
        print(f"  {key}")
    mined_paths = {k.absolute_target: k.key_paths for k in mined}
    agreements = sum(
        1
        for k in expert
        if mined_paths.get(k.absolute_target) == k.key_paths
    )
    print(f"agreement with the expert spec: {agreements}/{len(expert)} keys\n")


def main() -> None:
    # The running example: four versions are enough to recover the
    # published key structure (almost — with this data, ln alone already
    # identifies employees, so the miner proposes the smaller key).
    versions = company_versions()
    report = mine_keys(versions)
    show("company database", report.spec, company_key_spec())

    # OMIM: records must come out keyed by their Num accession.
    omim_versions = OmimGenerator(seed=5, initial_records=40).generate_versions(3)
    omim_report = mine_keys(omim_versions)
    show("OMIM", omim_report.spec, omim_key_spec())
    record_key = omim_report.spec.key_for(("ROOT", "Record"))
    print(f"OMIM record identity discovered: {record_key}\n")

    # Swiss-Prot: accession numbers win over incidental unique fields.
    swiss_versions = SwissProtGenerator(seed=5, initial_records=30).generate_versions(3)
    swiss_report = mine_keys(swiss_versions)
    swiss_record = swiss_report.spec.key_for(("ROOT", "Record"))
    print(f"Swiss-Prot record identity discovered: {swiss_record}")
    for note in swiss_report.notes:
        print(f"  note: {note}")

    # The acid test: archive with the mined keys and retrieve everything.
    archive = Archive(omim_report.spec)
    for version in omim_versions:
        archive.add_version(version.copy())
    ok = all(
        documents_equivalent(
            archive.retrieve(number), original, omim_report.spec
        )
        for number, original in enumerate(omim_versions, start=1)
    )
    print(f"\narchiving OMIM with mined keys: all versions retrievable = {ok}")


if __name__ == "__main__":
    main()
