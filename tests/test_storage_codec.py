"""The codec layer itself: round-trips, magic sniffing, streamed
framing — plus the pathlib.Path acceptance of every opening surface.
"""

import gzip
import pathlib

import pytest

import repro
from repro.compress import XMILL_MAGIC
from repro.data.company import COMPANY_KEY_TEXT, company_versions
from repro.keys.keyparser import parse_key_spec
from repro.storage import (
    ChunkedArchiver,
    CodecError,
    ExternalArchiver,
    FileBackend,
    create_archive,
    detect_backend_kind,
    detect_codec,
    get_codec,
    keys_location,
    manifest_location,
    open_archive,
    sniff_codec,
)
from repro.storage.codec import CODECS, GZIP, RAW, STREAM_FLUSH_BYTES, XBIN, XMILL
from repro.storage.xbin import XBIN_MAGIC
from repro.xmltree import parse_document, to_pretty_string, value_equal

DOCUMENT = (
    '<T t="1-3" storage="alternatives">\n<root>\n<T t="1-3">\n<db>\n'
    "<rec>\n<id>1</id>\n<val>x&amp;y</val>\n</rec>\n</db>\n</T>\n</root>\n</T>\n"
)


class TestCodecRegistry:
    def test_names(self):
        assert set(CODECS) == {"raw", "gzip", "xmill", "xbin"}

    def test_get_codec_accepts_name_instance_and_none(self):
        assert get_codec("gzip") is GZIP
        assert get_codec(GZIP) is GZIP
        assert get_codec(None) is RAW

    def test_unknown_codec_rejected(self):
        with pytest.raises(CodecError):
            get_codec("zstd")

    def test_detect_codec_by_magic(self):
        assert detect_codec(b"<T t=") is RAW
        assert detect_codec(b"\x1f\x8b\x08") is GZIP
        assert detect_codec(XMILL_MAGIC + b"rest") is XMILL
        assert detect_codec(XBIN_MAGIC + b"rest") is XBIN

    def test_sniff_codec_missing_file_is_raw(self, tmp_path):
        assert sniff_codec(str(tmp_path / "nowhere")) is RAW


class TestDocumentRoundTrips:
    @pytest.mark.parametrize("name", ["raw", "gzip", "xmill", "xbin"])
    def test_normal_form_text_round_trips_byte_identical(self, name):
        codec = get_codec(name)
        assert codec.decode_document(codec.encode_document(DOCUMENT)) == DOCUMENT

    @pytest.mark.parametrize("name", ["gzip", "xmill", "xbin"])
    def test_encoded_form_carries_magic(self, name):
        codec = get_codec(name)
        assert codec.encode_document(DOCUMENT).startswith(codec.magic)

    def test_xmill_round_trips_timestamp_attributes_value_equal(self):
        text = '<T t="1-4,7"><db x="&quot;q&quot;"><v>ü — ₤</v></db></T>'
        codec = get_codec("xmill")
        decoded = codec.decode_document(codec.encode_document(text))
        assert value_equal(parse_document(decoded), parse_document(text))

    def test_decode_with_wrong_codec_fails_loudly(self):
        payload = get_codec("gzip").encode_document(DOCUMENT)
        with pytest.raises(CodecError):
            get_codec("xmill").decode_document(payload)
        with pytest.raises(CodecError):
            get_codec("xmill").decode_document(b"<db/>")

    def test_corrupt_payload_fails_loudly(self):
        payload = get_codec("gzip").encode_document(DOCUMENT)
        with pytest.raises(CodecError):
            get_codec("gzip").decode_document(payload[:10])
        container = get_codec("xmill").encode_document(DOCUMENT)
        with pytest.raises(CodecError):
            get_codec("xmill").decode_document(container[: len(XMILL_MAGIC) + 2])


class TestStreamedText:
    @pytest.mark.parametrize("name", ["raw", "gzip", "xmill", "xbin"])
    def test_lines_round_trip(self, tmp_path, name):
        codec = get_codec(name)
        path = str(tmp_path / "stream.jsonl")
        lines = [f'["N", "tag{i}", "payload ü{i}"]\n' for i in range(500)]
        with codec.open_text_write(path) as handle:
            for line in lines:
                handle.write(line)
        with codec.open_text_read(path) as handle:
            assert list(handle) == lines

    def test_gzip_stream_is_gzip_on_disk_and_smaller(self, tmp_path):
        raw_path, gz_path = str(tmp_path / "raw"), str(tmp_path / "gz")
        lines = ['["N", "record", "the same line over and over"]\n'] * 2000
        for codec, path in ((RAW, raw_path), (GZIP, gz_path)):
            with codec.open_text_write(path) as handle:
                for line in lines:
                    handle.write(line)
        assert open(gz_path, "rb").read(2) == b"\x1f\x8b"
        assert (
            pathlib.Path(gz_path).stat().st_size
            < pathlib.Path(raw_path).stat().st_size / 5
        )
        # The stream is a valid gzip member end to end.
        with gzip.open(gz_path, "rt", encoding="utf-8") as handle:
            assert sum(1 for _ in handle) == 2000

    def test_framed_write_survives_flush_boundaries(self, tmp_path):
        """Writes crossing the frame-flush threshold must still decode
        to the exact same lines (Z_FULL_FLUSH framing is invisible)."""
        path = str(tmp_path / "framed")
        line = "x" * 1000 + "\n"
        count = (2 * STREAM_FLUSH_BYTES) // len(line) + 3
        with GZIP.open_text_write(path) as handle:
            for _ in range(count):
                handle.write(line)
        with GZIP.open_text_read(path) as handle:
            got = list(handle)
        assert got == [line] * count


class TestPathlibAcceptance:
    """`repro.open`, `open_archive`, `create_archive` and the location
    helpers accept `pathlib.Path` everywhere, not just `str`."""

    @pytest.fixture
    def spec(self):
        return parse_key_spec(COMPANY_KEY_TEXT)

    @pytest.mark.parametrize("kind", ["file", "chunked", "external"])
    def test_create_and_open_with_path_objects(self, tmp_path, kind):
        target = tmp_path / ("arch.xml" if kind == "file" else "arch")
        backend = create_archive(
            target, COMPANY_KEY_TEXT, kind=kind, chunk_count=3, codec="gzip"
        )
        versions = list(company_versions())
        backend.ingest_batch([v.copy() for v in versions])
        expected = to_pretty_string(backend.retrieve(2))
        backend.close()
        assert detect_backend_kind(target) == kind
        reopened = open_archive(target)  # a Path, no spec
        assert to_pretty_string(reopened.retrieve(2)) == expected

    def test_backend_constructors_accept_paths(self, tmp_path, spec):
        versions = list(company_versions())
        for backend in (
            FileBackend(tmp_path / "a.xml", spec),
            ChunkedArchiver(tmp_path / "chunked", spec, 3),
            ExternalArchiver(tmp_path / "external", spec),
        ):
            backend.add_version(versions[0].copy())
            assert backend.last_version == 1

    def test_repro_open_accepts_path(self, tmp_path):
        target = tmp_path / "arch.xml"
        backend = create_archive(target, COMPANY_KEY_TEXT, kind="file")
        backend.ingest_batch([v.copy() for v in company_versions()])
        backend.close()
        with repro.open(target) as db:
            assert db.versions().max_version() >= 1

    def test_open_archive_accepts_path_keys_file(self, tmp_path, spec):
        target = tmp_path / "arch.xml"
        backend = FileBackend(target, spec)
        backend.add_version(next(iter(company_versions())).copy())
        keys = tmp_path / "keys.txt"
        keys.write_text(COMPANY_KEY_TEXT, encoding="utf-8")
        reopened = open_archive(target, keys_file=keys)
        assert reopened.last_version == 1

    def test_location_helpers_accept_paths(self, tmp_path):
        assert manifest_location(tmp_path / "a.xml").endswith(".manifest.json")
        assert keys_location(tmp_path / "a.xml").endswith(".keys")
        assert manifest_location(tmp_path).endswith("manifest.json")
