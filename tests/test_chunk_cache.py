"""Cache-correctness drills for the decoded-chunk cache.

The cache must be invisible except in speed: byte-identical answers
with caching on or off across every backend × codec (and through the
chunk-parallel fan-out), repeat reads must actually hit, a publish
must invalidate exactly the republished chunks (token bump), and a
crashed commit must never leave an entry that shadows what a cache-free
reader would see.
"""

import os

import pytest

from repro.data.company import COMPANY_KEY_TEXT, company_versions
from repro.storage import (
    CrashPoint,
    FaultInjector,
    create_archive,
    fsck_archive,
    inject,
    open_archive,
)
from repro.storage.cache import (
    DecodedChunkCache,
    chunk_cache,
    reset_chunk_cache,
)
from repro.xmltree import to_pretty_string

BACKENDS = ["file", "chunked", "external"]
CODECS = ["raw", "gzip", "xmill", "xbin"]


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts and ends with a pristine process-wide cache."""
    reset_chunk_cache()
    yield
    reset_chunk_cache()


@pytest.fixture(scope="module")
def versions():
    return list(company_versions())


def build(tmp_path, kind, codec, versions, count=3, chunk_count=2):
    path = os.path.join(
        str(tmp_path), "archive.xml" if kind == "file" else "store"
    )
    backend = create_archive(
        path, COMPANY_KEY_TEXT, kind=kind, chunk_count=chunk_count, codec=codec
    )
    backend.ingest_batch([v.copy() for v in versions[:count]])
    backend.close()
    return path


def retrievals(backend):
    """Every stored version, pretty-printed — the identity yardstick."""
    return [
        to_pretty_string(backend.retrieve(number))
        for number in range(1, backend.last_version + 1)
    ]


class TestLruMechanics:
    def test_budget_evicts_least_recently_used(self):
        cache = DecodedChunkCache(max_bytes=25)
        for index in range(3):
            cache.put(("root", index, "t"), object(), 10)
        assert cache.evictions == 1
        assert cache.get(("root", 0, "t")) is None
        assert cache.get(("root", 2, "t")) is not None
        assert cache.used_bytes <= 25

    def test_get_freshens_against_eviction(self):
        cache = DecodedChunkCache(max_bytes=20)
        cache.put(("root", 0, "t"), object(), 10)
        cache.put(("root", 1, "t"), object(), 10)
        assert cache.get(("root", 0, "t")) is not None  # now most recent
        cache.put(("root", 2, "t"), object(), 10)
        assert cache.get(("root", 0, "t")) is not None
        assert cache.get(("root", 1, "t")) is None

    def test_oversized_entry_is_not_installed(self):
        cache = DecodedChunkCache(max_bytes=10)
        cache.put(("root", 0, "t"), object(), 11)
        assert cache.entry_count == 0 and cache.evictions == 0

    def test_zero_budget_disables(self):
        cache = DecodedChunkCache(max_bytes=0)
        assert not cache.enabled
        cache.put(("root", 0, "t"), object(), 1)
        assert cache.get(("root", 0, "t")) is None

    def test_invalidate_drops_only_that_archive(self):
        cache = DecodedChunkCache(max_bytes=100)
        cache.put(("a", 0, "t"), object(), 1)
        cache.put(("a", 1, "t"), object(), 1)
        cache.put(("b", 0, "t"), object(), 1)
        assert cache.invalidate("a") == 2
        assert cache.entry_count == 1
        assert cache.get(("b", 0, "t")) is not None


class TestHitAfterRead:
    def test_chunked_repeat_read_hits_on_one_handle(self, tmp_path, versions):
        path = build(tmp_path, "chunked", "xbin", versions)
        backend = open_archive(path, cache_reads=True)
        first = to_pretty_string(backend.retrieve(1))
        assert backend.cache_hits == 0 and backend.cache_misses > 0
        assert to_pretty_string(backend.retrieve(1)) == first
        assert backend.cache_hits > 0
        stats = backend.stats()
        assert stats.cache_hits == backend.cache_hits
        assert stats.cache_misses == backend.cache_misses
        backend.close()

    def test_file_second_handle_hits(self, tmp_path, versions):
        path = build(tmp_path, "file", "gzip", versions)
        first = open_archive(path, cache_reads=True)
        texts = retrievals(first)
        first.close()
        second = open_archive(path, cache_reads=True)
        assert retrievals(second) == texts
        assert second.cache_hits >= 1 and second.cache_misses == 0
        second.close()

    def test_external_second_handle_hits(self, tmp_path, versions):
        path = build(tmp_path, "external", "xmill", versions)
        first = open_archive(path, cache_reads=True)
        text = first.to_archive().to_xml_string()
        first.close()
        second = open_archive(path, cache_reads=True)
        assert second.to_archive().to_xml_string() == text
        assert second.cache_hits >= 1
        second.close()

    def test_default_open_does_not_cache(self, tmp_path, versions):
        path = build(tmp_path, "chunked", "raw", versions)
        backend = open_archive(path)  # recover=True → write-capable
        retrievals(backend)
        retrievals(backend)
        assert backend.cache_hits == 0 and backend.cache_misses == 0
        assert chunk_cache().entry_count == 0
        backend.close()


class TestInvalidation:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_foreign_write_bumps_token(self, tmp_path, versions, kind):
        """A writer that never touched the cache must still defeat it:
        the republished payload carries a new checksum token, so a
        warmed reader's old entries can never answer for it."""
        path = build(tmp_path, kind, "xbin", versions, count=2)
        warm = open_archive(path, cache_reads=True)
        retrievals(warm)
        if kind == "external":
            warm.to_archive()
        warm.close()
        writer = open_archive(path)  # non-caching write handle
        writer.add_version(versions[2].copy())
        writer.close()
        reader = open_archive(path, cache_reads=True)
        cached = retrievals(reader)
        assert reader.last_version == 3
        reader.close()
        reset_chunk_cache(0)  # ground truth: cache disabled
        bare = open_archive(path, cache_reads=True)
        assert retrievals(bare) == cached
        bare.close()

    def test_write_through_caching_handle_invalidates(self, tmp_path, versions):
        path = build(tmp_path, "chunked", "gzip", versions, count=2)
        backend = open_archive(path, cache_reads=True)
        retrievals(backend)
        assert chunk_cache().entry_count > 0
        backend.add_version(versions[2].copy())
        assert chunk_cache().entry_count == 0  # eager invalidation
        texts = retrievals(backend)
        backend.close()
        reset_chunk_cache(0)
        bare = open_archive(path, cache_reads=True)
        assert retrievals(bare) == texts
        bare.close()

    def test_recode_invalidates(self, tmp_path, versions):
        path = build(tmp_path, "chunked", "raw", versions)
        warm = open_archive(path, cache_reads=True)
        texts = retrievals(warm)
        warm.close()
        writer = open_archive(path)
        writer.recode("xbin")
        writer.close()
        reader = open_archive(path, cache_reads=True)
        # The very first read re-decodes fresh under the new codec — no
        # stale raw-era entry can satisfy an xbin-era token.
        first = to_pretty_string(reader.retrieve(1))
        assert reader.cache_hits == 0 and reader.cache_misses > 0
        assert [first] + retrievals(reader)[1:] == texts
        reader.close()


class TestByteIdentity:
    @pytest.mark.parametrize("kind", BACKENDS)
    @pytest.mark.parametrize("codec", CODECS)
    def test_cache_on_equals_cache_off(self, tmp_path, versions, kind, codec):
        path = build(tmp_path, kind, codec, versions)
        reset_chunk_cache(0)
        off = open_archive(path, cache_reads=True)
        expected = retrievals(off)
        off.close()
        reset_chunk_cache()
        cold = open_archive(path, cache_reads=True)
        assert retrievals(cold) == expected
        cold.close()
        warm = open_archive(path, cache_reads=True)
        assert retrievals(warm) == expected
        if kind == "external":
            # External retrievals stream events; the decoded-archive
            # seam is its to_archive() surface.
            warm.to_archive()
        assert warm.cache_hits + warm.cache_misses > 0
        warm.close()

    def test_parallel_query_fanout_matches(self, tmp_path, versions):
        path = build(tmp_path, "chunked", "xbin", versions, chunk_count=3)
        serial = open_archive(path, cache_reads=True)
        expected = retrievals(serial)
        serial.close()
        fanned = open_archive(path, workers=2, cache_reads=True)
        assert retrievals(fanned) == expected
        fanned.close()


class TestCrashSafety:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_crashed_commit_leaves_no_stale_entries(
        self, tmp_path, versions, kind
    ):
        """Warm the cache, kill an ingest at its first durable op,
        recover — a caching reader must agree byte-for-byte with a
        cache-free reader on the recovered state."""
        path = build(tmp_path, kind, "xbin", versions, count=2)
        warm = open_archive(path, cache_reads=True)
        pre = retrievals(warm)
        warm.close()
        with inject(FaultInjector().crash_at_op(0)):
            writer = None
            with pytest.raises(CrashPoint):
                writer = open_archive(path)
                writer.ingest_batch([versions[2].copy(), versions[3].copy()])
        open_archive(path).close()  # constructor-time WAL recovery
        report = fsck_archive(path)
        assert report.clean, str(report)
        cached = open_archive(path, cache_reads=True)
        answers = retrievals(cached)
        cached.close()
        reset_chunk_cache(0)
        bare = open_archive(path, cache_reads=True)
        assert retrievals(bare) == answers
        bare.close()
        assert answers == pre  # op 0 dies before any publication
