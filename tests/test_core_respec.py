"""Tests for re-archiving under a changed key structure (core.respec)."""

import pytest

from repro.core import (
    Archive,
    checkpoint_archive,
    documents_equivalent,
    rearchive,
)
from repro.data.company import company_key_spec, company_versions
from repro.keys import KeySpec, key


def company_archive():
    archive = Archive(company_key_spec())
    for version in company_versions():
        archive.add_version(version)
    return archive


class TestRearchive:
    def test_same_spec_preserves_everything(self):
        archive = company_archive()
        rebuilt = rearchive(archive, company_key_spec())
        assert rebuilt.last_version == 4
        for number in range(1, 5):
            assert documents_equivalent(
                rebuilt.retrieve(number), archive.retrieve(number), archive.spec
            )

    def test_key_structure_change(self):
        """Migrate: employees were keyed by (fn, ln); the schema now
        keys them by ln alone (valid for this data)."""
        archive = company_archive()
        new_spec = KeySpec(
            explicit_keys=[
                key("/", "db"),
                key("/db", "dept", ("name",)),
                key("/db/dept", "emp", ("ln",)),
                key("/db/dept/emp", "fn"),
                key("/db/dept/emp", "sal"),
                key("/db/dept/emp", "tel", (".",)),
            ]
        )
        rebuilt = rearchive(archive, new_spec)
        history = rebuilt.history("/db/dept[name=finance]/emp[ln=Doe]")
        assert history.existence.to_text() == "3-4"
        for number in range(1, 5):
            assert documents_equivalent(
                rebuilt.retrieve(number), archive.retrieve(number), new_spec
            )

    def test_incompatible_spec_names_failing_version(self):
        archive = company_archive()
        # Keying employees by sal fails: version 2's Jane has no sal.
        bad_spec = KeySpec(
            explicit_keys=[
                key("/", "db"),
                key("/db", "dept", ("name",)),
                key("/db/dept", "emp", ("sal",)),
                key("/db/dept/emp", "fn"),
                key("/db/dept/emp", "ln"),
                key("/db/dept/emp", "tel", (".",)),
            ]
        )
        with pytest.raises(ValueError, match="version 2"):
            rearchive(archive, bad_spec)

    def test_since_drops_old_history(self):
        archive = company_archive()
        rebuilt = rearchive(archive, company_key_spec(), since=3)
        assert rebuilt.last_version == 2
        assert documents_equivalent(
            rebuilt.retrieve(1), archive.retrieve(3), archive.spec
        )
        assert documents_equivalent(
            rebuilt.retrieve(2), archive.retrieve(4), archive.spec
        )

    def test_empty_versions_preserved(self):
        archive = Archive(company_key_spec())
        archive.add_version(company_versions()[0])
        archive.add_version(None)
        archive.add_version(company_versions()[1])
        rebuilt = rearchive(archive, company_key_spec())
        assert rebuilt.retrieve(2) is None

    def test_bad_since(self):
        archive = company_archive()
        with pytest.raises(ValueError):
            rearchive(archive, company_key_spec(), since=0)
        with pytest.raises(ValueError):
            rearchive(archive, company_key_spec(), since=9)


class TestCheckpointArchive:
    def test_keeps_last_k(self):
        archive = company_archive()
        fresh = checkpoint_archive(archive, keep_last=2)
        assert fresh.last_version == 2
        assert documents_equivalent(
            fresh.retrieve(2), archive.retrieve(4), archive.spec
        )

    def test_keep_more_than_available(self):
        archive = company_archive()
        fresh = checkpoint_archive(archive, keep_last=99)
        assert fresh.last_version == 4

    def test_checkpointing_shrinks_archive(self):
        from repro.data import OmimGenerator, omim_key_spec

        spec = omim_key_spec()
        archive = Archive(spec)
        for version in OmimGenerator(seed=2, initial_records=20).generate_versions(8):
            archive.add_version(version)
        fresh = checkpoint_archive(archive, keep_last=2)
        assert fresh.stats().serialized_bytes < archive.stats().serialized_bytes

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            checkpoint_archive(company_archive(), keep_last=0)
