"""Tests for the ``xarch`` command-line interface (repro.cli)."""

import os

import pytest

from repro.cli import main
from repro.data.company import COMPANY_KEY_TEXT, company_versions
from repro.xmltree import parse_file, write_file


@pytest.fixture
def workspace(tmp_path):
    os.makedirs(tmp_path, exist_ok=True)
    keys = tmp_path / "keys.txt"
    keys.write_text(COMPANY_KEY_TEXT, encoding="utf-8")
    for number, version in enumerate(company_versions(), start=1):
        write_file(version, str(tmp_path / f"v{number}.xml"))
    return tmp_path


def run(*argv) -> int:
    return main([str(part) for part in argv])


class TestInitAdd:
    def test_init_creates_archive_and_keys(self, workspace):
        archive = workspace / "archive.xml"
        assert run("init", archive, "--keys", workspace / "keys.txt") == 0
        assert archive.exists()
        assert (workspace / "archive.xml.keys").exists()

    def test_init_refuses_overwrite(self, workspace):
        archive = workspace / "archive.xml"
        run("init", archive, "--keys", workspace / "keys.txt")
        with pytest.raises(SystemExit):
            run("init", archive, "--keys", workspace / "keys.txt")

    def test_init_force(self, workspace, capsys):
        archive = workspace / "archive.xml"
        run("init", archive, "--keys", workspace / "keys.txt")
        run("add", archive, workspace / "v1.xml")
        assert run("init", archive, "--keys", workspace / "keys.txt", "--force") == 0
        capsys.readouterr()
        # --force reinitializes the archive; it does not adopt the old one.
        assert run("stats", archive) == 0
        assert "versions:           0" in capsys.readouterr().out

    def test_add_versions(self, workspace, capsys):
        archive = workspace / "archive.xml"
        run("init", archive, "--keys", workspace / "keys.txt")
        code = run(
            "add", archive,
            workspace / "v1.xml", workspace / "v2.xml",
            workspace / "v3.xml", workspace / "v4.xml",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "version 4" in out


@pytest.fixture
def loaded(workspace):
    archive = workspace / "archive.xml"
    run("init", archive, "--keys", workspace / "keys.txt")
    run(
        "add", archive,
        workspace / "v1.xml", workspace / "v2.xml",
        workspace / "v3.xml", workspace / "v4.xml",
    )
    return archive


class TestQueries:
    def test_get_to_file(self, loaded, tmp_path):
        out = tmp_path / "out.xml"
        assert run("get", loaded, "3", "-o", out) == 0
        document = parse_file(str(out))
        assert len(document.find_all("dept")) == 2

    def test_get_to_stdout(self, loaded, capsys):
        assert run("get", loaded, "1") == 0
        assert "<name>finance</name>" in capsys.readouterr().out

    def test_log(self, loaded, capsys):
        code = run(
            "log", loaded, "/db/dept[name=finance]/emp[fn=John, ln=Doe]"
        )
        assert code == 0
        assert "3-4" in capsys.readouterr().out

    def test_log_missing_element_clean_error(self, loaded, capsys):
        assert run("log", loaded, "/db/dept[name=hr]") == 1
        assert "xarch:" in capsys.readouterr().err

    def test_diff(self, loaded, capsys):
        assert run("diff", loaded, "3", "4") == 0
        out = capsys.readouterr().out
        assert "deleted /db/dept[name=marketing]" in out
        assert "changed" in out

    def test_stats(self, loaded, capsys):
        assert run("stats", loaded) == 0
        out = capsys.readouterr().out
        assert "versions:           4" in out


class TestIngest:
    def test_ingest_directory_creates_and_fills_archive(self, workspace, capsys):
        snapshots = workspace / "snapshots"
        os.makedirs(snapshots)
        for number, version in enumerate(company_versions(), start=1):
            write_file(version, str(snapshots / f"v{number:03d}.xml"))
        archive = workspace / "batch.xml"
        code = run("ingest", archive, snapshots, "--keys", workspace / "keys.txt")
        assert code == 0
        out = capsys.readouterr().out
        assert "ingested 4 versions" in out
        assert archive.exists()
        assert (workspace / "batch.xml.keys").exists()
        assert run("get", archive, "3") == 0

    def test_ingest_matches_add_loop(self, workspace):
        batch = workspace / "batch.xml"
        run(
            "ingest", batch,
            workspace / "v1.xml", workspace / "v2.xml",
            workspace / "v3.xml", workspace / "v4.xml",
            "--keys", workspace / "keys.txt",
        )
        loop = workspace / "loop.xml"
        run("init", loop, "--keys", workspace / "keys.txt")
        run(
            "add", loop,
            workspace / "v1.xml", workspace / "v2.xml",
            workspace / "v3.xml", workspace / "v4.xml",
        )
        assert batch.read_text() == loop.read_text()

    def test_ingest_into_existing_archive(self, loaded, workspace, capsys):
        code = run("ingest", loaded, workspace / "v4.xml")
        assert code == 0
        out = capsys.readouterr().out
        assert "version 5" in out
        assert run("get", loaded, "5") == 0

    def test_ingest_reports_skips(self, workspace, capsys):
        archive = workspace / "batch.xml"
        code = run(
            "ingest", archive,
            workspace / "v3.xml", workspace / "v3.xml",
            "--keys", workspace / "keys.txt",
        )
        assert code == 0
        assert "skipped 1 subtrees" in capsys.readouterr().out

    def test_compaction_archive_is_self_describing(self, workspace, capsys):
        """An archive written with --compaction must be read correctly
        by later invocations that do not repeat the flag: the storage
        form travels inside the archive file."""
        archive = workspace / "weave.xml"
        run(
            "ingest", archive, workspace / "v1.xml", workspace / "v2.xml",
            "--keys", workspace / "keys.txt", "--compaction",
        )
        capsys.readouterr()
        # Retrieval without the flag decodes the weaves...
        assert run("get", archive, "2") == 0
        out = capsys.readouterr().out
        assert "<fn>Jane</fn>" in out
        assert "weave-text" not in out
        # ...and a follow-up ingest without the flag merges, not corrupts.
        assert run("ingest", archive, workspace / "v3.xml") == 0
        capsys.readouterr()
        assert run("get", archive, "3") == 0
        out = capsys.readouterr().out
        assert "<sal>90K</sal>" in out
        assert "weave-text" not in out

    def test_ingest_missing_archive_without_keys(self, workspace):
        with pytest.raises(SystemExit):
            run("ingest", workspace / "absent.xml", workspace / "v1.xml")

    def test_ingest_empty_directory(self, workspace):
        empty = workspace / "empty"
        os.makedirs(empty)
        with pytest.raises(SystemExit):
            run("ingest", workspace / "batch.xml", empty,
                "--keys", workspace / "keys.txt")


class TestBackends:
    """Every subcommand must work identically on all three backends,
    auto-detected from the archive's manifest (regression: ``xarch
    log``/``diff`` previously could not target chunked or external
    archives at all)."""

    @pytest.fixture(params=["file", "chunked", "external"])
    def backend_archive(self, request, workspace):
        name = "archive.xml" if request.param == "file" else "archive.d"
        archive = workspace / name
        assert (
            run(
                "init", archive, "--keys", workspace / "keys.txt",
                "--backend", request.param,
            )
            == 0
        )
        assert (
            run(
                "add", archive,
                workspace / "v1.xml", workspace / "v2.xml",
                workspace / "v3.xml", workspace / "v4.xml",
            )
            == 0
        )
        return request.param, archive

    def test_get(self, backend_archive, capsys):
        _, archive = backend_archive
        assert run("get", archive, "1") == 0
        assert "<name>finance</name>" in capsys.readouterr().out

    def test_log(self, backend_archive, capsys):
        _, archive = backend_archive
        code = run(
            "log", archive, "/db/dept[name=finance]/emp[fn=John, ln=Doe]"
        )
        assert code == 0
        assert "3-4" in capsys.readouterr().out

    def test_log_missing_element_clean_error(self, backend_archive, capsys):
        _, archive = backend_archive
        assert run("log", archive, "/db/dept[name=hr]") == 1
        assert "xarch:" in capsys.readouterr().err

    def test_diff(self, backend_archive, capsys):
        _, archive = backend_archive
        assert run("diff", archive, "3", "4") == 0
        out = capsys.readouterr().out
        assert "deleted /db/dept[name=marketing]" in out
        assert "changed" in out

    def test_stats(self, backend_archive, capsys):
        kind, archive = backend_archive
        assert run("stats", archive) == 0
        out = capsys.readouterr().out
        assert f"backend:            {kind}" in out
        assert "versions:           4" in out

    def test_ingest_creates_backend(self, workspace, capsys):
        for kind in ("chunked", "external"):
            archive = workspace / f"batch-{kind}"
            code = run(
                "ingest", archive,
                workspace / "v1.xml", workspace / "v2.xml",
                "--keys", workspace / "keys.txt", "--backend", kind,
            )
            assert code == 0
            assert "ingested 2 versions" in capsys.readouterr().out
            assert run("get", archive, "2") == 0

    def test_get_byte_identical_across_backends(self, workspace, capsys):
        texts = {}
        for kind in ("file", "chunked", "external"):
            archive = workspace / f"xid-{kind}"
            run(
                "ingest", archive,
                workspace / "v1.xml", workspace / "v2.xml",
                workspace / "v3.xml", workspace / "v4.xml",
                "--keys", workspace / "keys.txt", "--backend", kind,
            )
            capsys.readouterr()
            assert run("get", archive, "3") == 0
            texts[kind] = capsys.readouterr().out
        assert texts["file"] == texts["chunked"] == texts["external"]

    def test_compaction_rejected_on_external(self, workspace, capsys):
        code = run(
            "ingest", workspace / "weave-ext",
            workspace / "v1.xml",
            "--keys", workspace / "keys.txt",
            "--backend", "external", "--compaction",
        )
        assert code == 1
        assert "weave" in capsys.readouterr().err
        # ...and on an *existing* external archive the flag fails just
        # as loudly instead of being silently ignored.
        archive = workspace / "plain-ext"
        run(
            "ingest", archive, workspace / "v1.xml",
            "--keys", workspace / "keys.txt", "--backend", "external",
        )
        capsys.readouterr()
        code = run("ingest", archive, workspace / "v2.xml", "--compaction")
        assert code == 1
        assert "weave" in capsys.readouterr().err


class TestMine:
    def test_mine_to_stdout(self, workspace, capsys):
        code = run("mine", workspace / "v3.xml", workspace / "v4.xml")
        assert code == 0
        out = capsys.readouterr().out
        assert "(/db, (dept, {name}))" in out

    def test_mined_keys_usable_for_init(self, workspace, tmp_path):
        mined = tmp_path / "mined.txt"
        run(
            "mine", workspace / "v1.xml", workspace / "v2.xml",
            workspace / "v3.xml", workspace / "v4.xml", "-o", mined,
        )
        archive = tmp_path / "mined-archive.xml"
        assert run("init", archive, "--keys", mined) == 0
        assert run("add", archive, workspace / "v1.xml") == 0

    def test_missing_keys_message(self, workspace, tmp_path):
        orphan = tmp_path / "no-keys.xml"
        orphan.write_text('<T t=""><root/></T>', encoding="utf-8")
        with pytest.raises(SystemExit):
            run("stats", orphan)


class TestCodecs:
    """``--codec`` at init/ingest time and ``recode`` afterwards."""

    @pytest.mark.parametrize("backend", ["file", "chunked", "external"])
    def test_init_with_codec_round_trips(self, workspace, capsys, backend):
        archive = workspace / ("store.xml" if backend == "file" else "store")
        assert (
            run(
                "init", archive, "--keys", workspace / "keys.txt",
                "--backend", backend, "--codec", "gzip",
            )
            == 0
        )
        assert "codec gzip" in capsys.readouterr().out
        run("add", archive, workspace / "v1.xml", workspace / "v2.xml")
        capsys.readouterr()
        assert run("get", archive, "2") == 0
        assert "<name>finance</name>" in capsys.readouterr().out
        assert run("stats", archive) == 0
        out = capsys.readouterr().out
        assert "codec:              gzip" in out
        assert "disk bytes:" in out and "compression ratio:" in out

    def test_recode_rewrites_in_place(self, loaded, capsys):
        assert run("get", loaded, "3") == 0
        expected = capsys.readouterr().out
        assert run("recode", loaded, "--codec", "xmill") == 0
        out = capsys.readouterr().out
        assert "raw -> xmill" in out
        assert loaded.read_bytes().startswith(b"XM\x01\x00")
        assert run("get", loaded, "3") == 0
        assert capsys.readouterr().out == expected
        # ...and back again.
        assert run("recode", loaded, "--codec", "raw") == 0
        capsys.readouterr()
        assert run("get", loaded, "3") == 0
        assert capsys.readouterr().out == expected

    def test_ingest_with_codec_creates_compressed_archive(
        self, workspace, capsys
    ):
        snapshots = workspace / "snaps"
        snapshots.mkdir()
        for number in (1, 2, 3, 4):
            (workspace / f"v{number}.xml").rename(snapshots / f"v{number}.xml")
        archive = workspace / "store"
        code = run(
            "ingest", archive, snapshots,
            "--keys", workspace / "keys.txt",
            "--backend", "chunked", "--chunks", "3", "--codec", "xmill",
        )
        assert code == 0
        capsys.readouterr()
        assert run("stats", archive) == 0
        assert "codec:              xmill" in capsys.readouterr().out

    def test_ingest_refuses_codec_change_on_existing_archive(
        self, loaded, workspace, capsys
    ):
        """Asking for a different at-rest codec on an existing archive
        must refuse (pointing at recode), not silently ignore the flag."""
        with pytest.raises(SystemExit) as excinfo:
            run("ingest", loaded, workspace / "v1.xml", "--codec", "xmill")
        assert "recode" in str(excinfo.value)
        # The archive's codec did not change.
        capsys.readouterr()
        assert run("stats", loaded) == 0
        assert "codec:              raw" in capsys.readouterr().out
        # Matching codec (or no flag) keeps working.
        assert run("ingest", loaded, workspace / "v1.xml", "--codec", "raw") == 0
        assert run("ingest", loaded, workspace / "v2.xml") == 0
