"""Tests for batched ingestion through the persistent layer.

``ChunkedArchiver.ingest_batch`` must flush chunk files identical to a
per-version ``add_version`` loop while touching each chunk only once;
``PersistentIngestor`` must keep its key/timestamp-tree indexes current
as chunks land; ``ExternalArchiver.ingest_batch`` must match the
version-at-a-time stream merge.
"""

import os

import pytest

from repro.core import Archive, documents_equivalent
from repro.data import OmimGenerator, omim_key_spec
from repro.storage import ChunkedArchiver, ExternalArchiver, PersistentIngestor


@pytest.fixture
def versions():
    return OmimGenerator(seed=13, initial_records=16).generate_versions(5)


@pytest.fixture
def spec():
    return omim_key_spec()


class TestChunkedIngestBatch:
    def test_chunk_files_identical_to_loop(self, tmp_path, versions, spec):
        batched = ChunkedArchiver(str(tmp_path / "batch"), spec, chunk_count=4)
        stats = batched.ingest_batch([v.copy() for v in versions])
        looped = ChunkedArchiver(str(tmp_path / "loop"), spec, chunk_count=4)
        for version in versions:
            looped.add_version(version.copy())
        assert batched.last_version == looped.last_version == len(versions)
        assert stats.versions == len(versions)
        for index in range(4):
            batch_path = batched._chunk_path(index)
            loop_path = looped._chunk_path(index)
            assert os.path.exists(batch_path) == os.path.exists(loop_path)
            if os.path.exists(batch_path):
                with open(batch_path) as batch_handle, open(loop_path) as loop_handle:
                    assert batch_handle.read() == loop_handle.read()

    def test_batch_skips_merge_work(self, tmp_path, versions, spec):
        archiver = ChunkedArchiver(str(tmp_path), spec, chunk_count=4)
        stats = archiver.ingest_batch([v.copy() for v in versions])
        assert stats.subtrees_skipped > 0
        assert stats.nodes_skipped > 0

    def test_batch_with_empty_versions(self, tmp_path, versions, spec):
        archiver = ChunkedArchiver(str(tmp_path), spec, chunk_count=3)
        archiver.ingest_batch([versions[0].copy(), None, versions[1].copy()])
        assert archiver.last_version == 3
        assert archiver.retrieve(2) is None
        assert documents_equivalent(archiver.retrieve(3), versions[1], spec)

    def test_consecutive_batches_resume(self, tmp_path, versions, spec):
        archiver = ChunkedArchiver(str(tmp_path), spec, chunk_count=3)
        archiver.ingest_batch([v.copy() for v in versions[:2]])
        archiver.ingest_batch([v.copy() for v in versions[2:]])
        monolithic = Archive(spec)
        for version in versions:
            monolithic.add_version(version.copy())
        for number in range(1, len(versions) + 1):
            assert documents_equivalent(
                archiver.retrieve(number), monolithic.retrieve(number), spec
            )

    def test_on_chunk_hook_fires_per_flushed_chunk(self, tmp_path, versions, spec):
        archiver = ChunkedArchiver(str(tmp_path), spec, chunk_count=4)
        seen = []
        archiver.ingest_batch(
            [v.copy() for v in versions[:2]],
            on_chunk=lambda index, archive: seen.append(
                (index, archive.version_count)
            ),
        )
        touched = [
            index
            for index in range(4)
            if os.path.exists(archiver._chunk_path(index))
        ]
        assert [index for index, _ in seen] == touched
        assert all(count == 2 for _, count in seen)


class TestPersistentIngestor:
    def test_indexed_retrieval_matches_originals(self, tmp_path, versions, spec):
        ingestor = PersistentIngestor(str(tmp_path), spec, chunk_count=4)
        ingestor.ingest_batch([v.copy() for v in versions])
        for number, original in enumerate(versions, start=1):
            document, probes = ingestor.retrieve(number)
            assert documents_equivalent(document, original, spec)
            assert probes.total() > 0

    def test_indexes_follow_across_batches(self, tmp_path, versions, spec):
        ingestor = PersistentIngestor(str(tmp_path), spec, chunk_count=4)
        ingestor.ingest_batch([v.copy() for v in versions[:2]])
        num = versions[0].find("Record").find("Num").text_content()
        before = ingestor.history(f"/ROOT/Record[Num={num}]")
        assert before.existence.max_version() == 2
        ingestor.ingest_batch([v.copy() for v in versions[2:]])
        after = ingestor.history(f"/ROOT/Record[Num={num}]")
        assert after.existence.max_version() == len(versions)

    def test_history_includes_content_changes(self, tmp_path, versions, spec):
        """Parity with ChunkedArchiver.history: the ``changes`` runs of
        a frontier element must come back, not just existence."""
        from repro.storage import ChunkedArchiver

        ingestor = PersistentIngestor(str(tmp_path / "ing"), spec, chunk_count=4)
        ingestor.ingest_batch([v.copy() for v in versions])
        chunked = ChunkedArchiver(str(tmp_path / "ref"), spec, chunk_count=4)
        for version in versions:
            chunked.add_version(version.copy())
        num = versions[0].find("Record").find("Num").text_content()
        path = f"/ROOT/Record[Num={num}]/Title"
        indexed = ingestor.history(path)
        reference = chunked.history(path)
        assert indexed.changes is not None
        assert [
            (ts.to_text(), content) for ts, content in indexed.changes
        ] == [(ts.to_text(), content) for ts, content in reference.changes]

    def test_drop_caches_readopts_lazily(self, tmp_path, versions, spec):
        ingestor = PersistentIngestor(str(tmp_path), spec, chunk_count=3)
        ingestor.ingest_batch([v.copy() for v in versions])
        ingestor.drop_caches()
        assert not ingestor._key_indexes
        document, _ = ingestor.retrieve(len(versions))
        assert documents_equivalent(document, versions[-1], spec)

    def test_restart_adopts_chunks_lazily(self, tmp_path, versions, spec):
        first = PersistentIngestor(str(tmp_path), spec, chunk_count=3)
        first.ingest_batch([v.copy() for v in versions])
        second = PersistentIngestor(str(tmp_path), spec, chunk_count=3)
        assert second.last_version == len(versions)
        document, _ = second.retrieve(len(versions))
        assert documents_equivalent(document, versions[-1], spec)

    def test_unknown_version_rejected(self, tmp_path, versions, spec):
        ingestor = PersistentIngestor(str(tmp_path), spec, chunk_count=2)
        ingestor.ingest_batch([versions[0].copy()])
        with pytest.raises(ValueError):
            ingestor.retrieve(2)


class TestExternalIngestBatch:
    def test_batch_matches_loop(self, tmp_path, versions, spec):
        batched = ExternalArchiver(str(tmp_path / "batch"), spec)
        stats = batched.ingest_batch([v.copy() for v in versions[:3]])
        looped = ExternalArchiver(str(tmp_path / "loop"), spec)
        for version in versions[:3]:
            looped.add_version(version.copy())
        assert stats.versions == 3
        assert batched.last_version == looped.last_version == 3
        for number in range(1, 4):
            assert documents_equivalent(
                batched.retrieve(number), looped.retrieve(number), spec
            )

    def test_batch_with_empty_version(self, tmp_path, versions, spec):
        archiver = ExternalArchiver(str(tmp_path), spec)
        archiver.ingest_batch([versions[0].copy(), None])
        assert archiver.last_version == 2
        assert archiver.retrieve(2) is None
