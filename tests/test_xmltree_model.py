"""Unit tests for the XML data model (repro.xmltree.model)."""

import pytest

from repro.xmltree import Attribute, Element, Text, element


class TestText:
    def test_holds_text(self):
        node = Text("hello")
        assert node.text == "hello"

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            Text(42)  # type: ignore[arg-type]

    def test_rejects_empty_text(self):
        with pytest.raises(ValueError):
            Text("")

    def test_copy_is_independent(self):
        node = Text("x")
        clone = node.copy()
        clone.text = "y"
        assert node.text == "x"


class TestAttribute:
    def test_equality_is_name_and_value(self):
        assert Attribute("a", "1") == Attribute("a", "1")
        assert Attribute("a", "1") != Attribute("a", "2")
        assert Attribute("a", "1") != Attribute("b", "1")

    def test_hashable(self):
        assert len({Attribute("a", "1"), Attribute("a", "1")}) == 1

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Attribute("", "v")


class TestElement:
    def test_append_sets_parent(self):
        parent = Element("db")
        child = parent.append(Element("dept"))
        assert child.parent is parent
        assert parent.children == [child]

    def test_rejects_bad_child(self):
        with pytest.raises(TypeError):
            Element("db").append("not a node")  # type: ignore[arg-type]

    def test_rejects_empty_tag(self):
        with pytest.raises(ValueError):
            Element("")

    def test_set_attribute_replaces(self):
        node = Element("a")
        node.set_attribute("id", "1")
        node.set_attribute("id", "2")
        assert node.get_attribute("id") == "2"
        assert len(node.attributes) == 1

    def test_get_attribute_default(self):
        assert Element("a").get_attribute("missing", "dflt") == "dflt"

    def test_remove_attribute(self):
        node = Element("a")
        node.set_attribute("id", "1")
        node.remove_attribute("id")
        assert node.get_attribute("id") is None

    def test_find_and_find_all(self):
        db = element("db", element("dept", "x"), element("dept", "y"), element("other"))
        assert db.find("dept").text_content() == "x"
        assert len(db.find_all("dept")) == 2
        assert db.find("nope") is None

    def test_text_content_concatenates_in_document_order(self):
        node = element("a", "1", element("b", "2"), "3")
        assert node.text_content() == "123"

    def test_iter_is_preorder(self):
        tree = element("a", element("b", element("c")), element("d"))
        tags = [n.tag for n in tree.iter_elements()]
        assert tags == ["a", "b", "c", "d"]

    def test_node_count_counts_attributes(self):
        node = element("a", element("b", x="1", y="2"))
        # a, b, two attributes on b
        assert node.node_count() == 4

    def test_height(self):
        assert Element("a").height() == 1
        assert element("a", element("b")).height() == 2
        assert element("a", "text").height() == 1  # T-nodes add no level
        assert element("a", element("b", element("c", "t"))).height() == 3

    def test_max_degree(self):
        tree = element("a", element("b"), element("c", element("d"), element("e"), element("f")))
        assert tree.max_degree() == 3

    def test_copy_deep(self):
        original = element("a", element("b", "text"), id="1")
        clone = original.copy()
        clone.find("b").children[0].text = "changed"
        clone.set_attribute("id", "2")
        assert original.find("b").text_content() == "text"
        assert original.get_attribute("id") == "1"


class TestElementBuilder:
    def test_strings_become_text_nodes(self):
        node = element("name", "finance")
        assert isinstance(node.children[0], Text)

    def test_kwargs_become_attributes(self):
        node = element("item", id="item1")
        assert node.get_attribute("id") == "item1"
