"""Tests for the archiver facade: merge, retrieval, history, XML round-trip."""

import pytest

from repro.core import (
    Archive,
    ArchiveError,
    ArchiveOptions,
    AttributeChangeError,
    Fingerprinter,
    documents_equivalent,
)
from repro.data.company import company_key_spec, company_version, company_versions
from repro.keys import KeySpec, empty_spec, key
from repro.xmltree import parse_document


@pytest.fixture
def spec():
    return company_key_spec()


def archive_of_company(options=None):
    archive = Archive(company_key_spec(), options)
    for version in company_versions():
        archive.add_version(version)
    return archive


class TestAddVersion:
    def test_version_numbers_advance(self, spec):
        archive = Archive(spec)
        assert archive.last_version == 0
        archive.add_version(company_version(1))
        assert archive.last_version == 1
        archive.add_version(company_version(2))
        assert archive.last_version == 2

    def test_merge_stats(self, spec):
        archive = Archive(spec)
        stats1 = archive.add_version(company_version(1))
        assert stats1.nodes_inserted >= 1
        stats2 = archive.add_version(company_version(2))
        assert stats2.nodes_inserted >= 1  # Jane Smith appears
        assert stats2.nodes_matched >= 1

    def test_empty_version(self, spec):
        archive = Archive(spec)
        archive.add_version(company_version(1))
        archive.add_version(None)
        assert archive.last_version == 2
        assert archive.retrieve(2) is None
        assert documents_equivalent(archive.retrieve(1), company_version(1), spec)

    def test_element_reappears_after_empty_version(self, spec):
        archive = Archive(spec)
        archive.add_version(company_version(1))
        archive.add_version(None)
        archive.add_version(company_version(1))
        history = archive.history("/db")
        assert history.existence.to_text() == "1,3"


class TestRetrieve:
    @pytest.mark.parametrize("compaction", [False, True])
    def test_all_versions_round_trip(self, spec, compaction):
        archive = archive_of_company(ArchiveOptions(compaction=compaction))
        for number, original in enumerate(company_versions(), start=1):
            rebuilt = archive.retrieve(number)
            assert rebuilt is not None
            assert documents_equivalent(rebuilt, original, spec)

    def test_retrieve_unknown_version_raises(self, spec):
        archive = archive_of_company()
        with pytest.raises(ArchiveError):
            archive.retrieve(99)

    def test_retrieval_does_not_mutate_archive(self, spec):
        archive = archive_of_company()
        before = archive.to_xml_string()
        archive.retrieve(3)
        assert archive.to_xml_string() == before

    def test_idempotent_merge(self, spec):
        """Merging an identical version twice stores almost nothing new."""
        archive = Archive(spec)
        archive.add_version(company_version(4))
        nodes_before = archive.root.node_count()
        archive.add_version(company_version(4))
        assert archive.root.node_count() == nodes_before
        assert documents_equivalent(archive.retrieve(2), company_version(4), spec)


class TestTimestamps:
    def test_timestamp_superset_invariant(self, spec):
        """A node's timestamp is a superset of every descendant's (Sec. 2)."""
        archive = archive_of_company()

        def check(node, inherited):
            timestamp = node.effective_timestamp(inherited)
            assert inherited.issuperset(timestamp)
            for child in node.children:
                check(child, timestamp)

        root_timestamp = archive.root.timestamp
        for child in archive.root.children:
            check(child, root_timestamp)

    def test_marketing_dept_only_version3(self):
        archive = archive_of_company()
        history = archive.history("/db/dept[name=marketing]")
        assert history.existence.to_text() == "3"

    def test_gene_continuity_preserved(self):
        """The Fig. 1 motivating example: swapped gene data keeps identity."""
        gene_spec = KeySpec(
            explicit_keys=[
                key("/", "genes"),
                key("/genes", "gene", ("id",)),
                key("/genes/gene", "name"),
                key("/genes/gene", "seq"),
                key("/genes/gene", "pos"),
            ]
        )
        v1 = parse_document(
            "<genes>"
            "<gene><id>6230</id><name>GRTM</name><seq>GTCG</seq><pos>11A52</pos></gene>"
            "<gene><id>2953</id><name>ACV2</name><seq>AGTT</seq><pos>08A96</pos></gene>"
            "</genes>"
        )
        v2 = parse_document(
            "<genes>"
            "<gene><id>2953</id><name>ACV2</name><seq>GTCG</seq><pos>11A52</pos></gene>"
            "<gene><id>6230</id><name>GRTM</name><seq>AGTT</seq><pos>08A96</pos></gene>"
            "</genes>"
        )
        archive = Archive(gene_spec)
        archive.add_version(v1)
        archive.add_version(v2)
        # Gene 6230 exists throughout — identity by key, not by position.
        assert archive.history("/genes/gene[id=6230]").existence.to_text() == "1-2"
        # Its name never changed; its sequence did.
        name_changes = archive.history("/genes/gene[id=6230]/name").changes
        assert len(name_changes) == 1
        seq_changes = archive.history("/genes/gene[id=6230]/seq").changes
        assert len(seq_changes) == 2


class TestHistory:
    def test_paper_example(self):
        """Sec. 7.2: John Doe's history is versions 3,4."""
        archive = archive_of_company()
        history = archive.history("/db/dept[name=finance]/emp[fn=John, ln=Doe]")
        assert history.existence.to_text() == "3-4"

    def test_salary_changes(self):
        archive = archive_of_company()
        history = archive.history("/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal")
        changes = [(ts.to_text(), content) for ts, content in history.changes]
        assert changes == [("3", "90K"), ("4", "95K")]

    def test_tel_keyed_by_content(self):
        archive = archive_of_company()
        history = archive.history(
            "/db/dept[name=finance]/emp[fn=Jane, ln=Smith]/tel[.=112-3456]"
        )
        assert history.existence.to_text() == "4"

    def test_missing_element_raises(self):
        archive = archive_of_company()
        with pytest.raises(ArchiveError):
            archive.history("/db/dept[name=hr]")

    def test_malformed_path_raises(self):
        archive = archive_of_company()
        with pytest.raises(ArchiveError):
            archive.history("db/dept")
        with pytest.raises(ArchiveError):
            archive.history("/db/dept[name=finance")


class TestXMLRoundTrip:
    @pytest.mark.parametrize("compaction", [False, True])
    def test_round_trip_preserves_all_versions(self, spec, compaction):
        options = ArchiveOptions(compaction=compaction)
        archive = archive_of_company(options)
        text = archive.to_xml_string()
        again = Archive.from_xml_string(text, spec, options)
        for number in range(1, 5):
            assert documents_equivalent(
                archive.retrieve(number), again.retrieve(number), spec
            )

    def test_round_trip_stable(self, spec):
        archive = archive_of_company()
        text = archive.to_xml_string()
        again = Archive.from_xml_string(text, spec)
        assert again.to_xml_string() == text

    def test_archive_is_valid_xml(self, spec):
        text = archive_of_company().to_xml_string()
        parsed = parse_document(text)
        assert parsed.tag == "T"
        assert parsed.get_attribute("t") == "1-4"

    def test_from_xml_rejects_garbage(self, spec):
        with pytest.raises(ArchiveError):
            Archive.from_xml_string("<notanarchive/>", spec)

    def test_continue_archiving_after_round_trip(self, spec):
        archive = Archive(spec)
        for version in company_versions()[:2]:
            archive.add_version(version)
        revived = Archive.from_xml_string(archive.to_xml_string(), spec)
        for version in company_versions()[2:]:
            revived.add_version(version)
        for number, original in enumerate(company_versions(), start=1):
            assert documents_equivalent(revived.retrieve(number), original, spec)


class TestFingerprints:
    def test_fingerprint_merge_equivalent(self, spec):
        plain = archive_of_company()
        fp = archive_of_company(ArchiveOptions(fingerprinter=Fingerprinter(bits=64)))
        for number in range(1, 5):
            assert documents_equivalent(
                plain.retrieve(number), fp.retrieve(number), spec
            )

    def test_weak_fingerprints_still_correct(self, spec):
        """1-bit fingerprints collide constantly; archive stays correct."""
        options = ArchiveOptions(fingerprinter=Fingerprinter(bits=1))
        archive = archive_of_company(options)
        for number, original in enumerate(company_versions(), start=1):
            assert documents_equivalent(archive.retrieve(number), original, spec)

    def test_fingerprinter_validates_bits(self):
        with pytest.raises(ValueError):
            Fingerprinter(bits=0)
        with pytest.raises(ValueError):
            Fingerprinter(bits=512)

    def test_fingerprint_respects_value_equality(self):
        fp = Fingerprinter(bits=64)
        assert fp.fingerprint("abc") == fp.fingerprint("abc")
        assert fp.fingerprint("abc") != fp.fingerprint("abd")


class TestUnkeyedDocuments:
    def test_empty_spec_sccs_degeneration(self):
        """Without keys the whole document is one frontier (Sec. 2)."""
        spec = empty_spec()
        archive = Archive(spec, ArchiveOptions(compaction=True))
        v1 = parse_document("<doc><line>a</line><line>b</line></doc>")
        v2 = parse_document("<doc><line>a</line><line>c</line></doc>")
        archive.add_version(v1)
        archive.add_version(v2)
        assert documents_equivalent(archive.retrieve(1), v1, spec)
        assert documents_equivalent(archive.retrieve(2), v2, spec)

    def test_empty_spec_shares_common_lines(self):
        spec = empty_spec()
        archive = Archive(spec, ArchiveOptions(compaction=True))
        lines_v1 = "".join(f"<line>row {i}</line>" for i in range(50))
        lines_v2 = "".join(f"<line>row {i}</line>" for i in range(51))
        archive.add_version(parse_document(f"<doc>{lines_v1}</doc>"))
        archive.add_version(parse_document(f"<doc>{lines_v2}</doc>"))
        weave = archive.root.children[0].weave
        # 51 distinct lines total, not 101: common content stored once.
        assert weave.line_count() == 51


class TestAttributes:
    def test_attributes_preserved(self):
        spec = KeySpec(
            explicit_keys=[
                key("/", "site"),
                key("/site", "item", ("id",)),
                key("/site/item", "name"),
            ]
        )
        archive = Archive(spec)
        v1 = parse_document('<site><item id="i1"><name>a</name></item></site>')
        archive.add_version(v1)
        rebuilt = archive.retrieve(1)
        assert rebuilt.find("item").get_attribute("id") == "i1"

    def test_attribute_mutation_rejected(self):
        spec = KeySpec(
            explicit_keys=[
                key("/", "site"),
                key("/site", "item", ("name",)),
            ]
        )
        archive = Archive(spec)
        archive.add_version(
            parse_document('<site><item flag="x"><name>a</name></item></site>')
        )
        with pytest.raises(AttributeChangeError):
            archive.add_version(
                parse_document('<site><item flag="y"><name>a</name></item></site>')
            )


class TestStats:
    def test_stats_shape(self):
        archive = archive_of_company()
        stats = archive.stats()
        assert stats.versions == 4
        assert stats.nodes > 10
        assert stats.stored_timestamps >= 1
        assert stats.serialized_bytes > 100
