"""Tests for Annotate Keys (Sec. 4.1) and key validation."""

import pytest

from repro.data.company import company_key_spec, company_version
from repro.keys import (
    KeyCoverageError,
    KeyLabel,
    KeyViolationError,
    annotate_keys,
    check_document,
    empty_spec,
    iter_keyed_nodes,
    key,
    KeySpec,
    satisfies,
)
from repro.xmltree import parse_document


@pytest.fixture
def spec():
    return company_key_spec()


class TestAnnotateCompany:
    def test_version4_emp_labels(self, spec):
        doc = annotate_keys(company_version(4), spec)
        emp_labels = {
            str(label)
            for node, label in iter_keyed_nodes(doc)
            if node.tag == "emp"
        }
        assert emp_labels == {
            "emp{fn=John, ln=Doe}",
            "emp{fn=Jane, ln=Smith}",
        }

    def test_dept_label(self, spec):
        doc = annotate_keys(company_version(4), spec)
        dept = doc.root.find("dept")
        assert str(doc.label(dept)) == "dept{name=finance}"

    def test_tel_keyed_by_contents(self, spec):
        doc = annotate_keys(company_version(4), spec)
        tels = [
            str(label)
            for node, label in iter_keyed_nodes(doc)
            if node.tag == "tel"
        ]
        assert "tel{.=123-4567}" in tels
        assert "tel{.=112-3456}" in tels

    def test_singleton_keys_have_empty_key(self, spec):
        doc = annotate_keys(company_version(4), spec)
        sal = doc.root.find("dept").find("emp").find("sal")
        assert doc.label(sal) == KeyLabel(tag="sal", key=())

    def test_frontier_classification(self, spec):
        doc = annotate_keys(company_version(4), spec)
        dept = doc.root.find("dept")
        emp = dept.find("emp")
        assert doc.is_frontier(dept.find("name"))
        assert doc.is_frontier(emp.find("sal"))
        assert not doc.is_frontier(emp)
        assert not doc.is_frontier(doc.root)

    def test_all_versions_annotate(self, spec):
        for number in range(1, 5):
            doc = annotate_keys(company_version(number), spec)
            assert doc.label(doc.root) is not None

    def test_same_name_different_dept_allowed(self, spec):
        # Version 3 has John Doe in both finance and marketing.
        doc = annotate_keys(company_version(3), spec)
        emps = [n for n, lab in iter_keyed_nodes(doc) if n.tag == "emp"]
        assert len(emps) == 2


class TestAnnotateViolations:
    def test_missing_key_path(self, spec):
        doc = parse_document("<db><dept><name>x</name><emp><fn>A</fn></emp></dept></db>")
        with pytest.raises(KeyViolationError):
            annotate_keys(doc, spec)

    def test_duplicate_key_path(self, spec):
        doc = parse_document(
            "<db><dept><name>x</name>"
            "<emp><fn>A</fn><fn>B</fn><ln>C</ln></emp></dept></db>"
        )
        with pytest.raises(KeyViolationError):
            annotate_keys(doc, spec)

    def test_duplicate_siblings(self, spec):
        doc = parse_document(
            "<db><dept><name>x</name>"
            "<emp><fn>A</fn><ln>B</ln></emp>"
            "<emp><fn>A</fn><ln>B</ln></emp>"
            "</dept></db>"
        )
        with pytest.raises(KeyViolationError):
            annotate_keys(doc, spec)

    def test_uncovered_node(self, spec):
        doc = parse_document(
            "<db><dept><name>x</name><mystery/></dept></db>"
        )
        with pytest.raises(KeyCoverageError):
            annotate_keys(doc, spec)

    def test_stray_text_above_frontier(self, spec):
        doc = parse_document("<db><dept>stray<name>x</name></dept></db>")
        with pytest.raises(KeyCoverageError):
            annotate_keys(doc, spec)


class TestAnnotateEdgeCases:
    def test_empty_spec_makes_root_frontier(self):
        doc = parse_document("<lines><line>a</line><line>a</line></lines>")
        annotated = annotate_keys(doc, empty_spec())
        assert annotated.is_frontier(annotated.root)

    def test_attribute_key(self):
        spec = KeySpec(explicit_keys=[key("/", "site"), key("/site", "item", ("id",))])
        doc = parse_document('<site><item id="i1"/><item id="i2"/></site>')
        annotated = annotate_keys(doc, spec)
        labels = {str(lab) for _, lab in iter_keyed_nodes(annotated) if lab.tag == "item"}
        assert labels == {"item{id=i1}", "item{id=i2}"}

    def test_content_beyond_frontier_unlabeled(self, spec):
        doc = parse_document(
            "<db><dept><name>x</name>"
            "<emp><fn>A</fn><ln>B</ln><tel><area>215</area></tel></emp>"
            "</dept></db>"
        )
        annotated = annotate_keys(doc, spec)
        tel = annotated.root.find("dept").find("emp").find("tel")
        area = tel.find("area")
        assert annotated.label(area) is None


class TestSatisfaction:
    def test_company_versions_satisfy(self, spec):
        for number in range(1, 5):
            assert satisfies(company_version(number), spec)

    def test_paper_appendix_example(self):
        # Appendix A.4: the document violates (/DB/A, {B}) but satisfies
        # (/DB/A, {C}).
        doc = parse_document(
            "<DB><A><B>1</B><C>1</C></A><A><B>1</B><C>2</C></A></DB>"
        )
        spec_b = KeySpec(explicit_keys=[key("/", "DB"), key("/DB", "A", ("B",))])
        spec_c = KeySpec(explicit_keys=[key("/", "DB"), key("/DB", "A", ("C",))])
        assert not satisfies(doc, spec_b)
        assert satisfies(doc, spec_c)

    def test_violations_carry_messages(self, spec):
        doc = parse_document(
            "<db><dept><name>x</name></dept><dept><name>x</name></dept></db>"
        )
        violations = check_document(doc, spec)
        assert violations
        assert any("share the key value" in str(v) for v in violations)

    def test_empty_key_allows_at_most_one(self):
        spec = KeySpec(explicit_keys=[key("/", "db"), key("/db", "meta")])
        doc = parse_document("<db><meta/><meta/></db>")
        assert not satisfies(doc, spec)


class TestKeyedLabelOrdering:
    def test_sort_token_orders_by_tag_first(self):
        a = KeyLabel(tag="a", key=(("k", "z"),))
        b = KeyLabel(tag="b", key=(("k", "a"),))
        assert a.sort_token() < b.sort_token()

    def test_sort_token_orders_by_value(self):
        a = KeyLabel(tag="emp", key=(("fn", "Jane"),))
        b = KeyLabel(tag="emp", key=(("fn", "John"),))
        assert a.sort_token() < b.sort_token()

    def test_fewer_components_first(self):
        a = KeyLabel(tag="emp", key=())
        b = KeyLabel(tag="emp", key=(("fn", "A"),))
        assert a.sort_token() < b.sort_token()
