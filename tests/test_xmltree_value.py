"""Tests for value equality / ordering and canonical form (Appendix A)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmltree import (
    Attribute,
    Element,
    Text,
    canonical_form,
    canonical_form_of_children,
    compare_values,
    element,
    parse_document,
    sort_by_value,
    value_equal,
    value_less,
    value_list_equal,
)


class TestValueEquality:
    def test_text_equality(self):
        assert value_equal(Text("a"), Text("a"))
        assert not value_equal(Text("a"), Text("b"))

    def test_attribute_equality(self):
        assert value_equal(Attribute("n", "v"), Attribute("n", "v"))
        assert not value_equal(Attribute("n", "v"), Attribute("n", "w"))

    def test_element_child_order_matters(self):
        a = element("e", element("x"), element("y"))
        b = element("e", element("y"), element("x"))
        assert not value_equal(a, b)

    def test_attribute_order_ignored(self):
        a = Element("e")
        a.set_attribute("p", "1")
        a.set_attribute("q", "2")
        b = Element("e")
        b.set_attribute("q", "2")
        b.set_attribute("p", "1")
        assert value_equal(a, b)

    def test_isomorphic_subtrees_equal(self):
        src = "<emp><fn>John</fn><ln>Doe</ln></emp>"
        assert value_equal(parse_document(src), parse_document(src))

    def test_different_kinds_unequal(self):
        assert not value_equal(Text("a"), element("a"))


class TestValueOrdering:
    def test_kind_order_t_a_e(self):
        assert value_less(Text("z"), Attribute("a", "a"))
        assert value_less(Attribute("z", "z"), Element("a"))

    def test_text_lexicographic(self):
        assert value_less(Text("abc"), Text("abd"))

    def test_element_tag_then_children(self):
        assert value_less(element("a", "2"), element("b", "1"))
        assert value_less(element("a", "1"), element("a", "2"))

    def test_shorter_child_list_first(self):
        assert value_less(element("a", element("x")), element("a", element("x"), element("y")))

    def test_total_order_consistency(self):
        values = [element("b"), Text("t"), element("a", "1"), Attribute("n", "v")]
        ordered = sort_by_value(values)
        for left, right in zip(ordered, ordered[1:]):
            assert compare_values(left, right) <= 0

    def test_value_list_equal(self):
        assert value_list_equal([Text("a"), element("b")], [Text("a"), element("b")])
        assert not value_list_equal([Text("a")], [Text("a"), Text("b")])


class TestCanonicalForm:
    def test_equal_values_equal_canonical(self):
        a = parse_document("<e q='2' p='1'><x/>t</e>")
        b = parse_document("<e p='1' q='2'><x/>t</e>")
        assert canonical_form(a) == canonical_form(b)

    def test_distinct_values_distinct_canonical(self):
        a = parse_document("<e><x/></e>")
        b = parse_document("<e><y/></e>")
        assert canonical_form(a) != canonical_form(b)

    def test_empty_element_vs_empty_text_distinct(self):
        a = parse_document("<e><x/></e>")
        b = parse_document("<e><x></x></e>")
        # <x/> and <x></x> are the same value.
        assert canonical_form(a) == canonical_form(b)

    def test_content_form_ignores_enclosing_tag(self):
        a = parse_document("<outer1><x/>t</outer1>")
        b = parse_document("<outer2><x/>t</outer2>")
        assert canonical_form_of_children(a) == canonical_form_of_children(b)

    def test_escaping_prevents_collisions(self):
        a = element("e", "<x/>")          # text that looks like markup
        b = element("e", element("x"))    # actual markup
        assert canonical_form(a) != canonical_form(b)


# -- property-based tests ----------------------------------------------------

_tags = st.sampled_from(["a", "b", "c", "d"])
_texts = st.text(alphabet="xyz<&\"'", min_size=1, max_size=6)


def _trees(depth: int = 3):
    if depth == 0:
        return st.builds(lambda t: element("leaf", t), _texts)
    return st.deferred(
        lambda: st.builds(
            lambda tag, kids, attr: _with_attr(element(tag, *kids), attr),
            _tags,
            st.lists(st.one_of(st.builds(Text, _texts), _trees(depth - 1)), max_size=3),
            st.one_of(st.none(), st.tuples(st.sampled_from(["p", "q"]), _texts)),
        )
    )


def _with_attr(node, attr):
    if attr is not None:
        node.set_attribute(*attr)
    return node


class TestValueProperties:
    @given(_trees())
    @settings(max_examples=60, deadline=None)
    def test_equality_reflexive(self, tree):
        assert value_equal(tree, tree.copy())

    @given(_trees(), _trees())
    @settings(max_examples=60, deadline=None)
    def test_canonical_iff_value_equal(self, a, b):
        assert (canonical_form(a) == canonical_form(b)) == value_equal(a, b)

    @given(_trees(), _trees())
    @settings(max_examples=60, deadline=None)
    def test_antisymmetry(self, a, b):
        if value_less(a, b):
            assert not value_less(b, a)

    @given(_trees(), _trees(), _trees())
    @settings(max_examples=40, deadline=None)
    def test_transitivity(self, a, b, c):
        if compare_values(a, b) <= 0 and compare_values(b, c) <= 0:
            assert compare_values(a, c) <= 0

    @given(_trees())
    @settings(max_examples=40, deadline=None)
    def test_parse_serialize_preserves_value(self, tree):
        from repro.xmltree import to_string

        assert value_equal(tree, parse_document(to_string(tree)))
