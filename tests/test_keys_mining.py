"""Tests for key inference (keys.mining) — Sec. 9's open question."""

import pytest

from repro.core import Archive, documents_equivalent
from repro.data import (
    OmimGenerator,
    SwissProtGenerator,
    XMarkGenerator,
)
from repro.data.company import company_versions
from repro.keys import mine_keys, satisfies
from repro.xmltree import parse_document


class TestMineCompany:
    def test_mined_spec_satisfied_by_all_versions(self):
        versions = company_versions()
        report = mine_keys(versions)
        for version in versions:
            assert satisfies(version, report.spec)

    def test_mined_spec_archives_faithfully(self):
        versions = company_versions()
        report = mine_keys(versions)
        archive = Archive(report.spec)
        for version in versions:
            archive.add_version(version.copy())
        for number, original in enumerate(versions, start=1):
            assert documents_equivalent(
                archive.retrieve(number), original, report.spec
            )

    def test_dept_keyed_by_name(self):
        report = mine_keys(company_versions())
        dept_key = report.spec.key_for(("db", "dept"))
        assert dept_key.key_paths == (("name",),)

    def test_tel_keyed_by_content(self):
        report = mine_keys(company_versions())
        tel_key = report.spec.key_for(("db", "dept", "emp", "tel"))
        assert tel_key.key_paths == ((),)


class TestMineDatasets:
    def test_omim_record_keyed_by_num(self):
        versions = OmimGenerator(seed=3, initial_records=15).generate_versions(3)
        report = mine_keys(versions)
        record_key = report.spec.key_for(("ROOT", "Record"))
        assert record_key.key_paths == (("Num",),)
        for version in versions:
            assert satisfies(version, report.spec)

    def test_swissprot_record_keyed_by_accession(self):
        versions = SwissProtGenerator(seed=2, initial_records=30).generate_versions(3)
        report = mine_keys(versions)
        record_key = report.spec.key_for(("ROOT", "Record"))
        # pac and id are both valid globally-unique short identifiers.
        assert record_key.key_paths in ((("pac",),), (("id",),))
        for version in versions:
            assert satisfies(version, report.spec)

    def test_xmark_items_keyed_by_id_attribute(self):
        site = XMarkGenerator(seed=4, items=60, people=30, auctions=12).initial_version()
        report = mine_keys([site])
        item_key = report.spec.key_for(("site", "regions", "africa", "item"))
        assert item_key is not None
        assert item_key.key_paths == (("id",),)
        person_key = report.spec.key_for(("site", "people", "person"))
        assert person_key.key_paths == (("id",),)


class TestMineEdgeCases:
    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            mine_keys([])

    def test_rejects_mixed_roots(self):
        with pytest.raises(ValueError):
            mine_keys([parse_document("<a/>"), parse_document("<b/>")])

    def test_unkeyable_siblings_reported(self):
        doc = parse_document(
            "<doc><line>same</line><line>same</line></doc>"
        )
        report = mine_keys([doc])
        assert ("doc", "line") in report.unkeyed_paths
        assert report.notes

    def test_composite_key_found(self):
        doc = parse_document(
            "<db>"
            "<p><fn>john</fn><ln>doe</ln></p>"
            "<p><fn>john</fn><ln>smith</ln></p>"
            "<p><fn>jane</fn><ln>doe</ln></p>"
            "</db>"
        )
        report = mine_keys([doc])
        p_key = report.spec.key_for(("db", "p"))
        assert set(p_key.key_paths) == {("fn",), ("ln",)}

    def test_stability_prefers_unchanging_candidate(self):
        """Two versions where 'version-tag' changes but 'id' does not:
        the miner must key on id."""
        v1 = parse_document(
            "<db><r><id>1</id><stamp>a</stamp></r><r><id>2</id><stamp>b</stamp></r></db>"
        )
        v2 = parse_document(
            "<db><r><id>1</id><stamp>c</stamp></r><r><id>2</id><stamp>d</stamp></r></db>"
        )
        report = mine_keys([v1, v2])
        r_key = report.spec.key_for(("db", "r"))
        assert r_key.key_paths == (("id",),)

    def test_singleton_children_get_empty_keys(self):
        doc = parse_document("<db><meta><created>x</created></meta></db>")
        report = mine_keys([doc])
        assert report.spec.key_for(("db", "meta")).key_paths == ()

    def test_single_version_suffices(self):
        report = mine_keys([company_versions()[3]])
        assert report.spec.key_for(("db", "dept")) is not None
