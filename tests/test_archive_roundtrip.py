"""Round-trip regression tests for the Fig. 5 XML representation.

``to_xml_string``/``from_xml_string`` must be inverse on the encoding's
corner cases: empty versions (a ``<T>`` root timestamp with a gap in
the database node's), deleted-then-reinserted elements (split interval
timestamps), and frontier weaves (further compaction's per-segment
``<T>`` nodes sharing the surface syntax of alternatives).
"""

import pytest

from repro.core import Archive, ArchiveOptions, documents_equivalent
from repro.keys import parse_key_spec
from repro.xmltree import parse_document

SPEC_TEXT = """
(/, (db, {}))
(/db, (rec, {id}))
(/db/rec, (id, {}))
(/db/rec, (val, {}))
"""


@pytest.fixture
def spec():
    return parse_key_spec(SPEC_TEXT)


def _doc(*pairs):
    inner = "".join(
        f"<rec><id>{rec_id}</id><val>{val}</val></rec>" for rec_id, val in pairs
    )
    return parse_document(f"<db>{inner}</db>")


def _roundtrip(archive, spec, options=None):
    """Serialize, reparse, and check the reparse reproduces the string."""
    text = archive.to_xml_string()
    reloaded = Archive.from_xml_string(text, spec, options)
    assert reloaded.to_xml_string() == text
    return reloaded


class TestEmptyVersions:
    def test_leading_trailing_and_interior_empties(self, spec):
        archive = Archive(spec)
        archive.add_version(None)
        archive.add_version(_doc(("1", "x")))
        archive.add_version(None)
        archive.add_version(_doc(("1", "x")))
        archive.add_version(None)
        reloaded = _roundtrip(archive, spec)
        assert reloaded.version_count == 5
        for version in (1, 3, 5):
            assert reloaded.retrieve(version) is None
        for version in (2, 4):
            assert documents_equivalent(
                reloaded.retrieve(version), _doc(("1", "x")), spec
            )

    def test_all_versions_empty(self, spec):
        archive = Archive(spec)
        archive.add_version(None)
        archive.add_version(None)
        reloaded = _roundtrip(archive, spec)
        assert reloaded.version_count == 2
        assert reloaded.retrieve(1) is None
        assert reloaded.retrieve(2) is None


class TestDeletedThenReinserted:
    def test_identical_reinsertion_splits_timestamp(self, spec):
        archive = Archive(spec)
        archive.add_version(_doc(("1", "x"), ("2", "y")))
        archive.add_version(_doc(("2", "y")))
        archive.add_version(_doc(("1", "x"), ("2", "y")))
        reloaded = _roundtrip(archive, spec)
        history = reloaded.history("/db/rec[id=1]")
        assert history.existence.to_text() == "1,3"
        assert documents_equivalent(
            reloaded.retrieve(3), _doc(("1", "x"), ("2", "y")), spec
        )
        assert documents_equivalent(reloaded.retrieve(2), _doc(("2", "y")), spec)

    def test_changed_reinsertion_keeps_both_contents(self, spec):
        archive = Archive(spec)
        archive.add_version(_doc(("1", "old")))
        archive.add_version(_doc(("2", "other")))
        archive.add_version(_doc(("1", "new"), ("2", "other")))
        reloaded = _roundtrip(archive, spec)
        changes = reloaded.history("/db/rec[id=1]/val").changes
        rendered = {content for _, content in changes}
        assert rendered == {"old", "new"}
        assert documents_equivalent(reloaded.retrieve(1), _doc(("1", "old")), spec)
        assert documents_equivalent(
            reloaded.retrieve(3), _doc(("1", "new"), ("2", "other")), spec
        )


class TestFrontierWeaves:
    """Further compaction stores frontier content as timestamped weave
    segments; the archive must be read back with ``compaction=True`` and
    reproduce every intermediate line state."""

    CONTENTS = [
        "alpha\nbeta\ngamma",
        "alpha\nBETA\ngamma",  # middle line rewritten
        "alpha\nBETA\ngamma\ndelta",  # line appended
        "BETA\ngamma\ndelta",  # leading line dropped
    ]

    def _weave_archive(self, spec):
        options = ArchiveOptions(compaction=True)
        archive = Archive(spec, options)
        for content in self.CONTENTS:
            archive.add_version(_doc(("1", content)))
        return archive, options

    def test_weave_round_trip_reproduces_every_version(self, spec):
        archive, options = self._weave_archive(spec)
        reloaded = _roundtrip(archive, spec, options)
        for number, content in enumerate(self.CONTENTS, start=1):
            assert documents_equivalent(
                reloaded.retrieve(number), _doc(("1", content)), spec
            )

    def test_storage_form_detected_without_options(self, spec):
        """The ``storage="weave"`` marker makes the file self-describing:
        parsing with default options must still decode the weaves."""
        archive, _ = self._weave_archive(spec)
        text = archive.to_xml_string()
        assert 'storage="weave"' in text
        reloaded = Archive.from_xml_string(text, spec)  # no options passed
        assert reloaded.options.compaction
        assert reloaded.to_xml_string() == text
        for number, content in enumerate(self.CONTENTS, start=1):
            assert documents_equivalent(
                reloaded.retrieve(number), _doc(("1", content)), spec
            )

    def test_plain_archive_overrides_stale_compaction_option(self, spec):
        """The reverse mismatch: a plain (alternatives) archive opened
        with ``compaction=True`` must not be misparsed as weaves — the
        marker wins in both directions."""
        archive = Archive(spec)
        archive.add_version(_doc(("1", "x")))
        text = archive.to_xml_string()
        assert 'storage="alternatives"' in text
        reloaded = Archive.from_xml_string(
            text, spec, ArchiveOptions(compaction=True)
        )
        assert not reloaded.options.compaction
        assert documents_equivalent(reloaded.retrieve(1), _doc(("1", "x")), spec)
        assert reloaded.to_xml_string() == text

    def test_unknown_storage_marker_rejected(self, spec):
        archive = Archive(spec)
        archive.add_version(_doc(("1", "x")))
        text = archive.to_xml_string().replace(
            'storage="alternatives"', 'storage="mystery"'
        )
        with pytest.raises(ValueError):
            Archive.from_xml_string(text, spec)

    def test_weave_with_empty_version_gap(self, spec):
        options = ArchiveOptions(compaction=True)
        archive = Archive(spec, options)
        archive.add_version(_doc(("1", "a\nb")))
        archive.add_version(None)
        archive.add_version(_doc(("1", "a\nc")))
        reloaded = _roundtrip(archive, spec, options)
        assert reloaded.retrieve(2) is None
        assert documents_equivalent(reloaded.retrieve(1), _doc(("1", "a\nb")), spec)
        assert documents_equivalent(reloaded.retrieve(3), _doc(("1", "a\nc")), spec)

    def test_reloaded_archive_merges_by_decoded_labels(self, spec):
        """Regression: key values of a parsed archive must be decoded
        from the weave encoding — a reloaded archive that labels ``rec``
        by the raw ``<T>``-wrapped serialization would terminate and
        re-insert every record on the next merge instead of matching."""
        options = ArchiveOptions(compaction=True)
        archive = Archive(spec, options)
        archive.add_version(_doc(("1", "x")))
        reloaded = Archive.from_xml_string(archive.to_xml_string(), spec, options)
        stats = reloaded.add_version(_doc(("1", "x")))
        assert stats.nodes_terminated == 0
        assert stats.nodes_inserted == 0
        sequential = Archive(spec, options)
        sequential.add_version(_doc(("1", "x")))
        sequential.add_version(_doc(("1", "x")))
        assert reloaded.to_xml_string() == sequential.to_xml_string()

    def test_batch_built_weave_round_trips(self, spec):
        """The batched path and a round trip compose under compaction."""
        options = ArchiveOptions(compaction=True)
        archive = Archive(spec, options)
        archive.add_versions(_doc(("1", content)) for content in self.CONTENTS)
        reloaded = _roundtrip(archive, spec, options)
        for number, content in enumerate(self.CONTENTS, start=1):
            assert documents_equivalent(
                reloaded.retrieve(number), _doc(("1", content)), spec
            )
