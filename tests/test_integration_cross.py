"""Cross-strategy integration: every storage strategy in the repository
must reconstruct every version of every dataset identically.

This is the capstone fidelity check: the key-based archive (plain,
fingerprinted, compacted), the external-memory archiver, the chunked
archiver, and all four delta repositories are fed the same version
sequences and compared pairwise through the key-canonical normal form.
"""


import pytest

from repro.core import Archive, ArchiveOptions, Fingerprinter, normalize_document
from repro.data import (
    OmimGenerator,
    SwissProtGenerator,
    XMarkGenerator,
    omim_key_spec,
    swissprot_key_spec,
    xmark_key_spec,
)
from repro.diffbase import (
    CheckpointedDiffRepository,
    CumulativeDiffRepository,
    FullCopyRepository,
    IncrementalDiffRepository,
)
from repro.storage import ChunkedArchiver, ExternalArchiver


def _datasets():
    return [
        (
            "omim",
            omim_key_spec(),
            OmimGenerator(seed=31, initial_records=12).generate_versions(4),
        ),
        (
            "swissprot",
            swissprot_key_spec(),
            SwissProtGenerator(seed=31, initial_records=8).generate_versions(3),
        ),
        (
            "xmark",
            xmark_key_spec(),
            XMarkGenerator(seed=31, items=15, people=8, auctions=5).versions_random(
                3, 8.0
            ),
        ),
    ]


@pytest.mark.parametrize("name,spec,versions", _datasets(), ids=lambda v: v if isinstance(v, str) else "")
def test_all_strategies_agree(name, spec, versions, tmp_path):
    # Reference: the originals, normalized.
    reference = [normalize_document(v, spec) for v in versions]

    # Archivers under every configuration.
    archives = {
        "plain": Archive(spec),
        "fingerprint": Archive(spec, ArchiveOptions(fingerprinter=Fingerprinter(bits=64))),
        "weak-fingerprint": Archive(spec, ArchiveOptions(fingerprinter=Fingerprinter(bits=2))),
        "compaction": Archive(spec, ArchiveOptions(compaction=True)),
    }
    external = ExternalArchiver(str(tmp_path / "ext"), spec, memory_budget=40, fan_in=3)
    chunked = ChunkedArchiver(str(tmp_path / "chunk"), spec, chunk_count=3)

    # Delta repositories.
    repositories = {
        "incremental": IncrementalDiffRepository(),
        "cumulative": CumulativeDiffRepository(),
        "checkpoint-2": CheckpointedDiffRepository(2),
        "full-copy": FullCopyRepository(),
    }

    for version in versions:
        for archive in archives.values():
            archive.add_version(version.copy())
        external.add_version(version.copy())
        chunked.add_version(version.copy())
        for repository in repositories.values():
            repository.add_version(version)

    for number in range(1, len(versions) + 1):
        expected = reference[number - 1]
        for label, archive in archives.items():
            got = normalize_document(archive.retrieve(number), spec)
            assert got == expected, f"{name}/{label} diverged at version {number}"
        assert normalize_document(external.retrieve(number), spec) == expected, (
            f"{name}/external diverged at version {number}"
        )
        assert normalize_document(chunked.retrieve(number), spec) == expected, (
            f"{name}/chunked diverged at version {number}"
        )
        for label, repository in repositories.items():
            got = normalize_document(repository.retrieve(number), spec)
            assert got == expected, f"{name}/{label} diverged at version {number}"


def test_archive_xml_round_trip_across_datasets(tmp_path):
    """The XML round trip holds on every dataset, not just the company
    example: parse(serialize(archive)) is byte-stable."""
    for name, spec, versions in _datasets():
        archive = Archive(spec)
        for version in versions:
            archive.add_version(version.copy())
        text = archive.to_xml_string()
        revived = Archive.from_xml_string(text, spec)
        assert revived.to_xml_string() == text, f"{name} round trip unstable"
