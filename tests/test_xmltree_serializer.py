"""Direct unit tests for the serializer (xmltree.serializer)."""

from repro.xmltree import (
    Element,
    Text,
    element,
    parse_document,
    serialized_size,
    to_pretty_string,
    to_string,
    write_file,
)


class TestCompact:
    def test_empty_element_self_closes(self):
        assert to_string(Element("a")) == "<a/>"

    def test_attributes_in_insertion_order(self):
        node = Element("a")
        node.set_attribute("z", "1")
        node.set_attribute("y", "2")
        assert to_string(node) == '<a z="1" y="2"/>'

    def test_text_escaped(self):
        assert to_string(element("t", "a<b&c>")) == "<t>a&lt;b&amp;c&gt;</t>"

    def test_attribute_quotes_escaped(self):
        node = Element("t")
        node.set_attribute("a", 'say "hi" & <go>')
        assert 'say &quot;hi&quot; &amp; &lt;go&gt;' in to_string(node)


class TestPretty:
    def test_one_line_for_text_only_elements(self):
        doc = parse_document("<db><name>finance</name></db>")
        lines = to_pretty_string(doc).rstrip("\n").split("\n")
        assert lines == ["<db>", "<name>finance</name>", "</db>"]

    def test_indentation_opt_in(self):
        doc = parse_document("<db><name>x</name></db>")
        assert "  <name>" in to_pretty_string(doc, indent="  ")

    def test_multiline_text_stays_on_one_line(self):
        """Newlines are escaped so the line form reparses exactly."""
        doc = Element("t")
        doc.append(Text("line one\nline two"))
        lines = to_pretty_string(doc).rstrip("\n").split("\n")
        assert lines == ["<t>line one&#10;line two</t>"]
        again = parse_document(to_pretty_string(doc))
        assert again.text_content() == "line one\nline two"

    def test_pretty_parses_back(self):
        doc = parse_document("<db><a>1</a><b><c>2</c>mixed</b></db>")
        again = parse_document(to_pretty_string(doc))
        assert to_string(again) == to_string(doc)


class TestSizes:
    def test_serialized_size_matches_utf8(self):
        doc = element("t", "naïve — ünïcode")
        text = to_pretty_string(doc)
        assert serialized_size(doc) == len(text.encode("utf-8"))

    def test_write_file_returns_bytes(self, tmp_path):
        doc = parse_document("<db><a>1</a></db>")
        path = tmp_path / "out.xml"
        written = write_file(doc, str(path))
        assert written == path.stat().st_size
        assert to_string(parse_document(path.read_text())) == to_string(doc)

    def test_write_file_compact(self, tmp_path):
        doc = parse_document("<db><a>1</a></db>")
        path = tmp_path / "compact.xml"
        write_file(doc, str(path), pretty=False)
        assert path.read_text() == "<db><a>1</a></db>"
