"""Tests for interval-encoded timestamps (repro.core.versionset)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VersionSet


class TestConstruction:
    def test_empty(self):
        vs = VersionSet()
        assert len(vs) == 0
        assert not vs
        assert vs.to_text() == ""

    def test_from_iterable_merges_runs(self):
        vs = VersionSet([3, 1, 2, 7, 9, 8])
        assert vs.intervals() == [(1, 3), (7, 9)]

    def test_from_intervals(self):
        vs = VersionSet.from_intervals([(1, 3), (5, 5)])
        assert list(vs) == [1, 2, 3, 5]

    def test_parse_paper_notation(self):
        vs = VersionSet.parse("1-3,5,7-9")
        assert set(vs) == {1, 2, 3, 5, 7, 8, 9}

    def test_parse_empty(self):
        assert not VersionSet.parse("")

    def test_text_round_trip(self):
        text = "1-3,5,7-9"
        assert VersionSet.parse(text).to_text() == text

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            VersionSet([0])

    def test_rejects_reversed_range(self):
        with pytest.raises(ValueError):
            VersionSet().add_range(5, 3)


class TestMutation:
    def test_add_extends_interval(self):
        vs = VersionSet([1, 2])
        vs.add(3)
        assert vs.intervals() == [(1, 3)]

    def test_add_bridges_gap(self):
        vs = VersionSet([1, 3])
        vs.add(2)
        assert vs.intervals() == [(1, 3)]

    def test_add_idempotent(self):
        vs = VersionSet([1, 2, 3])
        vs.add(2)
        assert vs.intervals() == [(1, 3)]

    def test_discard_middle_splits(self):
        vs = VersionSet([1, 2, 3])
        vs.discard(2)
        assert vs.intervals() == [(1, 1), (3, 3)]

    def test_discard_absent_noop(self):
        vs = VersionSet([1, 3])
        vs.discard(2)
        assert vs.intervals() == [(1, 1), (3, 3)]

    def test_without_is_nonmutating(self):
        vs = VersionSet([1, 2, 3])
        trimmed = vs.without(3)
        assert 3 in vs
        assert 3 not in trimmed


class TestQueries:
    def test_contains(self):
        vs = VersionSet.parse("1-3,5,7-9")
        assert 2 in vs
        assert 5 in vs
        assert 4 not in vs
        assert 10 not in vs

    def test_min_max(self):
        vs = VersionSet.parse("2-4,9")
        assert vs.min_version() == 2
        assert vs.max_version() == 9

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            VersionSet().min_version()

    def test_superset(self):
        big = VersionSet.parse("1-10")
        small = VersionSet.parse("2-4,7")
        assert big.issuperset(small)
        assert not small.issuperset(big)

    def test_superset_of_empty(self):
        assert VersionSet().issuperset(VersionSet())
        assert VersionSet([1]).issuperset(VersionSet())

    def test_interval_count(self):
        assert VersionSet.parse("1-3,5,7-9").interval_count() == 3

    def test_equality_and_hash(self):
        assert VersionSet([1, 2]) == VersionSet.parse("1-2")
        assert hash(VersionSet([1, 2])) == hash(VersionSet.parse("1-2"))


class TestAlgebra:
    def test_union(self):
        a = VersionSet.parse("1-3")
        b = VersionSet.parse("3-5,9")
        assert a.union(b).to_text() == "1-5,9"

    def test_intersection(self):
        a = VersionSet.parse("1-5")
        b = VersionSet.parse("4-8")
        assert a.intersection(b).to_text() == "4-5"

    def test_difference(self):
        a = VersionSet.parse("1-5")
        b = VersionSet.parse("2,4")
        assert a.difference(b).to_text() == "1,3,5"

    def test_copy_independent(self):
        a = VersionSet([1])
        b = a.copy()
        b.add(2)
        assert 2 not in a


class TestAdversarialText:
    """``parse``/``to_text`` inverse on interval strings a well-behaved
    writer would never emit: unsorted, overlapping, adjacent, redundant
    and whitespace-padded forms must normalize to the canonical
    encoding, and the canonical encoding must be a fixed point."""

    @pytest.mark.parametrize(
        "text, canonical",
        [
            ("9-9", "9"),  # degenerate range
            ("1-2,3-4", "1-4"),  # adjacent ranges fuse
            ("5,1-3,2", "1-3,5"),  # unsorted with overlap
            ("1-10,2-5", "1-10"),  # nested range absorbed
            ("3,3,3", "3"),  # repeats collapse
            ("2-4,4-6", "2-6"),  # overlap at boundary
            (" 1 - 3 , 7 ", "1-3,7"),  # whitespace tolerated
            ("10,9,8,7", "7-10"),  # descending singles fuse
            ("1,3,5,7", "1,3,5,7"),  # canonical already
            ("", ""),  # empty set
        ],
    )
    def test_parse_normalizes(self, text, canonical):
        assert VersionSet.parse(text).to_text() == canonical

    @pytest.mark.parametrize(
        "text",
        ["9-9", "1-2,3-4", "5,1-3,2", "1-10,2-5", "3,3,3", "2-4,4-6", ""],
    )
    def test_to_text_is_parse_inverse(self, text):
        vs = VersionSet.parse(text)
        assert VersionSet.parse(vs.to_text()) == vs
        # A second round is a fixed point.
        assert VersionSet.parse(vs.to_text()).to_text() == vs.to_text()

    def test_parse_rejects_reversed_range(self):
        with pytest.raises(ValueError):
            VersionSet.parse("5-3")

    def test_parse_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            VersionSet.parse("0-4")


class TestDiscardSplitting:
    def test_discard_interior_splits_interval(self):
        vs = VersionSet.parse("1-5")
        vs.discard(3)
        assert vs.intervals() == [(1, 2), (4, 5)]

    def test_discard_low_boundary_trims(self):
        vs = VersionSet.parse("1-5")
        vs.discard(1)
        assert vs.intervals() == [(2, 5)]

    def test_discard_high_boundary_trims(self):
        vs = VersionSet.parse("1-5")
        vs.discard(5)
        assert vs.intervals() == [(1, 4)]

    def test_discard_singleton_removes_interval(self):
        vs = VersionSet.parse("1-3,5,7-9")
        vs.discard(5)
        assert vs.intervals() == [(1, 3), (7, 9)]

    def test_repeated_discards_dissolve_interval(self):
        vs = VersionSet.parse("1-4")
        for version in (2, 3):
            vs.discard(version)
        assert vs.intervals() == [(1, 1), (4, 4)]
        vs.discard(1)
        vs.discard(4)
        assert not vs

    def test_discard_then_readd_restores(self):
        vs = VersionSet.parse("1-5")
        vs.discard(3)
        vs.add(3)
        assert vs.to_text() == "1-5"


class TestSupersetDifferenceIntervalSets:
    """``issuperset``/``difference`` over disjoint and nested interval
    sets — the shapes timestamp algebra produces when elements vanish
    and return."""

    def test_superset_nested_intervals(self):
        big = VersionSet.parse("1-10,20-30")
        nested = VersionSet.parse("3-4,22,25-27")
        assert big.issuperset(nested)
        assert not nested.issuperset(big)

    def test_superset_disjoint_intervals(self):
        a = VersionSet.parse("1-3,10-12")
        b = VersionSet.parse("5-7")
        assert not a.issuperset(b)
        assert not b.issuperset(a)

    def test_superset_straddling_gap_fails(self):
        # Every member present... except the probe spans the gap.
        a = VersionSet.parse("1-4,6-9")
        assert not a.issuperset(VersionSet.parse("4-6"))
        assert a.issuperset(VersionSet.parse("3-4,6-7"))

    def test_difference_disjoint_is_identity(self):
        a = VersionSet.parse("1-3,8-9")
        b = VersionSet.parse("5-6")
        assert a.difference(b) == a

    def test_difference_nested_punches_hole(self):
        a = VersionSet.parse("1-10")
        b = VersionSet.parse("4-6")
        assert a.difference(b).to_text() == "1-3,7-10"

    def test_difference_of_self_is_empty(self):
        a = VersionSet.parse("1-3,5,7-9")
        assert not a.difference(a)

    def test_difference_interleaved(self):
        a = VersionSet.parse("1-3,5-7,9-11")
        b = VersionSet.parse("2,6,10")
        assert a.difference(b).to_text() == "1,3,5,7,9,11"


# -- property-based ------------------------------------------------------------

_sets = st.frozensets(st.integers(min_value=1, max_value=60), max_size=25)


class TestVersionSetProperties:
    @given(_sets)
    @settings(max_examples=80, deadline=None)
    def test_set_semantics(self, values):
        vs = VersionSet(values)
        assert set(vs) == set(values)
        assert len(vs) == len(values)

    @given(_sets)
    @settings(max_examples=80, deadline=None)
    def test_text_round_trip(self, values):
        vs = VersionSet(values)
        assert VersionSet.parse(vs.to_text()) == vs

    @given(_sets)
    @settings(max_examples=80, deadline=None)
    def test_intervals_sorted_disjoint_nonadjacent(self, values):
        intervals = VersionSet(values).intervals()
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert hi1 + 1 < lo2

    @given(_sets, _sets)
    @settings(max_examples=80, deadline=None)
    def test_union_matches_sets(self, a, b):
        assert set(VersionSet(a).union(VersionSet(b))) == a | b

    @given(_sets, _sets)
    @settings(max_examples=80, deadline=None)
    def test_intersection_matches_sets(self, a, b):
        assert set(VersionSet(a).intersection(VersionSet(b))) == a & b

    @given(_sets, _sets)
    @settings(max_examples=80, deadline=None)
    def test_difference_matches_sets(self, a, b):
        assert set(VersionSet(a).difference(VersionSet(b))) == a - b

    @given(_sets, _sets)
    @settings(max_examples=80, deadline=None)
    def test_superset_matches_sets(self, a, b):
        assert VersionSet(a).issuperset(VersionSet(b)) == (a >= b)

    @given(_sets, st.integers(min_value=1, max_value=60))
    @settings(max_examples=80, deadline=None)
    def test_contains_matches_sets(self, values, probe):
        assert (probe in VersionSet(values)) == (probe in values)


# Interval-shaped inputs: wider spreads and overlapping runs, the shapes
# the linear merge paths (bulk construction, union, difference) see.
_interval_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=8),
    ).map(lambda pair: (pair[0], pair[0] + pair[1])),
    max_size=30,
)


def _members(pairs) -> set:
    return {v for lo, hi in pairs for v in range(lo, hi + 1)}


class TestIntervalAlgebraProperties:
    """The linear-merge algebra against Python set semantics, driven by
    interval lists (unsorted, overlapping, adjacent) rather than small
    member sets — the adversarial shapes for the single-pass merges."""

    @given(_interval_lists)
    @settings(max_examples=80, deadline=None)
    def test_from_intervals_matches_sets(self, pairs):
        vs = VersionSet.from_intervals(pairs)
        assert set(vs) == _members(pairs)
        assert len(vs) == len(_members(pairs))
        # Canonical invariant: sorted, disjoint, non-adjacent.
        intervals = vs.intervals()
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert hi1 + 1 < lo2

    @given(_interval_lists, _interval_lists)
    @settings(max_examples=80, deadline=None)
    def test_algebra_matches_sets(self, a_pairs, b_pairs):
        a, b = _members(a_pairs), _members(b_pairs)
        A = VersionSet.from_intervals(a_pairs)
        B = VersionSet.from_intervals(b_pairs)
        assert set(A.union(B)) == a | b
        assert set(A.intersection(B)) == a & b
        assert set(A.difference(B)) == a - b
        assert A.issuperset(B) == (a >= b)

    @given(_interval_lists, _interval_lists)
    @settings(max_examples=60, deadline=None)
    def test_algebra_results_are_canonical(self, a_pairs, b_pairs):
        A = VersionSet.from_intervals(a_pairs)
        B = VersionSet.from_intervals(b_pairs)
        for result in (A.union(B), A.intersection(B), A.difference(B)):
            assert VersionSet.parse(result.to_text()) == result
            intervals = result.intervals()
            for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
                assert hi1 + 1 < lo2

    @given(_interval_lists, _interval_lists)
    @settings(max_examples=60, deadline=None)
    def test_algebra_does_not_mutate_operands(self, a_pairs, b_pairs):
        A = VersionSet.from_intervals(a_pairs)
        B = VersionSet.from_intervals(b_pairs)
        before_a, before_b = A.intervals(), B.intervals()
        A.union(B), A.intersection(B), A.difference(B), A.issuperset(B)
        assert A.intervals() == before_a
        assert B.intervals() == before_b


_mutation_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(min_value=1, max_value=80)),
        st.tuples(st.just("discard"), st.integers(min_value=1, max_value=80)),
        st.tuples(
            st.just("add_range"),
            st.integers(min_value=1, max_value=80),
            st.integers(min_value=0, max_value=10),
        ),
    ),
    max_size=30,
)


class TestMutationProperties:
    """Interleaved mutations against a model set, probing membership and
    length after every step — this is what exercises the cached length
    and the last-probe cursor across invalidations."""

    @given(_interval_lists, _mutation_ops, st.integers(min_value=1, max_value=90))
    @settings(max_examples=80, deadline=None)
    def test_mutations_match_model(self, pairs, ops, probe):
        vs = VersionSet.from_intervals(pairs)
        model = _members(pairs)
        for op in ops:
            if op[0] == "add":
                vs.add(op[1])
                model.add(op[1])
            elif op[0] == "discard":
                vs.discard(op[1])
                model.discard(op[1])
            else:
                _, start, width = op
                vs.add_range(start, start + width)
                model.update(range(start, start + width + 1))
            assert (probe in vs) == (probe in model)
            assert (probe + 1 in vs) == (probe + 1 in model)
            assert len(vs) == len(model)
        assert set(vs) == model
        assert VersionSet.parse(vs.to_text()) == vs
