"""Property-based round-trips and corruption drills for the xbin codec.

Random archived histories — including attribute-heavy, deeply nested
and non-ASCII frontier content — must survive the parse-free binary
round-trip with a byte-identical Fig. 5 re-emission, and any damaged
container (truncated, bit-flipped, or wearing another codec's framing)
must fail as a typed :class:`~repro.storage.codec.CodecError`.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Archive, ArchiveOptions, Fingerprinter
from repro.data.company import company_key_spec
from repro.storage import xbin
from repro.storage.codec import CodecError, get_codec
from repro.xmltree import Element, Text

_names = st.sampled_from(["ann", "bob", "cat", "dän", "ève", "面"])
_words = st.sampled_from(["10K", "20K", "ü — ₤", 'q"uo&te', "<amp>"])


@st.composite
def _content_tree(draw, depth=3):
    """Arbitrary frontier content: nested elements, attributes, text."""
    if depth == 0 or draw(st.booleans()):
        return Text(draw(_words))
    element = Element(draw(st.sampled_from(["note", "деталь", "x-y"])))
    for index in range(draw(st.integers(min_value=0, max_value=2))):
        element.set_attribute(f"a{index}", draw(_words))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        element.append(draw(_content_tree(depth=depth - 1)))
    if not element.children:
        element.append(Text(draw(_words)))
    return element


@st.composite
def _employee(draw):
    return {
        "fn": draw(_names),
        "ln": draw(_names),
        "sal": draw(st.one_of(st.none(), _content_tree())),
        "tels": sorted(draw(st.sets(_words, max_size=2))),
    }


@st.composite
def _state(draw):
    dept_names = draw(st.sets(_names, max_size=3))
    state = {}
    for name in sorted(dept_names):
        employees = draw(st.lists(_employee(), max_size=3))
        state[name] = {(emp["fn"], emp["ln"]): emp for emp in employees}
    return state


def _state_to_document(state) -> Element:
    db = Element("db")
    for dept_name, employees in state.items():
        dept = db.append(Element("dept"))
        dept.append(Element("name")).append(Text(dept_name))
        for (fn, ln), emp in employees.items():
            emp_el = dept.append(Element("emp"))
            emp_el.append(Element("fn")).append(Text(fn))
            emp_el.append(Element("ln")).append(Text(ln))
            if emp["sal"] is not None:
                emp_el.append(Element("sal")).append(emp["sal"].copy())
            for tel in emp["tels"]:
                emp_el.append(Element("tel")).append(Text(tel))
    return db


_version_sequences = st.lists(_state(), min_size=1, max_size=4)

_configurations = st.sampled_from(
    [
        ArchiveOptions(),
        ArchiveOptions(compaction=True),
        ArchiveOptions(fingerprinter=Fingerprinter(bits=64)),
        ArchiveOptions(fingerprinter=Fingerprinter(bits=64), compaction=True),
    ]
)


def _build_archive(states, options) -> Archive:
    archive = Archive(company_key_spec(), options)
    for state in states:
        archive.add_version(_state_to_document(state))
    return archive


def _fixed_archive() -> Archive:
    """A small deterministic archive for the corruption drills."""
    archive = Archive(company_key_spec())
    for salary in ("10K", "20K"):
        db = Element("db")
        dept = db.append(Element("dept"))
        dept.append(Element("name")).append(Text("r&d"))
        emp = dept.append(Element("emp"))
        emp.append(Element("fn")).append(Text("ann"))
        emp.append(Element("ln")).append(Text("ü"))
        emp.append(Element("sal")).append(Text(salary))
        archive.add_version(db)
    return archive


class TestArchiveRoundTrip:
    @given(_version_sequences, _configurations)
    @settings(max_examples=40, deadline=None)
    def test_binary_round_trip_is_identity(self, states, options):
        archive = _build_archive(states, options)
        spec = company_key_spec()
        decoded = xbin.decode_archive(
            xbin.encode_archive(archive), spec, options
        )
        assert decoded.to_xml_string() == archive.to_xml_string()

    @given(_version_sequences, _configurations)
    @settings(max_examples=25, deadline=None)
    def test_document_reemission_matches_text_codecs(self, states, options):
        """decode_document re-emits the exact Fig. 5 bytes the raw codec
        stores, so fsck --deep and recode verification treat xbin
        payloads like any other codec's."""
        archive = _build_archive(states, options)
        text = archive.to_xml_string()
        encoded = xbin.encode_archive(archive)
        assert xbin.decode_document_text(encoded) == text
        assert get_codec("xbin").decode_document(encoded) == text

    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_text_blob_round_trip(self, text):
        assert xbin.decode_document_text(xbin.encode_text_blob(text)) == text


class TestCorruptionDrills:
    def test_every_truncation_is_detected(self):
        spec = company_key_spec()
        data = xbin.encode_archive(_fixed_archive())
        for cut in range(len(data)):
            with pytest.raises(CodecError):
                xbin.decode_archive(data[:cut], spec)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_bit_flip_is_detected(self, data):
        spec = company_key_spec()
        payload = bytearray(xbin.encode_archive(_fixed_archive()))
        position = data.draw(
            st.integers(min_value=0, max_value=len(payload) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        payload[position] ^= 1 << bit
        with pytest.raises(CodecError):
            xbin.decode_archive(bytes(payload), spec)

    def test_other_codecs_framing_is_rejected(self):
        spec = company_key_spec()
        text = _fixed_archive().to_xml_string()
        for name in ("raw", "gzip", "xmill"):
            with pytest.raises(CodecError):
                xbin.decode_archive(get_codec(name).encode_document(text), spec)

    def test_trailing_garbage_is_rejected(self):
        spec = company_key_spec()
        data = xbin.encode_archive(_fixed_archive())
        with pytest.raises(CodecError):
            xbin.decode_archive(data + b"\x00", spec)
