"""Tests for the XPath evaluator — including queries over archives."""

import pytest

from repro.core import Archive
from repro.data.company import company_key_spec, company_versions
from repro.xmltree import parse_document
from repro.xmltree.xpath import (
    ATTRIBUTE,
    CHILD_VALUE,
    POSITION,
    XPathError,
    XPathResult,
    evaluate,
    parse_steps,
    xpath,
    xpath_first,
)

DOC = parse_document(
    "<db>"
    "<dept><name>finance</name>"
    "<emp><fn>John</fn><ln>Doe</ln><tel>111</tel><tel>222</tel></emp>"
    "<emp><fn>Jane</fn><ln>Smith</ln></emp></dept>"
    "<dept><name>marketing</name>"
    "<emp><fn>John</fn><ln>Doe</ln></emp></dept>"
    "</db>"
)


class TestChildSteps:
    def test_simple_path(self):
        assert len(xpath(DOC, "/db/dept/emp")) == 3

    def test_root_mismatch(self):
        assert xpath(DOC, "/nope/dept") == []

    def test_wildcard(self):
        assert len(xpath(DOC, "/db/*/emp")) == 3

    def test_text_result(self):
        assert xpath(DOC, "/db/dept/name/text()") == ["finance", "marketing"]


class TestDescendantSteps:
    def test_double_slash_root(self):
        assert len(xpath(DOC, "//tel")) == 2

    def test_double_slash_mid(self):
        assert len(xpath(DOC, "/db//fn")) == 3

    def test_no_duplicates(self):
        names = xpath(DOC, "//name")
        assert len(names) == len({id(n) for n in names})


class TestPredicates:
    def test_child_value(self):
        (dept,) = xpath(DOC, "/db/dept[name='finance']")
        assert dept.find("name").text_content() == "finance"

    def test_chained(self):
        emps = xpath(DOC, "/db/dept[name='finance']/emp[fn='John'][ln='Doe']")
        assert len(emps) == 1

    def test_positional(self):
        (second,) = xpath(DOC, "/db/dept[2]")
        assert second.find("name").text_content() == "marketing"

    def test_attribute(self):
        doc = parse_document('<site><item id="i1"/><item id="i2"/></site>')
        (item,) = xpath(doc, "/site/item[@id='i2']")
        assert item.get_attribute("id") == "i2"

    def test_text_predicate(self):
        (name,) = xpath(DOC, "/db/dept/name[text()='finance']")
        assert name.text_content() == "finance"

    def test_first_helper(self):
        assert xpath_first(DOC, "/db/dept") is not None
        assert xpath_first(DOC, "/db/zzz") is None


class TestErrors:
    @pytest.mark.parametrize(
        "expression",
        [
            "dept/emp",             # relative
            "/db/dept[name=finance]",  # unquoted value
            "/db/dept[",            # unbalanced
            "/db//",                # empty step
            "/text()",              # text() with no element step
            "/db/dept[0]",          # positions are 1-based
        ],
    )
    def test_rejected(self, expression):
        with pytest.raises(XPathError):
            xpath(DOC, expression)


class TestTypedResults:
    """The XPathResult wrapper fixes the mixed list return type."""

    def test_element_result(self):
        result = evaluate(DOC, "/db/dept")
        assert isinstance(result, XPathResult)
        assert result.kind == XPathResult.ELEMENTS
        assert len(result.elements) == 2
        with pytest.raises(XPathError):
            result.strings

    def test_string_result(self):
        result = evaluate(DOC, "/db/dept/name/text()")
        assert result.kind == XPathResult.STRINGS
        assert result.strings == ["finance", "marketing"]
        with pytest.raises(XPathError):
            result.elements

    def test_sequence_protocol(self):
        result = evaluate(DOC, "/db/dept/emp")
        assert len(result) == 3
        assert result[0].tag == "emp"
        assert [node.tag for node in result] == ["emp", "emp", "emp"]
        assert result.first() is result[0]
        assert evaluate(DOC, "/db/zzz").first() is None

    def test_equality_with_lists(self):
        result = evaluate(DOC, "/db/dept/name/text()")
        assert result == ["finance", "marketing"]
        assert result == evaluate(DOC, "/db/dept/name/text()")

    def test_shim_returns_bare_list(self):
        assert isinstance(xpath(DOC, "/db/dept"), list)
        assert xpath(DOC, "/db/dept") == evaluate(DOC, "/db/dept").items


class TestStructuredSteps:
    """Steps and predicates parse into inspectable structures."""

    def test_parse_steps(self):
        steps = parse_steps("/db/dept[name='x']//emp[2][@id='a'][text()='t']")
        assert [s.axis for s in steps] == ["child", "child", "descendant"]
        dept_pred = steps[1].predicates[0]
        assert dept_pred.kind == CHILD_VALUE
        assert (dept_pred.name, dept_pred.value) == ("name", "x")
        kinds = [p.kind for p in steps[2].predicates]
        assert kinds == [POSITION, ATTRIBUTE, "text"]
        assert steps[2].predicates[0].position == 2

    def test_steps_render_back(self):
        steps = parse_steps("/db//emp[fn='John']")
        assert str(steps[0]) == "/db"
        assert str(steps[1]).startswith("//emp")


class TestQueryingArchives:
    """Sec. 8: the archive is XML, so XML query tools apply directly."""

    @pytest.fixture
    def archive_xml(self):
        archive = Archive(company_key_spec())
        for version in company_versions():
            archive.add_version(version)
        return archive.to_xml()

    def test_find_timestamp_elements(self, archive_xml):
        t_nodes = xpath(archive_xml, "//T[@t='3']")
        assert t_nodes  # the marketing dept and John's 90K salary

    def test_navigate_through_timestamps(self, archive_xml):
        salaries = xpath(archive_xml, "//sal/T/text()")
        assert set(salaries) >= {"90K", "95K"}

    def test_employees_in_archive(self, archive_xml):
        first_names = set(xpath(archive_xml, "//emp/fn/text()"))
        assert first_names == {"John", "Jane"}
