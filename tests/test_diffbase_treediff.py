"""Tests for the keyless tree diff baseline (diffbase.treediff)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffbase import (
    TreeDiffError,
    apply_tree_delta,
    tree_delta_size,
    tree_diff,
)
from repro.xmltree import Element, Text, element, parse_document, value_equal


def round_trip(old_source, new_source):
    old = parse_document(old_source)
    new = parse_document(new_source)
    delta = tree_diff(old, new)
    result = apply_tree_delta(old, delta)
    assert value_equal(result, new), (old_source, new_source)
    return delta


class TestTreeDiffRoundTrip:
    def test_identical(self):
        delta = round_trip("<db><a>1</a></db>", "<db><a>1</a></db>")
        # Only a copy op.
        assert [c.tag for c in delta.element_children()] == ["c"]

    def test_text_change(self):
        round_trip("<db><a>1</a><b>2</b></db>", "<db><a>1</a><b>3</b></db>")

    def test_insert_delete(self):
        round_trip("<db><a/></db>", "<db><a/><b/></db>")
        round_trip("<db><a/><b/></db>", "<db><b/></db>")

    def test_root_replacement(self):
        round_trip("<a><x/></a>", "<b><y/></b>")

    def test_attribute_change_forces_replacement(self):
        round_trip('<db><a id="1">x</a></db>', '<db><a id="2">x</a></db>')

    def test_deep_change_stays_local(self):
        old = "<db>" + "".join(
            f"<rec><id>{i}</id><val>stable {i}</val></rec>" for i in range(20)
        ) + "</db>"
        new = old.replace("stable 7", "changed 7")
        delta = round_trip(old, new)
        # The delta must not contain the other 19 records.
        from repro.xmltree import to_string

        text = to_string(delta)
        assert "stable 3" not in text
        assert "changed 7" in text

    def test_mixed_content(self):
        round_trip("<p>hello <b>w</b> end</p>", "<p>hello <b>w2</b> tail</p>")

    def test_empty_to_populated(self):
        round_trip("<db/>", "<db><a>1</a><b>2</b></db>")

    def test_populated_to_empty(self):
        round_trip("<db><a>1</a><b>2</b></db>", "<db/>")

    def test_apply_rejects_unknown_op(self):
        old = parse_document("<db><a/></db>")
        bad = element("tree-delta", element("zz"))
        with pytest.raises(TreeDiffError):
            apply_tree_delta(old, bad)


class TestTreeDiffSize:
    def test_tree_delta_bulkier_than_line_diff(self):
        """The paper's observation: the tree diff costs more bytes than
        line diff on line-oriented scientific records (Sec. 5)."""
        from repro.diffbase import script_size
        from repro.xmltree import to_pretty_string

        old = parse_document(
            "<db>"
            + "".join(
                f"<rec><id>{i}</id><val>value {i}</val></rec>" for i in range(30)
            )
            + "</db>"
        )
        new_source = (
            "<db>"
            + "".join(
                f"<rec><id>{i}</id><val>value {i if i != 11 else 'CHANGED'}</val></rec>"
                for i in range(30)
            )
            + "</db>"
        )
        new = parse_document(new_source)
        line_size = script_size(
            to_pretty_string(old).split("\n"), to_pretty_string(new).split("\n")
        )
        assert tree_delta_size(old, new) > line_size

    def test_no_change_is_tiny(self):
        doc = parse_document("<db><a>1</a><b>2</b><c>3</c></db>")
        assert tree_delta_size(doc, doc) < 60


_tags = st.sampled_from(["a", "b", "c"])
_texts = st.text(alphabet="xy1", min_size=1, max_size=4)


@st.composite
def _docs(draw, depth=2):
    node = Element(draw(_tags))
    if draw(st.booleans()):
        node.set_attribute("id", draw(_texts))
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if depth > 0 and draw(st.booleans()):
            node.append(draw(_docs(depth=depth - 1)))
        else:
            node.append(Text(draw(_texts)))
    return node


class TestTreeDiffProperties:
    @given(_docs(), _docs())
    @settings(max_examples=120, deadline=None)
    def test_round_trip(self, old, new):
        delta = tree_diff(old, new)
        assert value_equal(apply_tree_delta(old, delta), new)

    @given(_docs())
    @settings(max_examples=60, deadline=None)
    def test_self_diff_only_copies(self, doc):
        delta = tree_diff(doc, doc)
        kinds = {c.tag for c in delta.element_children()}
        assert kinds <= {"c"}
