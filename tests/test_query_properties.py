"""Property test: planned queries ≡ materialize-then-xpath.

Random version sequences are archived under every configuration axis —
compaction × fingerprinting × storage backend — and random expressions
from the supported XPath fragment (key-equality lookups, partial keys,
residual/unindexed predicates that exercise the scan fallback,
descendant walks, text()) are evaluated both ways.  The answers must be
identical: same cardinality, same order, byte-identical serialized
elements.
"""

import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core import Archive, ArchiveOptions, Fingerprinter
from repro.data.company import company_key_spec
from repro.storage import create_archive
from repro.xmltree import Element, Text, to_string
from repro.xmltree.xpath import evaluate

KEYS_TEXT = """
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
"""

_names = st.sampled_from(["ann", "bob", "cat"])
_salaries = st.sampled_from(["10K", "20K"])
_tels = st.sets(st.sampled_from(["111", "222", "333"]), max_size=2)


@st.composite
def _employee(draw):
    return {
        "fn": draw(_names),
        "ln": draw(_names),
        "sal": draw(st.one_of(st.none(), _salaries)),
        "tels": sorted(draw(_tels)),
    }


@st.composite
def _state(draw):
    dept_names = draw(
        st.sets(st.sampled_from(["dx", "dy", "dz"]), min_size=1, max_size=3)
    )
    state = {}
    for name in sorted(dept_names):
        employees = draw(st.lists(_employee(), max_size=3))
        unique = {}
        for emp in employees:
            unique[(emp["fn"], emp["ln"])] = emp
        state[name] = unique
    return state


def _state_to_document(state) -> Element:
    db = Element("db")
    for dept_name, employees in state.items():
        dept = db.append(Element("dept"))
        dept.append(Element("name")).append(Text(dept_name))
        for (fn, ln), emp in employees.items():
            emp_el = dept.append(Element("emp"))
            emp_el.append(Element("fn")).append(Text(fn))
            emp_el.append(Element("ln")).append(Text(ln))
            if emp["sal"] is not None:
                emp_el.append(Element("sal")).append(Text(emp["sal"]))
            for tel in emp["tels"]:
                emp_el.append(Element("tel")).append(Text(tel))
    return db


_version_sequences = st.lists(_state(), min_size=1, max_size=4)

#: Expressions spanning the plan space: index lookups, partial keys,
#: unindexed (residual/scan-fallback) predicates, wildcards, positions,
#: descendants and text() results.
_expressions = st.sampled_from(
    [
        "/db/dept",
        "/db/dept[name='dx']",
        "/db/dept[name='dy']/emp",
        "/db/dept/emp[fn='ann'][ln='bob']",
        "/db/dept/emp[fn='ann']",          # partial key: sibling scan
        "/db/dept/emp[sal='10K']",         # unindexed: scan fallback
        "/db/dept/emp[sal='10K']/tel",
        "/db/dept[2]",
        "/db/*/emp/tel",
        "/db/dept/name/text()",
        "//tel",
        "//tel[text()='111']",
        "//emp[sal='20K']/fn/text()",
        "/db/dept[name='dz']//tel",
    ]
)

_configurations = st.sampled_from(
    [
        ArchiveOptions(),
        ArchiveOptions(compaction=True),
        ArchiveOptions(fingerprinter=Fingerprinter(bits=64)),
        ArchiveOptions(fingerprinter=Fingerprinter(bits=2)),  # collisions
        ArchiveOptions(fingerprinter=Fingerprinter(bits=64), compaction=True),
    ]
)


def _rendered(items) -> list[str]:
    return [
        item if isinstance(item, str) else to_string(item) for item in items
    ]


def _assert_equivalent(db, reference_retrieve, last_version, expression):
    for version in range(1, last_version + 1):
        snapshot = reference_retrieve(version)
        expected = (
            evaluate(snapshot, expression).items if snapshot is not None else []
        )
        got = db.at(version).select(expression).all()
        assert _rendered(got) == _rendered(expected), (expression, version)


@settings(max_examples=40, deadline=None)
@given(states=_version_sequences, options=_configurations, expression=_expressions)
def test_memory_plan_matches_materialize(states, options, expression):
    archive = Archive(company_key_spec(), options)
    for state in states:
        archive.add_version(_state_to_document(state))
    db = repro.open(archive)
    _assert_equivalent(db, archive.retrieve, archive.last_version, expression)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(states=_version_sequences, expression=_expressions)
def test_backends_plan_matches_materialize(states, expression):
    documents = [_state_to_document(state) for state in states]
    for kind in ("file", "chunked", "external"):
        with tempfile.TemporaryDirectory() as root:
            path = f"{root}/arch" + (".xml" if kind == "file" else "")
            store = create_archive(path, KEYS_TEXT, kind=kind, chunk_count=3)
            store.ingest_batch(document.copy() for document in documents)
            db = store.db()
            _assert_equivalent(
                db, store.retrieve, store.last_version, expression
            )
            store.close()


@settings(max_examples=12, deadline=None)
@given(states=_version_sequences, expression=_expressions)
def test_chunked_fingerprinter_plan_matches_materialize(states, expression):
    """The fingerprinted chunked store re-sorts results into key order."""
    documents = [_state_to_document(state) for state in states]
    options = ArchiveOptions(fingerprinter=Fingerprinter(bits=64))
    with tempfile.TemporaryDirectory() as root:
        store = create_archive(
            f"{root}/arch", KEYS_TEXT, kind="chunked", chunk_count=3,
            options=options,
        )
        store.ingest_batch(document.copy() for document in documents)
        db = store.db()
        _assert_equivalent(db, store.retrieve, store.last_version, expression)
        store.close()
