"""Tests for the external-memory archiver (Sec. 6)."""

import os

import pytest

from repro.core import Archive, VersionSet, documents_equivalent
from repro.data import OmimGenerator, omim_key_spec
from repro.data.company import company_key_spec, company_versions
from repro.keys import annotate_keys
from repro.storage import (
    EventWriter,
    ExternalArchiver,
    IOStats,
    decode_event,
    encode_event,
    read_events,
    sort_version,
    write_sorted_runs,
)
from repro.storage.events import (
    ExitEvent,
    FrontierEvent,
    NodeEvent,
    version_subtree_to_events,
)
from repro.keys.annotate import KeyLabel
from repro.core.nodes import Alternative
from repro.xmltree import Text, parse_document


class TestEventCodec:
    def test_node_event_round_trip(self):
        event = NodeEvent(
            label=KeyLabel(tag="emp", key=(("fn", "John"), ("ln", "Doe"))),
            attributes=(("id", "e1"),),
            timestamp=VersionSet.parse("1-3,5"),
        )
        assert decode_event(encode_event(event)) == event

    def test_inherited_timestamp_round_trip(self):
        event = NodeEvent(label=KeyLabel(tag="db", key=()), attributes=(), timestamp=None)
        assert decode_event(encode_event(event)) == event

    def test_frontier_event_round_trip(self):
        event = FrontierEvent(
            label=KeyLabel(tag="sal", key=()),
            attributes=(),
            timestamp=VersionSet([3, 4]),
            alternatives=[
                Alternative(timestamp=VersionSet([3]), content=[Text("90K")]),
                Alternative(
                    timestamp=VersionSet([4]),
                    content=[parse_document("<x><y>deep</y></x>")],
                ),
            ],
        )
        decoded = decode_event(encode_event(event))
        assert decoded.label == event.label
        assert decoded.timestamp == event.timestamp
        assert len(decoded.alternatives) == 2
        assert decoded.alternatives[0].content[0].text == "90K"

    def test_exit_event(self):
        assert isinstance(decode_event(encode_event(ExitEvent())), ExitEvent)


class TestSortedRuns:
    def _sorted_stream_events(self, document, spec, tmp_path, budget):
        annotated = annotate_keys(document, spec)
        stats = IOStats()
        path = sort_version(annotated, str(tmp_path), budget, stats, prefix="test")
        return list(read_events(path, stats))

    def test_tiny_budget_matches_unbounded(self, tmp_path):
        """Runs with a tiny budget must merge to the same stream a direct
        sorted traversal produces."""
        spec = company_key_spec()
        document = company_versions()[3]
        annotated = annotate_keys(document, spec)

        direct_path = os.path.join(str(tmp_path), "direct.jsonl")
        stats = IOStats()
        with EventWriter(direct_path, stats) as writer:
            version_subtree_to_events(annotated.root, annotated, writer)
        direct = [encode_event(e) for e in read_events(direct_path, stats)]

        merged = [
            encode_event(e)
            for e in self._sorted_stream_events(document, spec, tmp_path, budget=3)
        ]
        assert merged == direct

    def test_run_count_scales_with_budget(self, tmp_path):
        spec = omim_key_spec()
        document = OmimGenerator(seed=1, initial_records=20).initial_version()
        annotated = annotate_keys(document, spec)
        small = write_sorted_runs(annotated, str(tmp_path), 10, IOStats(), "small")
        large = write_sorted_runs(annotated, str(tmp_path), 1000, IOStats(), "large")
        assert len(small) > len(large)

    def test_budget_validation(self, tmp_path):
        spec = company_key_spec()
        annotated = annotate_keys(company_versions()[0], spec)
        with pytest.raises(ValueError):
            write_sorted_runs(annotated, str(tmp_path), 1, IOStats())


class TestExternalArchiver:
    def test_matches_in_memory_archiver_exactly(self, tmp_path):
        spec = company_key_spec()
        external = ExternalArchiver(str(tmp_path), spec, memory_budget=4)
        in_memory = Archive(spec)
        for version in company_versions():
            external.add_version(version.copy())
            in_memory.add_version(version)
        assert external.to_archive().to_xml_string() == in_memory.to_xml_string()

    def test_retrieval(self, tmp_path):
        spec = company_key_spec()
        external = ExternalArchiver(str(tmp_path), spec, memory_budget=4)
        for version in company_versions():
            external.add_version(version.copy())
        for number, original in enumerate(company_versions(), start=1):
            assert documents_equivalent(external.retrieve(number), original, spec)

    def test_unknown_version_raises(self, tmp_path):
        external = ExternalArchiver(str(tmp_path), company_key_spec())
        external.add_version(company_versions()[0])
        with pytest.raises(ValueError):
            external.retrieve(9)

    def test_empty_version(self, tmp_path):
        spec = company_key_spec()
        external = ExternalArchiver(str(tmp_path), spec)
        external.add_version(company_versions()[0])
        external.add_version(None)
        assert external.last_version == 2
        assert external.retrieve(2) is None
        assert external.retrieve(1) is not None

    def test_persistence_across_instances(self, tmp_path):
        """The archive lives on disk; a new archiver picks it up."""
        spec = company_key_spec()
        first = ExternalArchiver(str(tmp_path), spec)
        for version in company_versions()[:2]:
            first.add_version(version.copy())
        second = ExternalArchiver(str(tmp_path), spec)
        assert second.last_version == 2
        for version in company_versions()[2:]:
            second.add_version(version.copy())
        for number, original in enumerate(company_versions(), start=1):
            assert documents_equivalent(second.retrieve(number), original, spec)

    def test_io_accounting_grows(self, tmp_path):
        spec = omim_key_spec()
        external = ExternalArchiver(str(tmp_path), spec, memory_budget=50)
        versions = OmimGenerator(seed=2, initial_records=15).generate_versions(3)
        for version in versions:
            external.add_version(version)
        assert external.io_stats.bytes_written > 0
        assert external.io_stats.bytes_read > 0
        assert external.io_stats.pages_written() >= 1

    def test_omim_scale_with_small_budget(self, tmp_path):
        """A run budget far below the document size still archives
        correctly — the point of external memory."""
        spec = omim_key_spec()
        versions = OmimGenerator(seed=3, initial_records=25).generate_versions(3)
        external = ExternalArchiver(str(tmp_path), spec, memory_budget=30, fan_in=3)
        in_memory = Archive(spec)
        for version in versions:
            external.add_version(version.copy())
            in_memory.add_version(version)
        assert external.to_archive().to_xml_string() == in_memory.to_xml_string()

    def test_archive_bytes(self, tmp_path):
        external = ExternalArchiver(str(tmp_path), company_key_spec())
        before = external.archive_bytes()
        external.add_version(company_versions()[3])
        assert external.archive_bytes() > before
