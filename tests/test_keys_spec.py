"""Tests for key specifications (repro.keys.spec, repro.keys.keyparser)."""

import pytest

from repro.data.company import company_key_spec
from repro.keys import (
    Key,
    KeySpec,
    KeySpecError,
    empty_spec,
    key,
    parse_key_line,
    parse_key_spec,
)


class TestKey:
    def test_absolute_target(self):
        k = key("/db/dept", "emp", ("fn", "ln"))
        assert k.absolute_target == ("db", "dept", "emp")

    def test_rejects_empty_target(self):
        with pytest.raises(KeySpecError):
            key("/db", "")

    def test_rejects_duplicate_key_paths(self):
        with pytest.raises(KeySpecError):
            key("/db", "emp", ("fn", "fn"))

    def test_str_round_trips_through_parser(self):
        k = key("/db/dept", "emp", ("fn", "ln"))
        assert parse_key_line(str(k)) == k


class TestKeyParser:
    def test_simple(self):
        k = parse_key_line("(/db, (dept, {name}))")
        assert k == key("/db", "dept", ("name",))

    def test_empty_key_path_set(self):
        k = parse_key_line("(/, (db, {}))")
        assert k == key("/", "db", ())

    def test_dot_key_path(self):
        k = parse_key_line("(/db/dept/emp, (tel, {.}))")
        assert k.key_paths == ((),)

    def test_backslash_e_key_path(self):
        k = parse_key_line("(/ROOT/Record, (AlternativeTitle, {\\e}))")
        assert k.key_paths == ((),)

    def test_multi_step_key_paths(self):
        k = parse_key_line(
            "(/ROOT/Record, (Contributors, {Name, Date/Month, Date/Day}))"
        )
        assert ("Date", "Month") in k.key_paths

    def test_comments_and_blanks_skipped(self):
        spec = parse_key_spec("# heading\n\n(/, (db, {}))\n")
        assert len(spec) == 1

    def test_wildcard_expansion(self):
        spec_text = (
            "(/, (site, {}))\n(/site, (regions, {}))\n"
            "(/site/regions, (_, {}))\n(/site/regions/_, (item, {id}))"
        )
        spec = parse_key_spec(spec_text, wildcards={"_": ["africa", "asia"]})
        assert spec.key_for(("site", "regions", "africa", "item")) is not None
        assert spec.key_for(("site", "regions", "asia", "item")) is not None

    @pytest.mark.parametrize(
        "line",
        ["/db, dept", "(db)", "(/db, (dept, name))", "(/db, (dept, {name})"],
    )
    def test_malformed(self, line):
        with pytest.raises(KeySpecError):
            parse_key_line(line)


class TestKeySpec:
    def test_company_spec_closure_adds_implied_keys(self):
        spec = company_key_spec()
        # Implied: (/db/dept, (name, {})), (/db/dept/emp, (fn, {})), (ln, {}).
        assert spec.key_for(("db", "dept", "name")) is not None
        assert spec.key_for(("db", "dept", "emp", "fn")) is not None
        assert spec.key_for(("db", "dept", "emp", "ln")) is not None

    def test_company_frontier_paths(self):
        spec = company_key_spec()
        expected = {
            ("db", "dept", "name"),
            ("db", "dept", "emp", "fn"),
            ("db", "dept", "emp", "ln"),
            ("db", "dept", "emp", "sal"),
            ("db", "dept", "emp", "tel"),
        }
        assert set(spec.frontier_paths) == expected

    def test_non_frontier_paths(self):
        spec = company_key_spec()
        assert not spec.is_frontier_path(("db", "dept", "emp"))
        assert not spec.is_frontier_path(("db",))

    def test_max_keyed_depth(self):
        assert company_key_spec().max_keyed_depth() == 4

    def test_duplicate_target_paths_rejected(self):
        with pytest.raises(KeySpecError):
            KeySpec(explicit_keys=[key("/", "db"), key("/", "db", ("id",))])

    def test_not_insertion_friendly_rejected(self):
        # /db is never keyed, so a key relative to it dangles.
        with pytest.raises(KeySpecError):
            KeySpec(explicit_keys=[key("/db", "dept", ("name",))])

    def test_key_beneath_key_path_rejected(self):
        # emp is keyed by fn; keying something under .../emp/fn violates
        # assumption 3.
        with pytest.raises(KeySpecError):
            KeySpec(
                explicit_keys=[
                    key("/", "db"),
                    key("/db", "emp", ("fn",)),
                    key("/db/emp/fn", "part", ("x",)),
                ]
            )

    def test_empty_spec(self):
        spec = empty_spec()
        assert len(spec) == 0
        assert spec.max_keyed_depth() == 0

    def test_iteration_yields_keys(self):
        spec = company_key_spec()
        assert all(isinstance(k, Key) for k in spec)

    def test_str_lists_all_keys(self):
        text = str(company_key_spec())
        assert "(/db/dept, (emp, {fn, ln}))" in text
