"""Tests for the compression substrate (gzip-equivalent + XMill-sim)."""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    compress,
    compressed_size,
    decompress,
    deflate,
    gzip_concatenated_size,
    gzip_pieces_size,
    gzip_size,
    inflate,
)
from repro.data.company import company_versions
from repro.xmltree import Element, Text, element, parse_document, to_pretty_string, value_equal


class TestGzipper:
    def test_deflate_round_trip(self):
        data = b"hello " * 100
        assert inflate(deflate(data)) == data

    def test_gzip_size_close_to_zlib(self):
        text = "abc " * 500
        zlib_size = len(zlib.compress(text.encode(), 9))
        assert abs(gzip_size(text) - zlib_size) <= 20

    def test_compressible_text_shrinks(self):
        text = "repeated line\n" * 200
        assert gzip_size(text) < len(text.encode()) / 10

    def test_pieces_vs_concatenated(self):
        pieces = [f"<rec><id>{i}</id></rec>" for i in range(50)]
        # One stream compresses better than 50 tiny ones.
        assert gzip_concatenated_size(pieces) < gzip_pieces_size(pieces)

    def test_empty_text(self):
        assert gzip_size("") > 0  # framing still costs bytes


class TestXMill:
    def test_round_trip_company(self):
        for version in company_versions():
            result = compress(version)
            assert value_equal(decompress(result), version)

    def test_round_trip_attributes(self):
        doc = parse_document(
            '<site><item id="i1" cat="c9"><name>thing</name></item></site>'
        )
        assert value_equal(decompress(compress(doc)), doc)

    def test_round_trip_mixed_content(self):
        doc = parse_document("<p>hello <b>bold</b> world</p>")
        assert value_equal(decompress(compress(doc)), doc)

    def test_large_containers_grouped_by_path(self):
        body = "".join(
            f"<rec><id>{'x' * 200}{i}</id><val>{'y' * 200}{i}</val></rec>"
            for i in range(40)
        )
        result = compress(parse_document(f"<db>{body}</db>"))
        assert "/db/rec/id/#text" in result.containers
        assert "/db/rec/val/#text" in result.containers

    def test_small_containers_bundled(self):
        doc = parse_document(
            "<db><rec><id>1</id><val>x</val></rec><rec><id>2</id><val>y</val></rec></db>"
        )
        result = compress(doc)
        assert not result.containers  # everything is tiny → bundled
        assert result.bundle

    def test_beats_gzip_on_self_similar_documents(self):
        """The XMill advantage: per-path grouping of repetitive values."""
        records = "".join(
            f"<rec><id>{i:06d}</id><date>2001-0{1 + i % 9}-11</date>"
            f"<status>CONFIRMED</status><score>0.{i % 100:02d}</score></rec>"
            for i in range(400)
        )
        doc = parse_document(f"<db>{records}</db>")
        text = to_pretty_string(doc)
        assert compressed_size(doc) < gzip_size(text)

    def test_empty_document(self):
        doc = Element("empty")
        assert value_equal(decompress(compress(doc)), doc)

    def test_deep_document(self):
        doc = element("a", element("b", element("c", element("d", "leaf"))))
        assert value_equal(decompress(compress(doc)), doc)


_tags = st.sampled_from(["a", "b", "c"])
_texts = st.text(alphabet="xyz0189 <&", min_size=1, max_size=8)


@st.composite
def _documents(draw, depth=3):
    node = Element(draw(_tags))
    if draw(st.booleans()):
        node.set_attribute(draw(st.sampled_from(["p", "q"])), draw(_texts))
    count = draw(st.integers(min_value=0, max_value=3))
    for _ in range(count):
        if depth > 0 and draw(st.booleans()):
            node.append(draw(_documents(depth=depth - 1)))
        else:
            node.append(Text(draw(_texts)))
    return node


class TestXMillProperties:
    @given(_documents())
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, doc):
        assert value_equal(decompress(compress(doc)), doc)

    @given(_documents())
    @settings(max_examples=40, deadline=None)
    def test_size_positive_and_bounded(self, doc):
        size = compressed_size(doc)
        assert size > 0
