"""Tests for the compression substrate (gzip-equivalent + XMill-sim).

The property suites exercise the codecs *directly* — unicode text,
attribute-heavy nodes, empty elements, deep nesting, timestamp
attributes — rather than only through the experiment harness, since the
storage layer now trusts them as at-rest serializers.
"""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compress import (
    XMILL_MAGIC,
    XMillFormatError,
    compress,
    compressed_size,
    decompress,
    deflate,
    from_bytes,
    gzip_compress,
    gzip_concatenated_size,
    gzip_decompress,
    gzip_pieces_size,
    gzip_size,
    inflate,
    to_bytes,
)
from repro.data.company import company_versions
from repro.xmltree import Element, Text, element, parse_document, to_pretty_string, value_equal

import pytest


class TestGzipper:
    def test_deflate_round_trip(self):
        data = b"hello " * 100
        assert inflate(deflate(data)) == data

    def test_gzip_size_close_to_zlib(self):
        text = "abc " * 500
        zlib_size = len(zlib.compress(text.encode(), 9))
        assert abs(gzip_size(text) - zlib_size) <= 20

    def test_compressible_text_shrinks(self):
        text = "repeated line\n" * 200
        assert gzip_size(text) < len(text.encode()) / 10

    def test_pieces_vs_concatenated(self):
        pieces = [f"<rec><id>{i}</id></rec>" for i in range(50)]
        # One stream compresses better than 50 tiny ones.
        assert gzip_concatenated_size(pieces) < gzip_pieces_size(pieces)

    def test_empty_text(self):
        assert gzip_size("") > 0  # framing still costs bytes


class TestXMill:
    def test_round_trip_company(self):
        for version in company_versions():
            result = compress(version)
            assert value_equal(decompress(result), version)

    def test_round_trip_attributes(self):
        doc = parse_document(
            '<site><item id="i1" cat="c9"><name>thing</name></item></site>'
        )
        assert value_equal(decompress(compress(doc)), doc)

    def test_round_trip_mixed_content(self):
        doc = parse_document("<p>hello <b>bold</b> world</p>")
        assert value_equal(decompress(compress(doc)), doc)

    def test_large_containers_grouped_by_path(self):
        body = "".join(
            f"<rec><id>{'x' * 200}{i}</id><val>{'y' * 200}{i}</val></rec>"
            for i in range(40)
        )
        result = compress(parse_document(f"<db>{body}</db>"))
        assert "/db/rec/id/#text" in result.containers
        assert "/db/rec/val/#text" in result.containers

    def test_small_containers_bundled(self):
        doc = parse_document(
            "<db><rec><id>1</id><val>x</val></rec><rec><id>2</id><val>y</val></rec></db>"
        )
        result = compress(doc)
        assert not result.containers  # everything is tiny → bundled
        assert result.bundle

    def test_beats_gzip_on_self_similar_documents(self):
        """The XMill advantage: per-path grouping of repetitive values."""
        records = "".join(
            f"<rec><id>{i:06d}</id><date>2001-0{1 + i % 9}-11</date>"
            f"<status>CONFIRMED</status><score>0.{i % 100:02d}</score></rec>"
            for i in range(400)
        )
        doc = parse_document(f"<db>{records}</db>")
        text = to_pretty_string(doc)
        assert compressed_size(doc) < gzip_size(text)

    def test_empty_document(self):
        doc = Element("empty")
        assert value_equal(decompress(compress(doc)), doc)

    def test_deep_document(self):
        doc = element("a", element("b", element("c", element("d", "leaf"))))
        assert value_equal(decompress(compress(doc)), doc)


_tags = st.sampled_from(["a", "b", "c"])
_texts = st.text(alphabet="xyz0189 <&", min_size=1, max_size=8)


@st.composite
def _documents(draw, depth=3):
    node = Element(draw(_tags))
    if draw(st.booleans()):
        node.set_attribute(draw(st.sampled_from(["p", "q"])), draw(_texts))
    count = draw(st.integers(min_value=0, max_value=3))
    for _ in range(count):
        if depth > 0 and draw(st.booleans()):
            node.append(draw(_documents(depth=depth - 1)))
        else:
            node.append(Text(draw(_texts)))
    return node


class TestXMillProperties:
    @given(_documents())
    @settings(max_examples=80, deadline=None)
    def test_round_trip(self, doc):
        assert value_equal(decompress(compress(doc)), doc)

    @given(_documents())
    @settings(max_examples=40, deadline=None)
    def test_size_positive_and_bounded(self, doc):
        size = compressed_size(doc)
        assert size > 0


# -- storage-grade strategies: the shapes real archives contain ---------------

# Unicode spanning scripts, combining marks, emoji and XML-special
# characters; control characters and the XMill framing bytes are outside
# the XML 1.0 character-data set, so they stay out (as the parser would
# keep them out of any real document).
_unicode_texts = st.text(
    alphabet=st.one_of(
        st.sampled_from("<>&\"'\n\t"),
        st.characters(min_codepoint=0x20, max_codepoint=0x7E),
        st.characters(min_codepoint=0xA1, max_codepoint=0x2FF),
        st.characters(min_codepoint=0x370, max_codepoint=0x3FF),
        st.characters(min_codepoint=0x4E00, max_codepoint=0x4E2F),
        st.characters(min_codepoint=0x1F600, max_codepoint=0x1F60F),
    ),
    min_size=0,
    max_size=24,
)
_names = st.sampled_from(["rec", "val", "meta", "prov", "x-1", "a_b"])
_timestamps = st.lists(
    st.tuples(st.integers(1, 40), st.integers(0, 5)), min_size=1, max_size=4
).map(
    lambda pairs: ",".join(
        f"{lo}-{lo + width}" if width else str(lo) for lo, width in pairs
    )
)


@st.composite
def _storage_documents(draw, depth=4):
    """Archive-shaped documents: timestamp attributes on wrappers,
    attribute-heavy records, empty elements, unicode text, deep chains."""
    shape = draw(st.sampled_from(["timestamped", "attr-heavy", "empty", "plain"]))
    if shape == "timestamped":
        node = Element("T")
        node.set_attribute("t", draw(_timestamps))
    else:
        node = Element(draw(_names))
        for _ in range(draw(st.integers(0, 6 if shape == "attr-heavy" else 2))):
            node.set_attribute(
                draw(st.sampled_from(["id", "t", "lang", "ref", "k-ey"])),
                draw(_unicode_texts),
            )
    if shape == "empty" or depth == 0:
        return node
    for _ in range(draw(st.integers(0, 3))):
        if draw(st.booleans()):
            node.append(draw(_storage_documents(depth=depth - 1)))
        else:
            text = draw(_unicode_texts)
            if text:
                node.append(Text(text))
    return node


def _deep_chain(depth, leaf_text):
    node = leaf = Element("d0")
    for level in range(1, depth):
        child = Element(f"d{level}")
        leaf.append(child)
        leaf = child
    leaf.append(Text(leaf_text))
    return node


class TestXMillStorageGradeProperties:
    """Direct round-trips over archive-realistic documents, through the
    in-memory result *and* the on-disk container format."""

    @given(_storage_documents())
    @settings(max_examples=120, deadline=None)
    def test_round_trip_value_equal(self, doc):
        assert value_equal(decompress(compress(doc)), doc)

    @given(_storage_documents())
    @settings(max_examples=80, deadline=None)
    def test_container_bytes_round_trip(self, doc):
        data = to_bytes(compress(doc))
        assert data.startswith(XMILL_MAGIC)
        assert value_equal(decompress(from_bytes(data)), doc)

    @given(_storage_documents())
    @settings(max_examples=60, deadline=None)
    def test_serialized_text_reparses_identically(self, doc):
        """The codec contract: for *parser-normal* documents (what every
        stored file parses to — the parser drops inter-element
        whitespace, so a raw generated tree first goes through one
        serialize+parse round), decompress-then-serialize must reparse
        to the same value.  Archives survive parse → compress → store →
        load → decompress → parse."""
        normal = parse_document(to_pretty_string(doc))
        text = to_pretty_string(decompress(compress(normal)))
        assert value_equal(parse_document(text), normal)

    @given(st.integers(min_value=2, max_value=60), _unicode_texts.filter(bool))
    @settings(max_examples=30, deadline=None)
    def test_deep_nesting(self, depth, leaf_text):
        doc = _deep_chain(depth, leaf_text)
        assert value_equal(decompress(compress(doc)), doc)
        assert value_equal(decompress(from_bytes(to_bytes(compress(doc)))), doc)

    @given(_timestamps, st.lists(_timestamps, min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_timestamp_attribute_wrappers(self, root_ts, child_ts):
        """The Fig. 5 shape: ``<T t="...">`` wrappers all the way down."""
        doc = Element("T")
        doc.set_attribute("t", root_ts)
        db = Element("db")
        doc.append(db)
        for index, ts in enumerate(child_ts):
            wrapper = Element("T")
            wrapper.set_attribute("t", ts)
            record = Element("rec")
            record.append(Text(f"value {index}"))
            wrapper.append(record)
            db.append(wrapper)
        restored = decompress(from_bytes(to_bytes(compress(doc))))
        assert value_equal(restored, doc)
        assert restored.get_attribute("t") == root_ts

    def test_container_rejects_truncation_and_noise(self):
        data = to_bytes(compress(element("db", element("rec", "x"))))
        with pytest.raises(XMillFormatError):
            from_bytes(data[:-2])
        with pytest.raises(XMillFormatError):
            from_bytes(data + b"trailing")
        with pytest.raises(XMillFormatError):
            from_bytes(b"not a container")


class TestGzipperProperties:
    @given(st.binary(min_size=0, max_size=4096))
    @settings(max_examples=100, deadline=None)
    def test_deflate_inflate_round_trip(self, data):
        assert inflate(deflate(data)) == data

    @given(st.binary(min_size=0, max_size=4096))
    @settings(max_examples=100, deadline=None)
    def test_gzip_stream_round_trip(self, data):
        stream = gzip_compress(data)
        assert stream.startswith(b"\x1f\x8b")
        assert gzip_decompress(stream) == data

    @given(st.binary(min_size=0, max_size=2048))
    @settings(max_examples=50, deadline=None)
    def test_gzip_stream_deterministic(self, data):
        assert gzip_compress(data) == gzip_compress(data)

    @given(_unicode_texts)
    @settings(max_examples=80, deadline=None)
    def test_gzip_size_matches_real_stream(self, text):
        """The measurement helper and the real stream agree on bytes."""
        assert gzip_size(text) == len(gzip_compress(text.encode("utf-8")))
