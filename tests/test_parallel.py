"""The parallel execution plane (``repro.storage.parallel``).

Three layers of guarantees:

* **Pool semantics** — ``ExecutionPool`` returns results in submission
  order, falls back to inline execution at one worker (original
  exception types, same process), re-raises worker failures as typed
  :class:`WorkerError` carrying the original exception's identity, and
  rejects unpicklable task payloads eagerly with a clear message.
* **Determinism** — parallel ``ingest_batch``, ``recode`` and chunk
  query fan-out produce *byte-identical* archives and *identical*
  query answers to serial runs, across the backend × codec ×
  compaction matrix (hypothesis-driven).
* **Crash containment** — a worker dying mid-encode publishes nothing:
  every result gathers before the single WAL commit point, so the
  archive stays untouched and fsck-clean.
"""

import glob
import hashlib
import json
import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.archive import ArchiveOptions
from repro.data.company import COMPANY_KEY_TEXT, company_versions
from repro.query.db import open_db
from repro.storage import (
    ExecutionPool,
    TaskNotPicklable,
    WorkerError,
    create_archive,
    fsck_archive,
    open_archive,
)
from repro.storage import parallel
from repro.xmltree.model import Element, Text
from repro.xmltree.serializer import to_string

#: The fault seam relies on forked workers inheriting parent module
#: state; other start methods would re-import a pristine module.
FORK = multiprocessing.get_start_method(allow_none=False) == "fork"
needs_fork = pytest.mark.skipif(
    not FORK, reason="fault seam needs fork-inherited module state"
)

REC_KEY_TEXT = """
(/, (db, {}))
(/db, (rec, {id}))
(/db/rec, (val, {}))
"""


# -- module-level worker functions (pickled by qualified name) ----------------


def _double(task):
    return task * 2


def _pid(task):
    return os.getpid()


def _boom(task):
    raise ValueError(f"boom {task}")


def _die(task):
    os._exit(3)


# -- helpers ------------------------------------------------------------------


def dense_versions(count=5, records=24):
    """A record-dense version sequence that populates several chunks."""
    versions = []
    for n in range(count):
        root = Element("db")
        for i in range(records):
            rec = Element("rec")
            ident = Element("id")
            ident.append(Text(str(i)))
            rec.append(ident)
            val = Element("val")
            val.append(Text(f"v{n}-{i % (n + 1)}"))
            rec.append(val)
            root.append(rec)
        versions.append(root)
    return versions


def archive_path(base, kind):
    return os.path.join(base, "archive.xml" if kind == "file" else "store")


def digest_tree(path):
    """``{relative file name: sha256}`` of an archive's on-disk state.

    The WAL file is excluded: it records commit bookkeeping (which is
    also deterministic, but is not part of the archive's payload
    contract).
    """
    if os.path.isfile(path):
        files = [path] + glob.glob(path + ".*")
    else:
        files = glob.glob(os.path.join(path, "**"), recursive=True)
    digests = {}
    for full in sorted(files):
        if not os.path.isfile(full):
            continue
        name = os.path.basename(full)
        if name.endswith(".wal") or name == "wal.json":
            continue
        with open(full, "rb") as handle:
            digests[name] = hashlib.sha256(handle.read()).hexdigest()
    return digests


# -- ExecutionPool semantics ---------------------------------------------------


class TestExecutionPool:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ExecutionPool(0)

    def test_serial_fallback_runs_inline(self):
        """One worker means the parent process, in submission order."""
        pool = ExecutionPool(1)
        assert pool.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert pool.map(_pid, [None, None]) == [os.getpid()] * 2

    def test_serial_exceptions_keep_their_type(self):
        with pytest.raises(ValueError, match="boom 7"):
            ExecutionPool(1).map(_boom, [7])

    @needs_fork
    def test_parallel_results_in_submission_order(self):
        assert ExecutionPool(3).map(_double, list(range(16))) == [
            2 * n for n in range(16)
        ]

    @needs_fork
    def test_parallel_runs_in_worker_processes(self):
        pids = set(ExecutionPool(2).map(_pid, [None] * 8))
        assert os.getpid() not in pids

    @needs_fork
    def test_worker_exception_reraises_typed(self):
        """A failure inside a worker surfaces as WorkerError carrying
        the original exception's type, message and traceback text."""
        with pytest.raises(WorkerError) as excinfo:
            ExecutionPool(2).map(_boom, [0, 1, 2])
        error = excinfo.value
        assert error.cause_type == "ValueError"
        assert "boom" in str(error)
        assert error.task_index is not None
        assert "ValueError" in (error.cause_traceback or "")

    @needs_fork
    def test_dead_worker_reraises_typed(self):
        """A worker that dies outright (no exception to report) still
        comes back as WorkerError, not a bare BrokenProcessPool."""
        with pytest.raises(WorkerError, match="died"):
            ExecutionPool(2).map(_die, [0, 1])

    def test_rejects_nonpicklable_tasks_eagerly(self):
        """Live handles must not cross the process boundary; the error
        is raised in the parent, before any worker starts, and names
        the offending task."""
        with pytest.raises(TaskNotPicklable, match="Task 1.*plain data"):
            ExecutionPool(2).map(_double, [1, lambda: 2, 3])

    def test_nonpicklable_rejection_stages_nothing(self, tmp_path):
        """An unpicklable hook payload cannot have half-run: the pool
        pickles every task before submitting any."""
        pool = ExecutionPool(4)
        with open(os.path.join(tmp_path, "live"), "w") as handle:
            with pytest.raises(TaskNotPicklable):
                pool.map(_double, [0, handle])


# -- byte-identity: parallel output == serial output ---------------------------


class TestByteIdentity:
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_ingest_and_recode_match_serial(self, data):
        """Across backend × codec × compaction, archives built with a
        worker pool are byte-for-byte the archives built serially, and
        so are their recodes."""
        import tempfile

        kind = data.draw(
            st.sampled_from(["file", "chunked", "external"]), label="backend"
        )
        codec = data.draw(st.sampled_from(["raw", "gzip", "xmill"]), label="codec")
        target = data.draw(
            st.sampled_from(["raw", "gzip", "xmill"]), label="recode-target"
        )
        compaction = data.draw(st.booleans(), label="compaction") and (
            kind != "external"  # the external backend stores no weaves
        )
        workers = data.draw(st.sampled_from([2, 3, 4]), label="workers")
        versions = list(company_versions())
        options = ArchiveOptions(compaction=compaction)
        with tempfile.TemporaryDirectory() as tmp:
            paths = {}
            for label, width in (("serial", 1), ("parallel", workers)):
                base = os.path.join(tmp, label)
                os.makedirs(base)
                path = archive_path(base, kind)
                backend = create_archive(
                    path,
                    COMPANY_KEY_TEXT,
                    kind=kind,
                    chunk_count=3,
                    options=options,
                    codec=codec,
                    workers=width,
                )
                backend.ingest_batch(v.copy() for v in versions)
                backend.close()
                paths[label] = path
            assert digest_tree(paths["serial"]) == digest_tree(paths["parallel"])
            for label, width in (("serial", 1), ("parallel", workers)):
                backend = open_archive(paths[label], workers=width)
                backend.recode(target)
                backend.close()
            assert digest_tree(paths["serial"]) == digest_tree(paths["parallel"])

    def test_incremental_batches_match_one_batch(self, tmp_path):
        """Parallel chunk-major batches compose: two consecutive
        parallel batches equal one serial batch of everything."""
        versions = dense_versions(6)
        serial = create_archive(
            tmp_path / "serial", REC_KEY_TEXT, kind="chunked", chunk_count=4
        )
        serial.ingest_batch(v.copy() for v in versions)
        serial.close()
        parallel_backend = create_archive(
            tmp_path / "parallel",
            REC_KEY_TEXT,
            kind="chunked",
            chunk_count=4,
            workers=3,
        )
        parallel_backend.ingest_batch(v.copy() for v in versions[:3])
        parallel_backend.ingest_batch(v.copy() for v in versions[3:])
        parallel_backend.close()
        serial_tree = digest_tree(str(tmp_path / "serial"))
        split_tree = digest_tree(str(tmp_path / "parallel"))
        # The two runs commit a different number of times (one batch vs
        # two), which the manifest's generation counter records by
        # design — so the manifest and the checksum sidecar (which
        # covers the manifest) legitimately differ.  Every payload must
        # still match bit-for-bit.
        for bookkeeping in ("manifest.json", "checksums.json"):
            serial_tree.pop(bookkeeping)
            split_tree.pop(bookkeeping)
        assert serial_tree == split_tree
        serial_manifest = json.loads(
            (tmp_path / "serial" / "manifest.json").read_text()
        )
        split_manifest = json.loads(
            (tmp_path / "parallel" / "manifest.json").read_text()
        )
        assert serial_manifest.pop("generation") == 1
        assert split_manifest.pop("generation") == 2
        serial_manifest.pop("sha256")
        split_manifest.pop("sha256")
        assert serial_manifest == split_manifest

    def test_merge_stats_match_serial(self, tmp_path):
        versions = dense_versions(4)
        totals = []
        for label, width in (("serial", 1), ("parallel", 3)):
            backend = create_archive(
                tmp_path / label,
                REC_KEY_TEXT,
                kind="chunked",
                chunk_count=4,
                workers=width,
            )
            totals.append(backend.ingest_batch(v.copy() for v in versions))
            backend.close()
        assert totals[0] == totals[1]

    def test_on_chunk_hook_sees_merged_archives(self, tmp_path):
        """The index-maintenance hook receives equivalent chunk
        archives whether the merge ran inline or in workers."""
        versions = dense_versions(3)
        seen = {}
        for label, width in (("serial", 1), ("parallel", 3)):
            landed = {}
            backend = create_archive(
                tmp_path / label,
                REC_KEY_TEXT,
                kind="chunked",
                chunk_count=4,
                workers=width,
            )
            backend.ingest_batch(
                (v.copy() for v in versions),
                on_chunk=lambda index, archive: landed.__setitem__(
                    index, archive.to_xml_string()
                ),
            )
            backend.close()
            seen[label] = landed
        assert seen["serial"] == seen["parallel"]
        assert seen["serial"]  # the hook did fire


# -- query fan-out equivalence -------------------------------------------------


class TestParallelQuery:
    EXPRESSIONS = [
        "/db/rec",
        "/db/rec/val",
        "/db/rec/val/text()",
        "/db/rec[id='7']",
        "/db/rec[id='7']/val/text()",
    ]

    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("parallel-query")
        versions = dense_versions(5)
        for label, width in (("serial", 1), ("parallel", 3)):
            backend = create_archive(
                base / label,
                REC_KEY_TEXT,
                kind="chunked",
                chunk_count=4,
                codec="gzip",
                workers=width,
            )
            backend.ingest_batch(v.copy() for v in versions)
            backend.close()
        return base, len(versions)

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_answers_and_accounting_match_serial(self, stores, expression):
        base, last = stores
        rendered = {}
        results = {}
        for label, width in (("serial", 1), ("parallel", 3)):
            with open_db(base / label, workers=width) as db:
                result = db.at(last).select(expression)
                rendered[label] = [
                    item if isinstance(item, str) else to_string(item)
                    for item in result
                ]
                results[label] = result
        assert rendered["serial"] == rendered["parallel"]
        serial, fanned = results["serial"].stats, results["parallel"].stats
        # Worker accounting folds back in: same headline work count.
        assert serial.nodes_visited() == fanned.nodes_visited()
        assert serial.index_lookups == fanned.index_lookups
        assert serial.chunks_routed_past == fanned.chunks_routed_past
        assert serial.parallel_chunks == 0 and serial.workers_used == 0

    def test_fanout_reports_worker_accounting(self, stores):
        base, last = stores
        with open_db(base / "parallel", workers=3) as db:
            assert db.workers == 3
            result = db.at(last).select("/db/rec")
            result.all()
            assert result.stats.parallel_chunks > 1
            assert result.stats.workers_used == 3

    def test_routed_lookup_stays_single_chunk(self, stores):
        """A partition-level key lookup still opens one chunk — no
        pointless fan-out for point queries."""
        base, last = stores
        with open_db(base / "parallel", workers=3) as db:
            result = db.at(last).select("/db/rec[id='7']")
            assert len(result.all()) == 1
            assert result.stats.parallel_chunks == 0
            assert result.stats.chunks_routed_past == 3


# -- workers knob threading ----------------------------------------------------


class TestWorkersKnob:
    @pytest.mark.parametrize("kind", ["file", "chunked", "external"])
    def test_backends_accept_and_report_workers(self, tmp_path, kind):
        path = archive_path(tmp_path, kind)
        backend = create_archive(
            path, COMPANY_KEY_TEXT, kind=kind, chunk_count=2, workers=3
        )
        assert backend.workers == 3
        backend.close()
        reopened = open_archive(path, workers=2)
        assert reopened.workers == 2
        reopened.close()
        # The knob is runtime-only: reopening without it is serial.
        plain = open_archive(path)
        assert plain.workers == 1
        plain.close()

    def test_cli_workers_flag(self, tmp_path, capsys):
        """``xarch ingest/recode/query --workers N`` round-trips."""
        from repro.cli import main

        keys = tmp_path / "keys.txt"
        keys.write_text(REC_KEY_TEXT, encoding="utf-8")
        source = tmp_path / "versions"
        source.mkdir()
        for n, version in enumerate(dense_versions(3), start=1):
            (source / f"v{n:02d}.xml").write_text(
                to_string(version), encoding="utf-8"
            )
        store = tmp_path / "store"
        assert (
            main(
                [
                    "ingest",
                    str(store),
                    str(source),
                    "--keys",
                    str(keys),
                    "--backend",
                    "chunked",
                    "--chunks",
                    "4",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        assert main(["recode", str(store), "--codec", "xmill", "--workers", "2"]) == 0
        assert (
            main(["query", str(store), "/db/rec", "--stats", "--workers", "2"]) == 0
        )
        err = capsys.readouterr().err
        assert "across 2 workers" in err


# -- crash containment ---------------------------------------------------------


@needs_fork
class TestWorkerCrashDrill:
    """A worker crash mid-encode publishes nothing.

    The drill arms the module-level fault seam
    (``parallel._WORKER_FAULT``); forked workers inherit it and raise
    mid-task.  Because every result gathers before ``wal.begin()``,
    the failure must leave the archive byte-identical to its pre-crash
    state, with no stray ``*.tmp`` files, and fsck-clean.
    """

    @pytest.fixture
    def store(self, tmp_path):
        backend = create_archive(
            tmp_path / "store",
            REC_KEY_TEXT,
            kind="chunked",
            chunk_count=4,
            codec="gzip",
            workers=2,
        )
        backend.ingest_batch(v.copy() for v in dense_versions(3))
        backend.close()
        return tmp_path / "store"

    def _assert_untouched(self, store, before):
        assert digest_tree(str(store)) == before
        assert not glob.glob(os.path.join(store, "*.tmp"))
        report = fsck_archive(str(store))
        assert report.clean, str(report)

    def test_ingest_worker_crash_publishes_nothing(self, store, monkeypatch):
        before = digest_tree(str(store))
        backend = open_archive(store, workers=2)
        monkeypatch.setattr(parallel, "_WORKER_FAULT", "ingest")
        with pytest.raises(WorkerError, match="injected ingest worker fault"):
            backend.ingest_batch(v.copy() for v in dense_versions(5))
        assert backend.last_version == 3  # the batch never landed
        monkeypatch.setattr(parallel, "_WORKER_FAULT", None)
        backend.close()
        self._assert_untouched(store, before)

    def test_recode_worker_crash_publishes_nothing(self, store, monkeypatch):
        before = digest_tree(str(store))
        backend = open_archive(store, workers=2)
        monkeypatch.setattr(parallel, "_WORKER_FAULT", "recode")
        with pytest.raises(WorkerError, match="injected recode worker fault"):
            backend.recode("xmill")
        assert backend.codec.name == "gzip"  # still reading the old encoding
        monkeypatch.setattr(parallel, "_WORKER_FAULT", None)
        assert backend.retrieve(3) is not None
        backend.close()
        self._assert_untouched(store, before)

    def test_query_worker_crash_is_typed_and_harmless(self, store, monkeypatch):
        before = digest_tree(str(store))
        monkeypatch.setattr(parallel, "_WORKER_FAULT", "query")
        with open_db(store, workers=2) as db:
            with pytest.raises(WorkerError, match="injected query worker fault"):
                db.at(3).select("/db/rec").all()
        monkeypatch.setattr(parallel, "_WORKER_FAULT", None)
        self._assert_untouched(store, before)
