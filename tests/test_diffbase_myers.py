"""Tests for the Myers diff and ed-style edit scripts."""

import difflib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diffbase import (
    EditScriptError,
    apply_script,
    apply_text,
    common_lines,
    diff_lines,
    diff_text,
    edit_distance,
    make_script,
    parse_script,
    render_script,
)


class TestDiffLines:
    def test_identical(self):
        ops = diff_lines(["a", "b"], ["a", "b"])
        assert [op.kind for op in ops] == ["equal"]

    def test_empty_to_lines(self):
        ops = diff_lines([], ["a", "b"])
        assert [op.kind for op in ops] == ["insert"]

    def test_lines_to_empty(self):
        ops = diff_lines(["a", "b"], [])
        assert [op.kind for op in ops] == ["delete"]

    def test_both_empty(self):
        assert diff_lines([], []) == []

    def test_single_change(self):
        ops = diff_lines(["a", "b", "c"], ["a", "x", "c"])
        kinds = [op.kind for op in ops]
        assert kinds == ["equal", "delete", "insert", "equal"] or kinds == [
            "equal",
            "insert",
            "delete",
            "equal",
        ]

    def test_opcodes_partition_both_sequences(self):
        a = ["a", "b", "c", "d"]
        b = ["b", "c", "x", "d", "y"]
        ops = diff_lines(a, b)
        assert ops[0].a_start == 0 and ops[0].b_start == 0
        for op, nxt in zip(ops, ops[1:]):
            assert op.a_end == nxt.a_start
            assert op.b_end == nxt.b_start
        assert ops[-1].a_end == len(a)
        assert ops[-1].b_end == len(b)

    def test_edit_distance_minimal_known_case(self):
        # Classic Myers example: ABCABBA -> CBABAC has edit distance 5.
        a = list("ABCABBA")
        b = list("CBABAC")
        assert edit_distance(a, b) == 5

    def test_common_lines(self):
        assert common_lines(["a", "b", "c"], ["a", "c"]) == 2


class TestEditScripts:
    def test_change_command_format_matches_figure1(self):
        """Fig. 1's diff output uses the terse '2,3c' form."""
        old = ["<gene>", "<id>6230</id>", "<name>GRTM</name>", "</gene>"]
        new = ["<gene>", "<id>2953</id>", "<name>ACV2</name>", "</gene>"]
        script = render_script(make_script(old, new))
        assert script.startswith("2,3c\n")
        assert "<id>2953</id>" in script

    def test_apply_reconstructs(self):
        old = ["a", "b", "c", "d"]
        new = ["a", "x", "y", "d", "e"]
        commands = make_script(old, new)
        assert apply_script(old, commands) == new

    def test_render_parse_round_trip(self):
        old = ["a", "b", "c"]
        new = ["a", "q", "c", "r"]
        commands = make_script(old, new)
        assert parse_script(render_script(commands)) == commands

    def test_text_round_trip(self):
        old = "line one\nline two\nline three"
        new = "line one\nchanged\nline three\nline four"
        assert apply_text(old, diff_text(old, new)) == new

    def test_empty_script_for_identical(self):
        assert diff_text("same\ntext", "same\ntext") == ""

    def test_apply_rejects_out_of_range(self):
        with pytest.raises(EditScriptError):
            apply_text("a\nb", "9,9d\n")

    def test_parse_rejects_garbage(self):
        with pytest.raises(EditScriptError):
            parse_script("not a command\n")

    def test_parse_rejects_unterminated_append(self):
        with pytest.raises(EditScriptError):
            parse_script("1a\nline without dot")


_line_lists = st.lists(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "x", "y"]), max_size=14
)


class TestDiffProperties:
    @given(_line_lists, _line_lists)
    @settings(max_examples=120, deadline=None)
    def test_apply_round_trip(self, a, b):
        assert apply_script(a, make_script(a, b)) == b

    @given(_line_lists, _line_lists)
    @settings(max_examples=120, deadline=None)
    def test_minimality_vs_difflib(self, a, b):
        """Myers is optimal; difflib (heuristic) can never beat it."""
        matcher = difflib.SequenceMatcher(a=a, b=b, autojunk=False)
        difflib_common = sum(block.size for block in matcher.get_matching_blocks())
        difflib_distance = (len(a) - difflib_common) + (len(b) - difflib_common)
        assert edit_distance(a, b) <= difflib_distance

    @given(_line_lists, _line_lists)
    @settings(max_examples=100, deadline=None)
    def test_render_parse_round_trip(self, a, b):
        commands = make_script(a, b)
        assert parse_script(render_script(commands)) == commands

    @given(_line_lists)
    @settings(max_examples=60, deadline=None)
    def test_self_diff_is_empty(self, a):
        assert make_script(a, a) == []

    @given(_line_lists, _line_lists)
    @settings(max_examples=100, deadline=None)
    def test_distance_symmetric(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)
