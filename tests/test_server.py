"""Contract tests for ``xarchd`` + ``repro.client``.

Every endpoint is exercised across the full backend matrix (file /
chunked / external), the error taxonomy is checked code-by-code
against :data:`repro.server.errors.ERROR_CODES`, and the concurrency
drill at the end runs readers against a live writer: each response
must be byte-identical to a solo evaluation at the version it pinned —
generations only ever append, so a snapshot answer never depends on
which generation served it.
"""

import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.client import RemoteError, connect
from repro.cli import main as xarch_main
from repro.core.tempquery import Change
from repro.query.db import open_db
from repro.server.errors import ERROR_CODES, classify_exception
from repro.server.http import make_server, run_in_thread
from repro.storage import create_archive, open_archive
from repro.storage.backend import read_manifest
from repro.storage.integrity import IntegrityError
from repro.xmltree.model import Element
from repro.xmltree.parser import parse_document

KEYS = "(/, (db, {}))\n(/db, (rec, {id}))\n(/db/rec, (val, {}))"
KINDS = ("file", "chunked", "external")


def version_doc(stamp: int, records: int = 3) -> Element:
    """Version ``stamp``: ``records`` keyed records, values carry the stamp."""
    body = "".join(
        f"<rec><id>{i}</id><val>v{stamp}-{i}</val></rec>" for i in range(records)
    )
    return parse_document(f"<db>{body}</db>")


def archive_name(kind: str) -> str:
    return "demo.xml" if kind == "file" else f"demo-{kind}"


def seed_archive(root: str, kind: str, versions: int = 2) -> str:
    name = archive_name(kind)
    backend = create_archive(
        os.path.join(root, name), KEYS, kind=kind, chunk_count=4
    )
    backend.ingest_batch(version_doc(v) for v in range(1, versions + 1))
    backend.close()
    return name


@pytest.fixture
def served(tmp_path):
    """A running server over ``tmp_path`` plus its base URL."""
    server = make_server(str(tmp_path), port=0)
    run_in_thread(server)
    host, port = server.server_address
    yield str(tmp_path), f"http://{host}:{port}"
    server.shutdown()
    server.server_close()


def fetch_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read())


# -- endpoint contracts, full backend matrix --------------------------------


@pytest.mark.parametrize("kind", KINDS)
def test_endpoints_answer_the_archivedb_surface(served, kind):
    root, base = served
    name = seed_archive(root, kind)
    with connect(f"{base}/archives/{name}") as db:
        assert db.versions().to_text() == "1-2"
        assert db.last_version == 2

        result = db.at(2).select("/db/rec[id='1']/val/text()")
        assert result.all() == ["v2-1"]
        assert result.kind == "strings"
        assert result.generation >= 1

        elements = db.at(1).select("/db/rec[id='0']").all()
        assert len(elements) == 1 and isinstance(elements[0], Element)
        assert elements[0].tag == "rec"

        latest = db.at("latest").select("//val/text()").all()
        assert latest == [f"v2-{i}" for i in range(3)]

        changes = db.between(1, 2).changes().all()
        assert changes and all(isinstance(c, Change) for c in changes)
        assert {c.kind for c in changes} == {"changed"}

        prefixed = db.between(1, 2).changes("/db/rec[id=1]").all()
        assert [c.path for c in prefixed] == ["/db/rec[id=1]/val"]

        history = db.history("/db/rec[id=1]/val")
        assert history.existence.to_text() == "1-2"
        assert [content for _, content in history.changes] == ["v1-1", "v2-1"]

        stats = db.stats()
        assert stats["backend"] == kind
        assert stats["versions"] == 2
        assert stats["generation"] == db.last_generation


@pytest.mark.parametrize("kind", KINDS)
def test_remote_answers_match_a_local_open(served, kind):
    root, base = served
    name = seed_archive(root, kind)
    expressions = ["//val/text()", "/db/rec[id='2']", "/db/rec/val"]
    with connect(f"{base}/archives/{name}") as db:
        local = open_db(os.path.join(root, name))
        try:
            for expression in expressions:
                for version in (1, 2):
                    remote_items = [
                        item if isinstance(item, str) else item.tag
                        for item in db.at(version).select(expression)
                    ]
                    local_items = [
                        item if isinstance(item, str) else item.tag
                        for item in local.at(version).select(expression)
                    ]
                    assert remote_items == local_items
            assert [str(c) for c in db.between(1, 2).changes()] == [
                str(c) for c in local.between(1, 2).changes()
            ]
        finally:
            local.close()


@pytest.mark.parametrize("kind", KINDS)
def test_ingest_publishes_exactly_one_generation(served, kind):
    root, base = served
    name = seed_archive(root, kind)
    with connect(f"{base}/archives/{name}") as db:
        before = db.stats()["generation"]
        report = db.ingest([version_doc(3), version_doc(4)])
        assert report["ingested"] == 2
        assert report["base_version"] == 2
        assert report["last_version"] == 4
        # file/chunked publish the whole batch as one WAL commit; the
        # external backend streams version-at-a-time, one commit each.
        commits = 2 if kind == "external" else 1
        assert report["generation"] == before + commits
        assert db.at(3).select("//val/text()").all() == [
            f"v3-{i}" for i in range(3)
        ]


def test_wire_format_streams_items_then_done(served):
    root, base = served
    name = seed_archive(root, "file")
    url = f"{base}/archives/{name}/at/2/select?xpath=//val/text()"
    with urllib.request.urlopen(url) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        assert response.headers["X-Result-Kind"] == "strings"
        generation = int(response.headers["X-Archive-Generation"])
        lines = [json.loads(line) for line in response.read().splitlines()]
    assert [line["item"] for line in lines[:-1]] == [
        f"v2-{i}" for i in range(3)
    ]
    done = lines[-1]["done"]
    assert done["count"] == 3
    assert done["version"] == 2
    assert done["generation"] == generation
    assert done["last_version"] == 2
    assert done["stats"]["archive_nodes_visited"] > 0


def test_healthz_and_listing(served):
    root, base = served
    for kind in KINDS:
        seed_archive(root, kind)
    health = fetch_json(f"{base}/healthz")
    assert health == {"status": "ok", "archives": 3}
    listing = fetch_json(f"{base}/archives")["archives"]
    assert [record["name"] for record in listing] == sorted(
        archive_name(kind) for kind in KINDS
    )
    by_name = {record["name"]: record for record in listing}
    for kind in KINDS:
        record = by_name[archive_name(kind)]
        assert record["kind"] == kind
        assert record["versions"] == 2
        assert record["generation"] >= 1
    # Sidecars of the file archive never appear as archives themselves.
    assert not any(name.endswith((".keys", ".manifest.json")) for name in by_name)


# -- the error taxonomy ------------------------------------------------------


def expect_error(callable_, code):
    with pytest.raises(RemoteError) as caught:
        callable_()
    assert caught.value.code == code
    assert caught.value.status == ERROR_CODES[code][0]
    return caught.value


def test_error_taxonomy_on_the_wire(served):
    root, base = served
    name = seed_archive(root, "file")
    with connect(f"{base}/archives/{name}") as db:
        expect_error(lambda: db.at(99).select("//val").all(), "version-not-archived")
        expect_error(lambda: db.at("v2").select("//val").all(), "bad-request")
        expect_error(lambda: db.at(1).select("///").all(), "bad-request")
        expect_error(lambda: db.history("/nope/nope"), "bad-request")
        expect_error(lambda: db.ingest(["<unclosed>"]), "bad-payload")
        expect_error(lambda: db.ingest([]), "bad-request")
    with connect(f"{base}/archives/missing") as db:
        expect_error(lambda: db.stats(), "archive-not-found")
    with connect(base, archive="..") as db:
        expect_error(lambda: db.stats(), "bad-request")

    def status_of(url, method="GET"):
        request = urllib.request.Request(url, method=method)
        try:
            urllib.request.urlopen(request)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())["error"]
        raise AssertionError("expected an error response")

    status, body = status_of(f"{base}/nope")
    assert (status, body["code"]) == (404, "not-found")
    status, body = status_of(f"{base}/archives/{name}/ingest")
    assert (status, body["code"]) == (405, "method-not-allowed")


def test_corruption_answers_500_with_fsck_hint(served):
    root, base = served
    name = seed_archive(root, "chunked")
    # Flip payload bytes in one chunk: reads must classify as detected
    # corruption (after the reconcile retries decide it is not a racing
    # publish), never as a success or a generic 500.
    store = os.path.join(root, name)
    chunk = next(
        os.path.join(store, entry)
        for entry in sorted(os.listdir(store))
        if entry.startswith("chunk-") and entry.endswith(".xml")
        and os.path.getsize(os.path.join(store, entry))
    )
    with open(chunk, "r+b") as handle:
        handle.seek(0)
        handle.write(b"X")
    url = f"{base}/archives/{name}/at/1/select?xpath=//val/text()"
    try:
        urllib.request.urlopen(url)
        raise AssertionError("expected a 500")
    except urllib.error.HTTPError as error:
        assert error.code == 500
        body = json.loads(error.read())["error"]
        assert body["code"] == "corruption-detected"
        assert "fsck" in body["hint"]


def test_classify_exception_covers_the_cli_taxonomy():
    from repro.storage.codec import CodecError
    from repro.storage.wal import WalError
    from repro.xmltree.parser import XMLSyntaxError

    assert classify_exception(IntegrityError("x")) == ("corruption-detected", 500)
    assert classify_exception(WalError("x")) == ("wal-corrupt", 500)
    assert classify_exception(CodecError("x")) == ("codec-corrupt", 500)
    assert classify_exception(XMLSyntaxError("x", 0, 1)) == ("bad-payload", 400)
    assert classify_exception(ValueError("x")) == ("bad-request", 400)
    assert classify_exception(RuntimeError("x")) == ("internal-error", 500)


# -- generation publication --------------------------------------------------


@pytest.mark.parametrize("kind", KINDS)
def test_generation_advances_once_per_commit(tmp_path, kind):
    path = os.path.join(tmp_path, archive_name(kind))
    backend = create_archive(path, KEYS, kind=kind, chunk_count=4)
    start = backend.generation
    backend.add_version(version_doc(1))
    backend.add_version(version_doc(2))
    assert backend.generation == start + 2
    assert backend.stats().generation == backend.generation
    backend.close()
    # The counter is durable: the manifest carries it and a fresh open
    # (and the CLI's stats) reads it back.
    manifest = read_manifest(path)
    assert manifest is not None and manifest.generation == start + 2
    reopened = open_archive(path)
    assert reopened.generation == start + 2
    reopened.close()


def test_stats_cli_prints_the_generation(tmp_path, capsys):
    path = os.path.join(tmp_path, "demo.xml")
    backend = create_archive(path, KEYS)
    backend.add_version(version_doc(1))
    generation = backend.generation
    backend.close()
    assert xarch_main(["stats", path]) == 0
    out = capsys.readouterr().out
    assert f"generation:         {generation}" in out


def test_snapshot_open_skips_recovery_sweeps(tmp_path):
    path = os.path.join(tmp_path, "demo-chunked")
    backend = create_archive(path, KEYS, kind="chunked", chunk_count=4)
    backend.add_version(version_doc(1))
    backend.close()
    # A stray staged file stands in for a writer's in-flight commit: the
    # default open sweeps it, the snapshot open must leave it alone.
    stray = os.path.join(path, "chunk-0000.xml.tmp")
    with open(stray, "wb") as handle:
        handle.write(b"staged by a live writer")
    snapshot = open_archive(path, recover=False)
    assert snapshot.retrieve(1) is not None
    snapshot.close()
    assert os.path.exists(stray)
    writer = open_archive(path)  # recover=True is the default
    writer.close()
    assert not os.path.exists(stray)


# -- the concurrency drill ---------------------------------------------------


def test_concurrent_readers_pin_consistent_generations(served):
    """Readers streaming during an active ingest must answer exactly as
    a solo open would at the version they resolved — no torn reads, no
    partial generations — and each reader's observed generation never
    goes backwards."""
    root, base = served
    name = seed_archive(root, "chunked", versions=3)
    ingest_error = []
    observed = []  # (reader, generation, resolved_version, items)
    observed_lock = threading.Lock()
    done = threading.Event()

    def writer():
        try:
            with connect(f"{base}/archives/{name}") as db:
                for stamp in range(4, 10):
                    db.ingest([version_doc(stamp)])
        except BaseException as error:  # pragma: no cover - drill guard
            ingest_error.append(error)
        finally:
            done.set()

    reader_errors = []

    def reader(index: int):
        try:
            with connect(f"{base}/archives/{name}") as db:
                while not done.is_set():
                    for token in (1, 2, 3, "latest"):
                        result = db.at(token).select("//val/text()")
                        items = result.all()
                        resolved = result.done["version"]
                        with observed_lock:
                            observed.append(
                                (index, result.generation, resolved, tuple(items))
                            )
        except BaseException as error:  # pragma: no cover - drill guard
            reader_errors.append(error)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader, args=(index,)) for index in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not ingest_error, ingest_error
    assert not reader_errors, reader_errors
    assert not any(thread.is_alive() for thread in threads)
    assert len(observed) >= 16

    # Byte-identity: every response equals the solo answer at the
    # version it resolved, whichever generation happened to serve it.
    local = open_db(os.path.join(root, name))
    try:
        solo = {}
        for _, _, resolved, items in observed:
            if resolved not in solo:
                solo[resolved] = tuple(
                    local.at(resolved).select("//val/text()").all()
                )
            assert items == solo[resolved]
    finally:
        local.close()

    # Monotonicity: requests are sequential per reader, so the pinned
    # generation a reader observes never decreases.
    per_reader: dict = {}
    for index, generation, _, _ in observed:
        previous = per_reader.get(index)
        assert previous is None or generation >= previous
        per_reader[index] = generation
    # And the writer's six ingests were actually racing the readers.
    generations = {generation for _, generation, _, _ in observed}
    assert max(generations) > min(generations)
