"""The retrieval fast path: archive-resident timestamp trees, the
mutation counter, copy-on-write content sharing, and chunk pruning.

Locks down the PR-2 contract: tree-guided retrieval is byte-identical
to the reference scan in every configuration, the trees are patched (not
rebuilt) as versions land, indexes built before an ``add_version`` never
serve stale answers, and the chunked store prunes whole chunk files
whose presence timestamps exclude the requested version.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Archive,
    ArchiveError,
    ArchiveOptions,
    Fingerprinter,
    ProbeCount,
    archive_diff,
    documents_equivalent,
)
from repro.data import OmimChangeRates, OmimGenerator, omim_key_spec
from repro.data.company import company_key_spec, company_versions
from repro.indexes import KeyIndex, TimestampTreeIndex
from repro.storage import ChunkedArchiver, PersistentIngestor
from repro.xmltree import Element, Text
from repro.xmltree.serializer import to_string

CONFIGURATIONS = [
    ArchiveOptions(),
    ArchiveOptions(compaction=True),
    ArchiveOptions(fingerprinter=Fingerprinter(bits=64)),
    ArchiveOptions(fingerprinter=Fingerprinter(bits=2)),  # force collisions
    ArchiveOptions(fingerprinter=Fingerprinter(bits=64), compaction=True),
]


def _omim_archive(options=None, versions=8):
    generator = OmimGenerator(
        seed=11,
        initial_records=5,
        rates=OmimChangeRates(
            delete_fraction=0.1, insert_fraction=0.5, modify_fraction=0.3
        ),
    )
    archive = Archive(omim_key_spec(), options)
    for version in generator.generate_versions(versions):
        archive.add_version(version)
    return archive


class TestScanTreeEquivalence:
    @pytest.mark.parametrize("options", CONFIGURATIONS)
    def test_byte_identical_across_configs(self, options):
        archive = _omim_archive(options)
        for version in range(1, archive.last_version + 1):
            scan = archive.retrieve(version, guided=False)
            tree = archive.retrieve(version, guided=True)
            if scan is None or tree is None:
                assert scan is None and tree is None
                continue
            assert to_string(scan) == to_string(tree)

    @pytest.mark.parametrize("options", CONFIGURATIONS)
    def test_company_versions(self, options):
        archive = Archive(company_key_spec(), options)
        for version in company_versions():
            archive.add_version(version)
        for version in range(1, archive.last_version + 1):
            scan = archive.retrieve(version, guided=False)
            tree = archive.retrieve(version, guided=True)
            assert (scan is None) == (tree is None)
            if scan is not None:
                assert to_string(scan) == to_string(tree)

    def test_empty_versions(self):
        spec = company_key_spec()
        archive = Archive(spec)
        versions = company_versions()
        archive.add_version(versions[0])
        archive.add_version(None)
        archive.add_version(versions[1])
        assert archive.retrieve(2, guided=True) is None
        assert archive.retrieve(2, guided=False) is None
        assert to_string(archive.retrieve(3, guided=True)) == to_string(
            archive.retrieve(3, guided=False)
        )

    def test_shared_probe_counter_does_not_change_budgeting(self):
        """The 2k fallback threshold is budgeted per search, so passing
        a cumulative ProbeCount must not alter the work done — a shared
        counter crossing one node's budget used to force every later
        node into a spurious leaf scan."""
        archive = _omim_archive()
        for version in (1, archive.last_version):
            probes = ProbeCount()
            with_counter = archive.retrieve(version, probes=probes)
            without_counter = archive.retrieve(version)
            assert (with_counter is None) == (without_counter is None)
            if with_counter is not None:
                assert to_string(with_counter) == to_string(without_counter)
            # No per-node budget is ever exceeded by cumulative spill.
            assert probes.fallback_scans == 0

    def test_probe_savings_vs_scan(self):
        generator = OmimGenerator(
            seed=6,
            initial_records=6,
            rates=OmimChangeRates(
                delete_fraction=0.0, insert_fraction=0.6, modify_fraction=0.0
            ),
        )
        archive = Archive(omim_key_spec())
        for version in generator.generate_versions(9):
            archive.add_version(version)
        probes = ProbeCount()
        assert archive.retrieve(1, probes=probes) is not None
        assert probes.total() < archive.scan_probe_count(1)


# Hypothesis sweep: random keyed states across every configuration.

_names = st.sampled_from(["ann", "bob", "cat", "dan"])
_salaries = st.one_of(st.none(), st.sampled_from(["10K", "20K", "30K"]))


@st.composite
def _company_state(draw):
    state = Element("db")
    for dept_name in sorted(
        draw(st.sets(st.sampled_from(["dx", "dy", "dz"]), max_size=3))
    ):
        dept = state.append(Element("dept"))
        dept.append(Element("name")).append(Text(dept_name))
        seen = set()
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            fn, ln = draw(_names), draw(_names)
            if (fn, ln) in seen:
                continue
            seen.add((fn, ln))
            emp = dept.append(Element("emp"))
            emp.append(Element("fn")).append(Text(fn))
            emp.append(Element("ln")).append(Text(ln))
            sal = draw(_salaries)
            if sal is not None:
                emp.append(Element("sal")).append(Text(sal))
    return state


class TestScanTreeEquivalenceProperties:
    @given(
        st.lists(st.one_of(st.none(), _company_state()), min_size=1, max_size=5),
        st.sampled_from(CONFIGURATIONS),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_states(self, states, options):
        archive = Archive(company_key_spec(), options)
        for state in states:
            archive.add_version(state.copy() if state is not None else None)
        for version in range(1, archive.last_version + 1):
            scan = archive.retrieve(version, guided=False)
            tree = archive.retrieve(version, guided=True)
            assert (scan is None) == (tree is None)
            if scan is not None:
                assert to_string(scan) == to_string(tree)


class TestMutationCounterAndPatching:
    def test_add_version_bumps_counter(self):
        archive = Archive(company_key_spec())
        before = archive.mutation_count
        archive.add_version(company_versions()[0])
        assert archive.mutation_count == before + 1
        archive.add_version(None)
        assert archive.mutation_count == before + 2

    def test_retrieve_does_not_bump_counter(self):
        archive = Archive(company_key_spec())
        archive.add_version(company_versions()[0])
        before = archive.mutation_count
        archive.retrieve(1)
        archive.retrieve(1, guided=False)
        assert archive.mutation_count == before

    def test_tree_patched_in_place_when_shape_stable(self):
        versions = company_versions()
        archive = Archive(company_key_spec())
        archive.add_version(versions[0])
        archive.retrieve(1)  # build the trees lazily
        root_ts = archive.root.timestamp
        tree_before = archive.timestamp_tree(archive.root, root_ts)
        # An empty version touches no child list, only timestamps.
        archive.add_version(None)
        archive.retrieve(1)
        tree_after = archive.timestamp_tree(
            archive.root, archive.root.timestamp
        )
        assert tree_after is tree_before  # same object: patched, not rebuilt
        # The patched root tree reflects the new root timestamp.
        assert 2 in archive.root.timestamp
        assert 2 not in tree_after.timestamp  # children terminated at v2

    def test_tree_rebuilt_when_children_change(self):
        spec = omim_key_spec()
        generator = OmimGenerator(
            seed=3,
            initial_records=3,
            rates=OmimChangeRates(
                delete_fraction=0.0, insert_fraction=1.0, modify_fraction=0.0
            ),
        )
        archive = Archive(spec)
        versions = generator.generate_versions(2)
        archive.add_version(versions[0])
        archive.retrieve(1)
        top = archive.root.children[0]  # the ROOT node holding records
        tree_before = archive.timestamp_tree(
            top, top.effective_timestamp(archive.root.timestamp)
        )
        child_count = len(top.children)
        archive.add_version(versions[1])  # inserts fresh records
        assert len(top.children) > child_count
        archive.retrieve(2)
        tree_after = archive.timestamp_tree(
            top, top.effective_timestamp(archive.root.timestamp)
        )
        assert tree_after is not tree_before

    def test_retrieval_correct_across_incremental_growth(self):
        """Retrieve between every ingested version: each query patches
        the trees against the new state and must agree with the scan."""
        generator = OmimGenerator(seed=5, initial_records=4)
        archive = Archive(omim_key_spec())
        for version in generator.generate_versions(6):
            archive.add_version(version)
            for number in range(1, archive.last_version + 1):
                scan = archive.retrieve(number, guided=False)
                tree = archive.retrieve(number, guided=True)
                assert (scan is None) == (tree is None)
                if scan is not None:
                    assert to_string(scan) == to_string(tree)


class TestIndexStaleness:
    def test_timestamp_tree_index_sees_new_versions(self):
        versions = company_versions()
        archive = Archive(company_key_spec())
        archive.add_version(versions[0])
        index = TimestampTreeIndex(archive)
        index.retrieve(1)
        archive.add_version(versions[1])  # no refresh() call
        document, probes = index.retrieve(2)
        assert documents_equivalent(
            document, archive.retrieve(2, guided=False), archive.spec
        )
        assert probes.total() > 0

    def test_key_index_sees_new_versions(self):
        versions = company_versions()
        archive = Archive(company_key_spec())
        archive.add_version(versions[0])
        index = KeyIndex(archive)
        before, _ = index.history("/db/dept[name=finance]")
        archive.add_version(versions[1])  # no refresh() call
        after, _ = index.history("/db/dept[name=finance]")
        assert after == archive.history("/db/dept[name=finance]").existence
        assert after != before

    def test_key_index_record_count_refreshes(self):
        versions = company_versions()
        archive = Archive(company_key_spec())
        archive.add_version(versions[0])
        index = KeyIndex(archive)
        before = index.record_count()
        archive.add_version(versions[1])  # inserts new employees
        assert index.record_count() > before

    def test_archive_history_tracks_mutations(self):
        versions = company_versions()
        archive = Archive(company_key_spec())
        archive.add_version(versions[0])
        archive.history("/db/dept[name=finance]")  # warm token caches
        for version in versions[1:]:
            archive.add_version(version)
        history = archive.history("/db/dept[name=finance]/emp[fn=John, ln=Doe]")
        assert history.existence.to_text() == "3-4"


class TestErrorGuards:
    def test_retrieve_empty_archive_raises_archive_error(self):
        archive = Archive(company_key_spec())
        with pytest.raises(ArchiveError):
            archive.retrieve(1)

    def test_missing_root_timestamp_is_archive_error(self):
        archive = Archive(company_key_spec())
        archive.root.timestamp = None
        with pytest.raises(ArchiveError):
            archive.retrieve(1)
        with pytest.raises(ArchiveError):
            archive.history("/db")
        with pytest.raises(ArchiveError):
            archive.last_version
        with pytest.raises(ArchiveError):
            archive_diff(archive, 1, 1)

    def test_history_missing_element_raises(self):
        archive = Archive(company_key_spec())
        archive.add_version(company_versions()[0])
        with pytest.raises(ArchiveError):
            archive.history("/db/dept[name=nowhere]")


class TestCopyOnWriteSharing:
    def test_default_retrieval_shares_frontier_content(self):
        archive = Archive(company_key_spec())
        archive.add_version(company_versions()[0])
        shared = archive.retrieve(1)
        copied = archive.retrieve(1, copy_content=True)
        assert to_string(shared) == to_string(copied)
        stored = {
            id(content)
            for node in _frontier_nodes(archive.root)
            for alternative in node.alternatives
            for content in alternative.content
        }
        shared_ids = {id(node) for node in _content_leaves(shared)}
        copied_ids = {id(node) for node in _content_leaves(copied)}
        assert shared_ids & stored  # shares the archive's stored nodes
        assert not (copied_ids & stored)  # deep copy on request

    def test_shared_content_survives_reingestion(self):
        """A retrieved (shared) document can be merged into another
        archive — annotate and merge never mutate their input."""
        archive = Archive(company_key_spec())
        for version in company_versions():
            archive.add_version(version)
        before = archive.to_xml_string()
        other = Archive(company_key_spec())
        for number in range(1, archive.last_version + 1):
            other.add_version(archive.retrieve(number))
        assert archive.to_xml_string() == before
        for number in range(1, archive.last_version + 1):
            a, b = archive.retrieve(number), other.retrieve(number)
            assert (a is None) == (b is None)
            if a is not None:
                assert documents_equivalent(a, b, archive.spec)


def _frontier_nodes(node):
    if node.alternatives is not None:
        yield node
    for child in node.children:
        yield from _frontier_nodes(child)


def _content_leaves(element):
    for child in element.children:
        yield child
        if isinstance(child, Element):
            yield from _content_leaves(child)


class TestChunkPruning:
    def _versions(self):
        def doc(*pairs):
            root = Element("ROOT")
            for num, text in pairs:
                record = root.append(Element("Record"))
                record.append(Element("Num")).append(Text(num))
                record.append(Element("Title")).append(Text(text))
            return root

        return [
            doc(("1", "a")),
            doc(("1", "a"), ("2", "b"), ("3", "c"), ("4", "d")),
            doc(("2", "b"), ("3", "c"), ("4", "d"), ("5", "e")),
        ]

    def test_retrieve_prunes_excluded_chunks(self, tmp_path):
        spec = omim_key_spec()
        versions = self._versions()
        chunked = ChunkedArchiver(str(tmp_path), spec, chunk_count=8)
        for version in versions:
            chunked.add_version(version.copy())
        monolithic = Archive(spec)
        for version in versions:
            monolithic.add_version(version.copy())
        # Expected prunes for v1: chunks on disk whose presence excludes 1.
        expected = sum(
            1
            for index in range(chunked.chunk_count)
            if os.path.exists(chunked._chunk_path(index))
            and 1 not in chunked.chunk_presence(index)
        )
        assert expected > 0  # records 2..5 land in other chunks than 1
        document = chunked.retrieve(1)
        assert chunked.chunks_pruned == expected
        assert documents_equivalent(
            document, monolithic.retrieve(1), spec
        )

    def test_missing_sidecar_falls_back_to_parsing(self, tmp_path):
        spec = omim_key_spec()
        versions = self._versions()
        chunked = ChunkedArchiver(str(tmp_path), spec, chunk_count=4)
        for version in versions:
            chunked.add_version(version.copy())
        for index in range(chunked.chunk_count):
            path = chunked._presence_path(index)
            if os.path.exists(path):
                os.remove(path)
        reopened = ChunkedArchiver(str(tmp_path), spec, chunk_count=4)
        monolithic = Archive(spec)
        for version in versions:
            monolithic.add_version(version.copy())
        for number in range(1, len(versions) + 1):
            assert documents_equivalent(
                reopened.retrieve(number), monolithic.retrieve(number), spec
            )
        assert reopened.chunks_pruned == 0

    def test_persistent_ingestor_copy_content_isolates_cache(self, tmp_path):
        """Mutating a ``copy_content=True`` retrieval must not leak into
        the ingestor's cached chunk archives (which later flushes would
        persist)."""
        spec = omim_key_spec()
        versions = self._versions()
        ingestor = PersistentIngestor(str(tmp_path), spec, chunk_count=4)
        ingestor.ingest_batch([v.copy() for v in versions])
        document, _ = ingestor.retrieve(2, copy_content=True)
        before = to_string(ingestor.retrieve(2)[0])
        for node in document.iter_elements():
            if node.tag == "Title" and node.children:
                node.children[0].text = "VANDALIZED"
        assert to_string(ingestor.retrieve(2)[0]) == before

    def test_persistent_ingestor_prunes_unadopted_chunks(self, tmp_path):
        spec = omim_key_spec()
        versions = self._versions()
        ingestor = PersistentIngestor(str(tmp_path), spec, chunk_count=8)
        ingestor.ingest_batch([v.copy() for v in versions])
        ingestor.drop_caches()  # force re-adoption through the prune gate
        expected = sum(
            1
            for index in range(ingestor.chunked.chunk_count)
            if os.path.exists(ingestor.chunked._chunk_path(index))
            and 1 not in ingestor.chunked.chunk_presence(index)
        )
        document, _ = ingestor.retrieve(1)
        assert ingestor.chunks_pruned == expected > 0
        monolithic = Archive(spec)
        for version in versions:
            monolithic.add_version(version.copy())
        assert documents_equivalent(document, monolithic.retrieve(1), spec)


class TestWeaveHistoryRuns:
    def test_changes_match_per_version_rendering(self):
        """The run-based weave history equals the brute-force
        version-at-a-time computation, including delete/reinsert gaps."""
        spec = company_key_spec()
        options = ArchiveOptions(compaction=True)

        def doc(salary):
            db = Element("db")
            dept = db.append(Element("dept"))
            dept.append(Element("name")).append(Text("finance"))
            emp = dept.append(Element("emp"))
            emp.append(Element("fn")).append(Text("John"))
            emp.append(Element("ln")).append(Text("Doe"))
            emp.append(Element("sal")).append(Text(salary))
            return db

        def doc_without_emp():
            db = Element("db")
            dept = db.append(Element("dept"))
            dept.append(Element("name")).append(Text("finance"))
            return db

        archive = Archive(spec, options)
        for document in [
            doc("10K"),
            doc("10K"),
            doc("20K"),
            doc_without_emp(),  # John vanishes at v4
            doc("20K"),  # ... and returns
            doc("10K"),
        ]:
            archive.add_version(document)
        path = "/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal"
        history = archive.history(path)
        node = archive.root
        inherited = archive.root.timestamp
        for step in ["db", "dept", "emp", "sal"]:
            for child in node.children:
                if child.label.tag == step:
                    inherited = child.effective_timestamp(inherited)
                    node = child
                    break
        assert node.weave is not None
        # Brute force: render every living version, group equal runs.
        from repro.core import VersionSet

        expected = []
        previous, run = None, None
        for version in history.existence:
            rendered = "\n".join(node.weave.lines_at(version))
            if rendered == previous and run is not None:
                run.add(version)
            else:
                if run is not None and previous is not None:
                    expected.append((run.to_text(), previous))
                run = VersionSet([version])
                previous = rendered
        if run is not None and previous is not None:
            expected.append((run.to_text(), previous))
        got = [(ts.to_text(), content) for ts, content in history.changes]
        assert got == expected
