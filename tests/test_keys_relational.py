"""Tests for relational-schema key generation (keys.relational)."""

import pytest

from repro.core import documents_equivalent
from repro.keys import (
    KeySpecError,
    RelationalArchiver,
    RelationalSchema,
    Table,
    keys_for_schema,
    rows_to_document,
    satisfies,
)

EMPLOYEE = Table(
    name="employee",
    columns=("emp_id", "name", "dept", "salary"),
    primary_key=("emp_id",),
)
ASSIGNMENT = Table(
    name="assignment",
    columns=("emp_id", "project", "role"),
    primary_key=("emp_id", "project"),
)
SCHEMA = RelationalSchema(tables=[EMPLOYEE, ASSIGNMENT])


class TestSchema:
    def test_rejects_missing_pk_column(self):
        with pytest.raises(KeySpecError):
            Table(name="t", columns=("a",), primary_key=("b",))

    def test_rejects_empty_pk(self):
        with pytest.raises(KeySpecError):
            Table(name="t", columns=("a",), primary_key=())

    def test_rejects_duplicate_tables(self):
        with pytest.raises(KeySpecError):
            RelationalSchema(tables=[EMPLOYEE, EMPLOYEE])


class TestKeyGeneration:
    def test_row_key_is_primary_key(self):
        spec = keys_for_schema(SCHEMA)
        employee_key = spec.key_for(("db", "employee"))
        assert employee_key.key_paths == (("emp_id",),)

    def test_composite_primary_key(self):
        spec = keys_for_schema(SCHEMA)
        assignment_key = spec.key_for(("db", "assignment"))
        assert set(assignment_key.key_paths) == {("emp_id",), ("project",)}

    def test_non_key_columns_are_singletons(self):
        spec = keys_for_schema(SCHEMA)
        assert spec.key_for(("db", "employee", "salary")).key_paths == ()

    def test_key_columns_covered_by_implied_keys(self):
        spec = keys_for_schema(SCHEMA)
        assert spec.key_for(("db", "employee", "emp_id")) is not None


class TestRowsToDocument:
    DATA = {
        "employee": [
            {"emp_id": 1, "name": "Jane", "dept": "finance", "salary": 90},
            {"emp_id": 2, "name": "John", "dept": "finance", "salary": None},
        ],
        "assignment": [
            {"emp_id": 1, "project": "alpha", "role": "lead"},
        ],
    }

    def test_document_satisfies_generated_keys(self):
        document = rows_to_document(SCHEMA, self.DATA)
        assert satisfies(document, keys_for_schema(SCHEMA))

    def test_null_columns_omitted(self):
        document = rows_to_document(SCHEMA, self.DATA)
        johns = [
            row
            for row in document.find_all("employee")
            if row.find("emp_id").text_content() == "2"
        ]
        assert johns[0].find("salary") is None

    def test_rejects_unknown_table(self):
        with pytest.raises(KeySpecError):
            rows_to_document(SCHEMA, {"nope": []})

    def test_rejects_unknown_column(self):
        with pytest.raises(KeySpecError):
            rows_to_document(
                SCHEMA, {"employee": [{"emp_id": 1, "bogus": "x"}]}
            )

    def test_rejects_null_primary_key(self):
        with pytest.raises(KeySpecError):
            rows_to_document(SCHEMA, {"employee": [{"emp_id": None, "name": "x"}]})


class TestRelationalArchiver:
    def test_cell_history_tracks_single_attribute_change(self):
        """The Sec. 8 comparison: only the changed cell is re-stored,
        and its history is directly addressable."""
        archiver = RelationalArchiver(schema=SCHEMA)
        base = {
            "employee": [
                {"emp_id": 1, "name": "Jane", "dept": "finance", "salary": 90},
            ]
        }
        raise_salary = {
            "employee": [
                {"emp_id": 1, "name": "Jane", "dept": "finance", "salary": 95},
            ]
        }
        archiver.add_snapshot(base)
        archiver.add_snapshot(raise_salary)
        row = archiver.row_history("employee", emp_id=1)
        assert row.existence.to_text() == "1-2"
        cell = archiver.cell_history("employee", "salary", emp_id=1)
        assert [(ts.to_text(), content) for ts, content in cell.changes] == [
            ("1", "90"),
            ("2", "95"),
        ]

    def test_composite_key_row_history(self):
        archiver = RelationalArchiver(schema=SCHEMA)
        archiver.add_snapshot(
            {"assignment": [{"emp_id": 1, "project": "alpha", "role": "lead"}]}
        )
        archiver.add_snapshot({"assignment": []})
        history = archiver.row_history("assignment", emp_id=1, project="alpha")
        assert history.existence.to_text() == "1"

    def test_snapshots_round_trip(self):
        archiver = RelationalArchiver(schema=SCHEMA)
        states = [
            {"employee": [{"emp_id": 1, "name": "A", "dept": "d", "salary": 1}]},
            {"employee": [
                {"emp_id": 1, "name": "A", "dept": "d", "salary": 2},
                {"emp_id": 2, "name": "B", "dept": "e", "salary": 3},
            ]},
        ]
        for state in states:
            archiver.add_snapshot(state)
        for number, state in enumerate(states, start=1):
            expected = rows_to_document(SCHEMA, state)
            assert documents_equivalent(
                archiver.archive.retrieve(number), expected, archiver.spec
            )
