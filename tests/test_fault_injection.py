"""Deterministic fault-injection drills over the storage seam.

The centerpiece enumerates every crashable operation of an ``ingest``
(and a ``recode``) — counted by a dry run — and kills the process at
each one in turn.  After every simulated death the archive must
recover to a state that is byte-identical to either the pre-operation
or the post-operation archive (never a torn mix), and ``fsck`` must
report it clean.

The rest of the suite covers the seam's other fault modes: torn
payload writes and flipped bits are detected on read as typed
integrity errors; transient ``EIO``/``ENOSPC`` is retried with
bounded backoff while persistent failure propagates; a torn WAL
record is classified and discarded, never replayed.
"""

import errno
import os
import shutil

import pytest

from repro.data.company import COMPANY_KEY_TEXT, company_versions
from repro.storage import (
    ChecksumMismatch,
    CrashPoint,
    FaultInjector,
    IntegrityError,
    TruncatedPayload,
    WalError,
    WriteAheadLog,
    create_archive,
    fsck_archive,
    inject,
    open_archive,
)
from repro.storage import faults
from repro.xmltree import to_pretty_string

BACKENDS = ["file", "chunked", "external"]
CODECS = ["raw", "gzip", "xmill", "xbin"]
#: Recode target per source codec (each pair exercised per backend).
RECODE_TARGET = {"raw": "gzip", "gzip": "xmill", "xmill": "xbin", "xbin": "raw"}


@pytest.fixture(scope="module")
def versions():
    return list(company_versions())


def archive_path(base, kind):
    return os.path.join(base, "archive.xml" if kind == "file" else "store")


def build_archive(base, kind, codec, versions, count=2):
    """A pre-state archive holding ``count`` versions, keys sidecar set."""
    os.makedirs(base, exist_ok=True)
    path = archive_path(base, kind)
    backend = create_archive(
        path, COMPANY_KEY_TEXT, kind=kind, chunk_count=2, codec=codec
    )
    backend.ingest_batch([v.copy() for v in versions[:count]])
    backend.close()
    return path


def snapshot(base):
    """Every file under ``base`` as relpath → bytes."""
    state = {}
    for root, _dirs, files in os.walk(base):
        for name in files:
            full = os.path.join(root, name)
            with open(full, "rb") as handle:
                state[os.path.relpath(full, base)] = handle.read()
    return state


def clone(source, target):
    if os.path.exists(target):
        shutil.rmtree(target)
    shutil.copytree(source, target)


def describe_difference(state, pre, post):
    """Debug string naming how ``state`` differs from both snapshots."""

    def diff(a, b):
        keys = set(a) | set(b)
        return sorted(k for k in keys if a.get(k) != b.get(k))

    return f"vs pre: {diff(state, pre)}; vs post: {diff(state, post)}"


def drill(tmp_path, kind, versions, operate):
    """Kill ``operate`` before every counted op; archive must recover.

    ``operate(path)`` runs the mutation under test against the archive
    at ``path``.  The pre-state lives in ``tmp_path/pre``; the dry run
    (no crash) sizes the enumeration and captures the post-state.
    """
    pre_base = os.path.join(tmp_path, "pre")
    pre = snapshot(pre_base)

    dry_base = os.path.join(tmp_path, "dry")
    clone(pre_base, dry_base)
    counter = FaultInjector()
    with inject(counter):
        operate(archive_path(dry_base, kind))
    post = snapshot(dry_base)
    total_ops = counter.op_count
    assert total_ops > 0, "the operation must cross the durable seam"

    work_base = os.path.join(tmp_path, "work")
    for index in range(total_ops):
        clone(pre_base, work_base)
        path = archive_path(work_base, kind)
        with inject(FaultInjector().crash_at_op(index)):
            try:
                operate(path)
                crashed = False
            except CrashPoint:
                crashed = True
        assert crashed, f"op {index} of {total_ops} did not fire"
        # Reopen: constructor-time WAL recovery settles the directory.
        open_archive(path).close()
        report = fsck_archive(path)
        assert report.clean, f"fsck after crash at op {index}:\n{report}"
        state = snapshot(work_base)
        assert state == pre or state == post, (
            f"crash at op {index}/{total_ops} left a torn state: "
            f"{describe_difference(state, pre, post)}"
        )


class TestCrashDrill:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_ingest_survives_crash_at_every_op(
        self, tmp_path, kind, codec, versions
    ):
        tmp_path = str(tmp_path)
        build_archive(os.path.join(tmp_path, "pre"), kind, codec, versions)

        def operate(path):
            backend = open_archive(path)
            try:
                backend.ingest_batch([versions[2].copy()])
            finally:
                backend.close()

        drill(tmp_path, kind, versions, operate)

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_recode_survives_crash_at_every_op(
        self, tmp_path, kind, codec, versions
    ):
        tmp_path = str(tmp_path)
        build_archive(os.path.join(tmp_path, "pre"), kind, codec, versions)

        def operate(path):
            backend = open_archive(path)
            try:
                backend.recode(RECODE_TARGET[codec])
            finally:
                backend.close()

        drill(tmp_path, kind, versions, operate)

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_recovered_archive_still_answers_queries(
        self, tmp_path, kind, versions
    ):
        """After a mid-publish crash + recovery, retrievals still match."""
        tmp_path = str(tmp_path)
        pre_base = os.path.join(tmp_path, "pre")
        path = build_archive(pre_base, kind, "gzip", versions)
        reference = to_pretty_string(
            open_archive(path).retrieve(2)
        )
        counter = FaultInjector()
        dry_base = os.path.join(tmp_path, "dry")
        clone(pre_base, dry_base)
        with inject(counter):
            backend = open_archive(archive_path(dry_base, kind))
            backend.ingest_batch([versions[2].copy()])
            backend.close()
        # Crash roughly mid-way through the durable operations.
        work_base = os.path.join(tmp_path, "work")
        clone(pre_base, work_base)
        work_path = archive_path(work_base, kind)
        with inject(FaultInjector().crash_at_op(counter.op_count // 2)):
            with pytest.raises(CrashPoint):
                backend = open_archive(work_path)
                try:
                    backend.ingest_batch([versions[2].copy()])
                finally:
                    backend.close()
        recovered = open_archive(work_path)
        try:
            assert to_pretty_string(recovered.retrieve(2)) == reference
            assert recovered.last_version in (2, 3)
        finally:
            recovered.close()


class TestSilentCorruptionOnWrite:
    """Payloads corrupted *between* checksum and disk are caught on read."""

    def test_flipped_bit_in_staged_chunk_detected(self, tmp_path, versions):
        path = os.path.join(str(tmp_path), "store")
        backend = create_archive(
            path, COMPANY_KEY_TEXT, kind="chunked", chunk_count=2, codec="raw"
        )
        with inject(FaultInjector().flip_bit(r"chunk-\d+\.xml", bit=200)):
            backend.ingest_batch([v.copy() for v in versions[:2]])
        backend.close()
        reopened = open_archive(path)
        with pytest.raises(ChecksumMismatch):
            for version in (1, 2):
                reopened.retrieve(version)
        reopened.close()

    def test_truncated_stream_detected(self, tmp_path, versions):
        # The stream publishes by rename (its write path is the crash
        # drill's territory); truncation *at rest* is the torn-file
        # fault that reaches readers, and it must classify as such.
        path = os.path.join(str(tmp_path), "store")
        backend = create_archive(
            path, COMPANY_KEY_TEXT, kind="external", codec="raw"
        )
        backend.ingest_batch([v.copy() for v in versions[:2]])
        backend.close()
        os.truncate(os.path.join(path, "archive.jsonl"), 64)
        with pytest.raises(TruncatedPayload):
            open_archive(path).retrieve(1)

    def test_truncated_versions_sidecar_write_detected(self, tmp_path, versions):
        path = os.path.join(str(tmp_path), "store")
        backend = create_archive(
            path, COMPANY_KEY_TEXT, kind="chunked", chunk_count=2, codec="raw"
        )
        with inject(FaultInjector().truncate_write(r"versions\.txt", at_byte=0)):
            backend.ingest_batch([v.copy() for v in versions[:2]])
        backend.close()
        with pytest.raises(TruncatedPayload):
            open_archive(path)

    def test_corrupted_whole_file_archive_detected(self, tmp_path, versions):
        path = os.path.join(str(tmp_path), "archive.xml")
        backend = create_archive(path, COMPANY_KEY_TEXT, kind="file", codec="gzip")
        with inject(FaultInjector().flip_bit(r"archive\.xml\.tmp$", bit=999)):
            backend.ingest_batch([versions[0].copy()])
        backend.close()
        with pytest.raises(IntegrityError):
            open_archive(path).retrieve(1)

    def test_fsck_names_the_injured_file(self, tmp_path, versions):
        path = os.path.join(str(tmp_path), "store")
        backend = create_archive(
            path, COMPANY_KEY_TEXT, kind="chunked", chunk_count=2, codec="raw"
        )
        with inject(FaultInjector().flip_bit(r"chunk-0000\.xml", bit=321)):
            backend.ingest_batch([v.copy() for v in versions[:2]])
        backend.close()
        report = fsck_archive(path)
        assert not report.clean
        injured = {finding.path for finding in report.findings}
        assert "chunk-0000.xml" in injured


class TestTransientRetry:
    def test_transient_eio_is_retried(self, tmp_path, versions):
        path = os.path.join(str(tmp_path), "archive.xml")
        injector = FaultInjector().fail_transient(
            "write", r"archive\.xml", errno.EIO, times=2
        )
        with inject(injector):
            backend = create_archive(path, COMPANY_KEY_TEXT, kind="file")
            backend.ingest_batch([versions[0].copy()])
            backend.close()
        # The flaky device cost retries, not a failed commit.
        assert open_archive(path).last_version == 1
        writes = [op for op in injector.log if op[0] == "write"]
        assert len(writes) > 2

    def test_transient_enospc_is_retried(self, tmp_path, versions):
        path = os.path.join(str(tmp_path), "store")
        injector = FaultInjector().fail_transient(
            "write", r"versions\.txt", errno.ENOSPC, times=1
        )
        with inject(injector):
            backend = create_archive(
                path, COMPANY_KEY_TEXT, kind="chunked", chunk_count=2
            )
            backend.ingest_batch([versions[0].copy()])
            backend.close()
        assert open_archive(path).last_version == 1

    def test_persistent_failure_propagates(self, tmp_path, versions):
        path = os.path.join(str(tmp_path), "archive.xml")
        injector = FaultInjector().fail_transient(
            "write", r"archive\.xml", errno.EIO, times=100
        )
        with inject(injector):
            with pytest.raises(OSError) as caught:
                backend = create_archive(path, COMPANY_KEY_TEXT, kind="file")
                backend.ingest_batch([versions[0].copy()])
            assert caught.value.errno == errno.EIO

    def test_non_transient_errno_is_not_retried(self, tmp_path):
        attempts = []

        def operation():
            attempts.append(1)
            raise OSError(errno.EACCES, "denied")

        with pytest.raises(OSError):
            faults.retry_transient(operation)
        assert len(attempts) == 1


class TestTornWalRecord:
    """Regression: a torn or garbage WAL record is classified and
    discarded — recovery never replays bytes that were not durable
    intent, and never crashes on them either."""

    def test_torn_json_classified_and_discarded(self, tmp_path):
        wal_path = os.path.join(str(tmp_path), "wal.json")
        with open(wal_path, "w", encoding="utf-8") as handle:
            handle.write('{"format": 1, "entr')
        wal = WriteAheadLog(wal_path)
        with pytest.raises(WalError) as caught:
            wal.read_record()
        assert caught.value.reason == "torn"
        assert wal.recover() == "discarded-torn-record"
        assert not os.path.exists(wal_path)

    def test_checksum_mismatch_classified_as_torn(self, tmp_path):
        wal_path = os.path.join(str(tmp_path), "wal.json")
        wal = WriteAheadLog(wal_path)
        staged = os.path.join(str(tmp_path), "payload.bin")
        with open(staged + ".tmp", "wb") as handle:
            handle.write(b"staged")
        wal.append([staged])
        # Rot one byte of the durable record.
        with open(wal_path, "r+b") as handle:
            handle.seek(12)
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0x20]))
        with pytest.raises(WalError) as caught:
            wal.read_record()
        assert caught.value.reason == "torn"
        # The record was never durable intent: staged files roll back.
        assert wal.recover(stray_tmps=[staged + ".tmp"]) == (
            "discarded-torn-record"
        )
        assert not os.path.exists(staged + ".tmp")
        assert not os.path.exists(staged)

    def test_malformed_record_classified(self, tmp_path):
        wal_path = os.path.join(str(tmp_path), "wal.json")
        with open(wal_path, "w", encoding="utf-8") as handle:
            handle.write('{"format": 1}')
        wal = WriteAheadLog(wal_path)
        with pytest.raises(WalError) as caught:
            wal.read_record()
        assert caught.value.reason == "malformed"
        assert wal.recover() == "discarded-torn-record"

    def test_binary_garbage_record_discarded(self, tmp_path):
        wal_path = os.path.join(str(tmp_path), "wal.json")
        with open(wal_path, "wb") as handle:
            handle.write(bytes(range(256)))
        wal = WriteAheadLog(wal_path)
        assert wal.recover() == "discarded-torn-record"

    def test_archive_opens_after_torn_wal(self, tmp_path):
        base = str(tmp_path)
        versions = list(company_versions())
        path = build_archive(base, "chunked", "raw", versions)
        with open(os.path.join(path, "wal.json"), "w") as handle:
            handle.write('{"format": 1, "entr')
        backend = open_archive(path)
        try:
            assert backend.last_version == 2
        finally:
            backend.close()
