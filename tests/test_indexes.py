"""Tests for timestamp trees (Sec. 7.1) and the key index (Sec. 7.2)."""

import pytest

from repro.core import Archive, ArchiveError, VersionSet, documents_equivalent
from repro.data import OmimGenerator, omim_key_spec
from repro.data.company import company_key_spec, company_versions
from repro.indexes import (
    KeyIndex,
    TimestampTreeIndex,
    build_timestamp_tree,
    search_timestamp_tree,
)
from repro.core.nodes import ArchiveNode
from repro.keys.annotate import KeyLabel


def company_archive():
    archive = Archive(company_key_spec())
    for version in company_versions():
        archive.add_version(version)
    return archive


def _leaf(tag, versions, inherited):
    return ArchiveNode(
        label=KeyLabel(tag=tag, key=()), timestamp=VersionSet(versions)
    )


class TestTimestampTree:
    def test_build_empty(self):
        assert build_timestamp_tree([], VersionSet([1])) is None

    def test_root_union(self):
        inherited = VersionSet.parse("1-9")
        children = [
            _leaf("a", [1, 2], inherited),
            _leaf("b", [3, 4, 5], inherited),
            _leaf("c", [7], inherited),
        ]
        tree = build_timestamp_tree(children, inherited)
        assert tree.timestamp == VersionSet.parse("1-5,7")

    def test_search_finds_relevant_children(self):
        inherited = VersionSet.parse("1-9")
        children = [
            _leaf("a", [1, 2], inherited),
            _leaf("b", [3, 4, 5], inherited),
            _leaf("c", [2, 7], inherited),
            _leaf("d", [9], inherited),
        ]
        tree = build_timestamp_tree(children, inherited)
        assert search_timestamp_tree(tree, 2, 4) == [0, 2]
        assert search_timestamp_tree(tree, 9, 4) == [3]
        assert search_timestamp_tree(tree, 6, 4) == []

    def test_paper_figure15_shape(self):
        """Fig. 15: searching version 2 prunes the 3-9 subtree."""
        inherited = VersionSet.parse("1-9")
        timestamps = ["1-2", "1-2", "3-5", "4", "3-5", "3-5", "4-6", "3-5,7-9"]
        children = [
            ArchiveNode(
                label=KeyLabel(tag=f"l{i}", key=()),
                timestamp=VersionSet.parse(text),
            )
            for i, text in enumerate(timestamps, start=1)
        ]
        tree = build_timestamp_tree(children, inherited)
        from repro.indexes import ProbeCount

        probes = ProbeCount()
        found = search_timestamp_tree(tree, 2, len(children), probes)
        assert found == [0, 1]
        # Pruning means far fewer probes than the full tree (15 nodes).
        assert probes.tree_probes < 10

    def test_inherited_timestamp_children(self):
        inherited = VersionSet.parse("1-4")
        children = [ArchiveNode(label=KeyLabel(tag="a", key=()), timestamp=None)]
        tree = build_timestamp_tree(children, inherited)
        assert search_timestamp_tree(tree, 3, 1) == [0]


class TestTimestampTreeIndex:
    def test_indexed_retrieval_matches_plain(self):
        archive = company_archive()
        index = TimestampTreeIndex(archive)
        spec = company_key_spec()
        for version in range(1, 5):
            plain = archive.retrieve(version)
            indexed, probes = index.retrieve(version)
            assert documents_equivalent(plain, indexed, spec)
            assert probes.total() > 0

    def test_unknown_version_raises(self):
        index = TimestampTreeIndex(company_archive())
        with pytest.raises(ValueError):
            index.retrieve(40)

    def test_probe_savings_on_sparse_version(self):
        """Retrieving a sparse early version probes far fewer nodes than
        the naive scan when the archive has accreted many elements."""
        spec = omim_key_spec()
        generator = OmimGenerator(seed=9, initial_records=4)
        # Accrete aggressively so version 1 is a small slice of the end.
        from repro.data import OmimChangeRates

        generator.rates = OmimChangeRates(
            delete_fraction=0.0, insert_fraction=0.8, modify_fraction=0.0
        )
        archive = Archive(spec)
        for version in generator.generate_versions(8):
            archive.add_version(version)
        index = TimestampTreeIndex(archive)
        _, probes = index.retrieve(1)
        naive = index.naive_probe_count(1)
        assert probes.total() < naive

    def test_tree_node_count_positive(self):
        index = TimestampTreeIndex(company_archive())
        assert index.tree_node_count() > 0


class TestKeyIndex:
    def test_history_matches_archive(self):
        archive = company_archive()
        index = KeyIndex(archive)
        for path in [
            "/db",
            "/db/dept[name=finance]",
            "/db/dept[name=marketing]",
            "/db/dept[name=finance]/emp[fn=John, ln=Doe]",
            "/db/dept[name=finance]/emp[fn=Jane, ln=Smith]",
            "/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal",
        ]:
            expected = archive.history(path).existence
            got, comparisons = index.history(path)
            assert got == expected, path
            assert comparisons >= 1

    def test_paper_example(self):
        """Sec. 7.2: John Doe's history via the index is 3,4."""
        index = KeyIndex(company_archive())
        timestamps, _ = index.history(
            "/db/dept[name=finance]/emp[fn=John, ln=Doe]"
        )
        assert timestamps.to_text() == "3-4"

    def test_missing_element_raises(self):
        index = KeyIndex(company_archive())
        with pytest.raises(ArchiveError):
            index.history("/db/dept[name=hr]")

    def test_comparisons_logarithmic(self):
        """O(l log d): the comparison count stays near l * log2(d)."""
        spec = omim_key_spec()
        generator = OmimGenerator(seed=3, initial_records=200)
        archive = Archive(spec)
        version = generator.initial_version()
        archive.add_version(version)
        index = KeyIndex(archive)
        record = version.find("Record")
        num = record.find("Num").text_content()
        _, comparisons = index.history(f"/ROOT/Record[Num={num}]")
        # Two steps; degree ~200 → ~2 * 8 comparisons, far below 200.
        assert comparisons < 40

    def test_record_count(self):
        index = KeyIndex(company_archive())
        assert index.record_count() >= 8
