"""Tests for the synthetic dataset generators and change simulators."""

import pytest

from repro.core import Archive, documents_equivalent
from repro.data import (
    OmimChangeRates,
    OmimGenerator,
    SwissProtGenerator,
    XMarkGenerator,
    omim_key_spec,
    swissprot_key_spec,
    xmark_key_spec,
)
from repro.keys import annotate_keys, check_document
from repro.xmltree import serialized_size


class TestOmimGenerator:
    def test_deterministic(self):
        a = OmimGenerator(seed=5, initial_records=10).generate_versions(3)
        b = OmimGenerator(seed=5, initial_records=10).generate_versions(3)
        from repro.xmltree import to_string

        assert [to_string(v) for v in a] == [to_string(v) for v in b]

    def test_satisfies_keys_across_versions(self):
        spec = omim_key_spec()
        for version in OmimGenerator(seed=1, initial_records=15).generate_versions(4):
            assert not check_document(version, spec)

    def test_accretive_growth(self):
        versions = OmimGenerator(seed=2, initial_records=20).generate_versions(6)
        sizes = [serialized_size(v) for v in versions]
        assert sizes[-1] > sizes[0]
        counts = [len(v.find_all("Record")) for v in versions]
        assert counts == sorted(counts)  # monotone: mostly additions

    def test_change_mix_mostly_insertions(self):
        """Consecutive versions share almost all records (OMIM profile)."""
        versions = OmimGenerator(seed=3, initial_records=50).generate_versions(2)
        nums_v1 = {r.find("Num").text_content() for r in versions[0].find_all("Record")}
        nums_v2 = {r.find("Num").text_content() for r in versions[1].find_all("Record")}
        shared = nums_v1 & nums_v2
        assert len(shared) >= 0.98 * len(nums_v1)
        assert len(nums_v2) >= len(nums_v1)

    def test_archivable(self):
        spec = omim_key_spec()
        versions = OmimGenerator(seed=4, initial_records=12).generate_versions(3)
        archive = Archive(spec)
        for version in versions:
            archive.add_version(version)
        for number, original in enumerate(versions, start=1):
            assert documents_equivalent(archive.retrieve(number), original, spec)

    def test_custom_rates(self):
        rates = OmimChangeRates(delete_fraction=0.5, insert_fraction=0.0)
        generator = OmimGenerator(seed=5, initial_records=20, rates=rates)
        versions = generator.generate_versions(2)
        counts = [len(v.find_all("Record")) for v in versions]
        assert counts[1] < counts[0]

    def test_rejects_zero_versions(self):
        with pytest.raises(ValueError):
            OmimGenerator().generate_versions(0)


class TestSwissProtGenerator:
    def test_satisfies_keys_across_versions(self):
        spec = swissprot_key_spec()
        for version in SwissProtGenerator(seed=1, initial_records=12).generate_versions(3):
            assert not check_document(version, spec)

    def test_fast_growth(self):
        """Swiss-Prot's insert rate (26%) dwarfs OMIM's (0.2%)."""
        versions = SwissProtGenerator(seed=2, initial_records=30).generate_versions(5)
        counts = [len(v.find_all("Record")) for v in versions]
        assert counts[-1] > 1.3 * counts[0]

    def test_records_have_sequences(self):
        version = SwissProtGenerator(seed=3, initial_records=5).initial_version()
        for record in version.find_all("Record"):
            sequence = record.find("sequence")
            assert sequence is not None
            assert len(sequence.text_content()) > 50

    def test_archivable(self):
        spec = swissprot_key_spec()
        versions = SwissProtGenerator(seed=4, initial_records=10).generate_versions(3)
        archive = Archive(spec)
        for version in versions:
            archive.add_version(version)
        for number, original in enumerate(versions, start=1):
            assert documents_equivalent(archive.retrieve(number), original, spec)


class TestXMarkGenerator:
    def test_satisfies_keys(self):
        spec = xmark_key_spec()
        site = XMarkGenerator(seed=1, items=30, people=15, auctions=10).initial_version()
        assert not check_document(site, spec)

    def test_structure_covers_regions_and_auctions(self):
        site = XMarkGenerator(seed=2, items=30, people=15, auctions=10).initial_version()
        assert site.find("regions") is not None
        assert len(site.find("people").find_all("person")) == 15
        assert len(site.find("open_auctions").find_all("open_auction")) == 10
        total_items = sum(
            len(region.find_all("item"))
            for region in site.find("regions").element_children()
        )
        assert total_items == 30

    def test_attribute_keys_annotate(self):
        spec = xmark_key_spec()
        site = XMarkGenerator(seed=3, items=10, people=5, auctions=4).initial_version()
        annotated = annotate_keys(site, spec)
        items = [n for n in site.iter_elements() if n.tag == "item"]
        labels = {str(annotated.label(item)) for item in items}
        assert len(labels) == len(items)  # ids keep items distinct

    def test_random_changes_keep_keys_valid(self):
        spec = xmark_key_spec()
        generator = XMarkGenerator(seed=4, items=30, people=15, auctions=10)
        for version in generator.versions_random(4, 10.0):
            assert not check_document(version, spec)

    def test_random_changes_change_record_count_only_via_balance(self):
        generator = XMarkGenerator(seed=5, items=30, people=15, auctions=10)
        v1 = generator.initial_version()
        v2 = generator.apply_random_changes(v1, 10.0)
        count = lambda site: len(  # noqa: E731
            [n for n in site.iter_elements() if n.tag in ("item", "person", "open_auction")]
        )
        assert count(v2) == count(v1)  # deletions balanced by insertions

    def test_key_mutation_preserves_content_shape(self):
        generator = XMarkGenerator(seed=6, items=30, people=15, auctions=10)
        v1 = generator.initial_version()
        v2 = generator.apply_key_mutation(v1, 10.0)
        ids_v1 = {n.get_attribute("id") for n in v1.iter_elements() if n.get_attribute("id")}
        ids_v2 = {n.get_attribute("id") for n in v2.iter_elements() if n.get_attribute("id")}
        assert ids_v1 != ids_v2
        # Same number of records — only identities moved.
        assert len(ids_v1) == len(ids_v2)

    def test_worst_case_archivable(self):
        spec = xmark_key_spec()
        generator = XMarkGenerator(seed=7, items=20, people=10, auctions=8)
        versions = generator.versions_worst_case(3, 10.0)
        archive = Archive(spec)
        for version in versions:
            archive.add_version(version)
        for number, original in enumerate(versions, start=1):
            assert documents_equivalent(archive.retrieve(number), original, spec)
