"""Property-based integration tests of the archiver.

Random sequences of keyed database states are archived; every stored
version must be reconstructable exactly (up to keyed-sibling order), in
every archiver configuration, with the timestamp-superset invariant and
the XML round-trip holding throughout.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Archive,
    ArchiveOptions,
    Fingerprinter,
    documents_equivalent,
)
from repro.data.company import company_key_spec
from repro.xmltree import Element, Text

_names = st.sampled_from(["ann", "bob", "cat", "dan", "eve", "fay"])
_salaries = st.sampled_from(["10K", "20K", "30K", "40K"])
_tels = st.sets(st.sampled_from(["111", "222", "333", "444"]), max_size=3)


@st.composite
def _employee(draw):
    return {
        "fn": draw(_names),
        "ln": draw(_names),
        "sal": draw(st.one_of(st.none(), _salaries)),
        "tels": sorted(draw(_tels)),
    }


@st.composite
def _state(draw):
    """One database state: departments with unique names, employees with
    unique (fn, ln) within a department."""
    dept_names = draw(
        st.sets(st.sampled_from(["dx", "dy", "dz"]), min_size=0, max_size=3)
    )
    state = {}
    for name in sorted(dept_names):
        employees = draw(st.lists(_employee(), max_size=4))
        unique = {}
        for emp in employees:
            unique[(emp["fn"], emp["ln"])] = emp
        state[name] = unique
    return state


def _state_to_document(state) -> Element:
    db = Element("db")
    for dept_name, employees in state.items():
        dept = db.append(Element("dept"))
        name = dept.append(Element("name"))
        name.append(Text(dept_name))
        for (fn, ln), emp in employees.items():
            emp_el = dept.append(Element("emp"))
            emp_el.append(Element("fn")).append(Text(fn))
            emp_el.append(Element("ln")).append(Text(ln))
            if emp["sal"] is not None:
                emp_el.append(Element("sal")).append(Text(emp["sal"]))
            for tel in emp["tels"]:
                emp_el.append(Element("tel")).append(Text(tel))
    return db


_version_sequences = st.lists(_state(), min_size=1, max_size=5)

_configurations = st.sampled_from(
    [
        ArchiveOptions(),
        ArchiveOptions(compaction=True),
        ArchiveOptions(fingerprinter=Fingerprinter(bits=64)),
        ArchiveOptions(fingerprinter=Fingerprinter(bits=2)),  # force collisions
        ArchiveOptions(fingerprinter=Fingerprinter(bits=64), compaction=True),
    ]
)


class TestArchiveProperties:
    @given(_version_sequences, _configurations)
    @settings(max_examples=40, deadline=None)
    def test_retrieval_fidelity(self, states, options):
        spec = company_key_spec()
        archive = Archive(spec, options)
        documents = [_state_to_document(state) for state in states]
        for document in documents:
            archive.add_version(document.copy())
        for number, original in enumerate(documents, start=1):
            rebuilt = archive.retrieve(number)
            assert rebuilt is not None
            assert documents_equivalent(rebuilt, original, spec)

    @given(_version_sequences)
    @settings(max_examples=30, deadline=None)
    def test_timestamp_superset_invariant(self, states):
        spec = company_key_spec()
        archive = Archive(spec)
        for state in states:
            archive.add_version(_state_to_document(state))

        def check(node, inherited):
            timestamp = node.effective_timestamp(inherited)
            assert inherited.issuperset(timestamp), (
                f"{node.label}: {timestamp.to_text()} not within "
                f"{inherited.to_text()}"
            )
            for child in node.children:
                check(child, timestamp)
            if node.alternatives is not None:
                for alternative in node.alternatives:
                    if alternative.timestamp is not None:
                        assert timestamp.issuperset(alternative.timestamp)

        for child in archive.root.children:
            check(child, archive.root.timestamp)

    @given(_version_sequences)
    @settings(max_examples=25, deadline=None)
    def test_xml_round_trip(self, states):
        spec = company_key_spec()
        archive = Archive(spec)
        for state in states:
            archive.add_version(_state_to_document(state))
        revived = Archive.from_xml_string(archive.to_xml_string(), spec)
        assert revived.to_xml_string() == archive.to_xml_string()
        for number in range(1, len(states) + 1):
            a = archive.retrieve(number)
            b = revived.retrieve(number)
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert documents_equivalent(a, b, spec)

    @given(_version_sequences)
    @settings(max_examples=25, deadline=None)
    def test_alternative_timestamps_partition_existence(self, states):
        """Frontier alternatives cover the node's whole existence without
        overlap once timestamps become explicit."""
        spec = company_key_spec()
        archive = Archive(spec)
        for state in states:
            archive.add_version(_state_to_document(state))

        def check(node, inherited):
            timestamp = node.effective_timestamp(inherited)
            if node.alternatives is not None and len(node.alternatives) > 1:
                union = None
                total = 0
                for alternative in node.alternatives:
                    assert alternative.timestamp is not None
                    total += len(alternative.timestamp)
                    union = (
                        alternative.timestamp.copy()
                        if union is None
                        else union.union(alternative.timestamp)
                    )
                assert union == timestamp
                assert total == len(timestamp)  # pairwise disjoint
            for child in node.children:
                check(child, timestamp)

        for child in archive.root.children:
            check(child, archive.root.timestamp)
