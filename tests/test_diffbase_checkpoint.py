"""Tests for the checkpointed delta repository (diffbase.checkpoint)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import documents_equivalent
from repro.data.company import company_key_spec, company_versions
from repro.diffbase import (
    CheckpointedDiffRepository,
    FullCopyRepository,
    IncrementalDiffRepository,
)


class TestCheckpointedRepository:
    @pytest.mark.parametrize("interval", [1, 2, 3, 10])
    def test_round_trips(self, interval):
        repo = CheckpointedDiffRepository(interval)
        spec = company_key_spec()
        for version in company_versions():
            repo.add_version(version)
        for number, original in enumerate(company_versions(), start=1):
            assert documents_equivalent(repo.retrieve(number), original, spec)

    def test_interval_one_is_full_copies(self):
        repo = CheckpointedDiffRepository(1)
        full = FullCopyRepository()
        for version in company_versions():
            repo.add_version(version)
            full.add_version(version)
        assert repo.total_bytes() == full.total_bytes()
        assert repo.checkpoint_count() == 4

    def test_large_interval_matches_incremental(self):
        repo = CheckpointedDiffRepository(100)
        incremental = IncrementalDiffRepository()
        for version in company_versions():
            repo.add_version(version)
            incremental.add_version(version)
        assert repo.total_bytes() == incremental.total_bytes()
        assert repo.checkpoint_count() == 1

    @pytest.mark.parametrize("interval", [2, 3])
    def test_applications_bounded(self, interval):
        repo = CheckpointedDiffRepository(interval)
        for version in company_versions():
            repo.add_version(version)
        for version in range(1, 5):
            assert repo.applications_for(version) <= interval - 1

    def test_checkpoint_versions_are_free(self):
        repo = CheckpointedDiffRepository(2)
        for version in company_versions():
            repo.add_version(version)
        assert repo.applications_for(1) == 0
        assert repo.applications_for(3) == 0  # versions 1, 3 are checkpoints
        assert repo.applications_for(2) == 1
        assert repo.applications_for(4) == 1

    def test_empty_versions(self):
        repo = CheckpointedDiffRepository(2)
        repo.add_version(company_versions()[0])
        repo.add_version(None)
        repo.add_version(company_versions()[1])
        assert repo.retrieve(2) is None
        assert repo.retrieve(3) is not None

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            CheckpointedDiffRepository(0)

    def test_out_of_range(self):
        repo = CheckpointedDiffRepository(2)
        repo.add_version(company_versions()[0])
        with pytest.raises(IndexError):
            repo.retrieve(2)
        with pytest.raises(IndexError):
            repo.applications_for(0)


class TestCheckpointSpaceTimeTradeoff:
    def test_space_decreases_with_interval(self):
        """Bigger interval → fewer snapshots → less space (accretive data)."""
        from repro.data import OmimGenerator

        versions = OmimGenerator(seed=5, initial_records=20).generate_versions(8)
        sizes = {}
        for interval in (1, 2, 4, 100):
            repo = CheckpointedDiffRepository(interval)
            for version in versions:
                repo.add_version(version)
            sizes[interval] = repo.total_bytes()
        assert sizes[1] > sizes[2] > sizes[4] > sizes[100]


_version_texts = st.lists(
    st.lists(st.sampled_from(["p", "q", "r"]), min_size=0, max_size=5),
    min_size=1,
    max_size=6,
)


class TestCheckpointProperties:
    @given(_version_texts, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_every_version_retrievable(self, contents, interval):
        from repro.xmltree import Element, Text

        repo = CheckpointedDiffRepository(interval)
        documents = []
        for lines in contents:
            doc = Element("doc")
            for line in lines:
                doc.append(Element("line")).append(Text(line))
            documents.append(doc)
            repo.add_version(doc)
        from repro.xmltree import to_string

        for number, document in enumerate(documents, start=1):
            assert to_string(repo.retrieve(number)) == to_string(document)
