"""``fsck_archive`` scrub/repair behaviour and the CLI's exit taxonomy.

Covers the repair philosophy end to end: everything derivable
(``.presence`` sidecars, ``versions.txt`` checksums, the manifest, the
checksum sidecar, WAL state) is rebuilt in place; payloads that fail
their checksum but still decode are re-recorded; payloads that do not
decode are *quarantined* — moved aside, never deleted — and later
reads raise a typed error instead of serving garbage.  The acceptance
bar for presence repair is query equivalence: a repaired archive must
answer retrievals byte-identically to an undamaged copy.
"""

import json
import os
import shutil

import pytest

from repro.cli import EXIT_CORRUPT, main
from repro.data.company import COMPANY_KEY_TEXT, company_versions
from repro.storage import (
    QUARANTINE_DIR,
    IntegrityError,
    WriteAheadLog,
    create_archive,
    fsck_archive,
    open_archive,
)
from repro.xmltree.serializer import to_pretty_string

BACKENDS = ["file", "chunked", "external"]


@pytest.fixture(scope="module")
def versions():
    return [v.copy() for v in list(company_versions())[:3]]


def build(base, kind, versions, codec=None):
    """A three-version archive whose chunked layout fills both chunks."""
    os.makedirs(base, exist_ok=True)
    path = os.path.join(base, "archive.xml" if kind == "file" else "store")
    backend = create_archive(
        path, COMPANY_KEY_TEXT, kind=kind, chunk_count=2, codec=codec
    )
    backend.ingest_batch([v.copy() for v in versions])
    backend.close()
    return path


def renderings(path):
    backend = open_archive(path)
    try:
        return [
            to_pretty_string(backend.retrieve(v))
            for v in range(1, backend.last_version + 1)
        ]
    finally:
        backend.close()


def codes(report):
    return {finding.code for finding in report.findings}


class TestCleanArchives:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_fresh_archive_is_clean(self, tmp_path, versions, kind):
        path = build(str(tmp_path), kind, versions)
        report = fsck_archive(path)
        assert report.clean, str(report)
        assert report.kind == kind

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_deep_scrub_is_clean(self, tmp_path, versions, kind):
        path = build(str(tmp_path), kind, versions, codec="gzip")
        report = fsck_archive(path, deep=True)
        assert report.clean, str(report)

    def test_missing_archive_raises(self, tmp_path):
        from repro.core.archive import ArchiveError

        with pytest.raises(ArchiveError):
            fsck_archive(str(tmp_path / "nope"))


class TestDerivableRepairs:
    def test_presence_repair_restores_query_equivalence(
        self, tmp_path, versions
    ):
        """The acceptance bar: after ``--repair`` of a damaged
        ``.presence`` sidecar, every retrieval is byte-identical to the
        undamaged original's."""
        path = build(str(tmp_path), "chunked", versions)
        reference = renderings(path)
        # Lie about which versions chunk 0 stores.
        presence = os.path.join(path, "chunk-0000.presence")
        with open(presence, "w", encoding="utf-8") as handle:
            handle.write("1")
        report = fsck_archive(path)
        assert "presence-mismatch" in codes(report)
        assert report.unrepaired  # detect-only pass repairs nothing

        repaired = fsck_archive(path, repair=True)
        assert "presence-mismatch" in codes(repaired)
        assert not repaired.unrepaired, str(repaired)
        assert fsck_archive(path).clean
        assert renderings(path) == reference

    def test_deleted_presence_is_rebuilt(self, tmp_path, versions):
        path = build(str(tmp_path), "chunked", versions)
        reference = renderings(path)
        os.remove(os.path.join(path, "chunk-0001.presence"))
        repaired = fsck_archive(path, repair=True)
        assert "presence-mismatch" in codes(repaired)
        assert not repaired.unrepaired, str(repaired)
        assert renderings(path) == reference

    def test_corrupt_manifest_is_rebuilt(self, tmp_path, versions):
        path = build(str(tmp_path), "chunked", versions)
        reference = renderings(path)
        manifest = os.path.join(path, "manifest.json")
        with open(manifest, "wb") as handle:
            handle.write(b"\x00 not json \xff")
        report = fsck_archive(path)
        assert "manifest-corrupt" in codes(report)
        repaired = fsck_archive(path, repair=True)
        assert not [
            f for f in repaired.unrepaired if f.code == "manifest-corrupt"
        ], str(repaired)
        assert fsck_archive(path).clean
        assert renderings(path) == reference

    def test_corrupt_checksum_sidecar_is_rebuilt(self, tmp_path, versions):
        path = build(str(tmp_path), "external", versions)
        reference = renderings(path)
        with open(os.path.join(path, "checksums.json"), "w") as handle:
            handle.write("{ torn")
        repaired = fsck_archive(path, repair=True)
        assert "checksums-corrupt" in codes(repaired)
        assert not repaired.unrepaired, str(repaired)
        assert fsck_archive(path).clean
        assert renderings(path) == reference

    def test_stale_checksum_rerecorded_when_payload_decodes(
        self, tmp_path, versions
    ):
        path = build(str(tmp_path), "chunked", versions)
        meta = os.path.join(path, "versions.txt")
        with open(meta, "r", encoding="utf-8") as handle:
            text = handle.read()
        with open(meta, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")  # same value, different bytes
        report = fsck_archive(path)
        assert "checksum-mismatch" in codes(report)
        repaired = fsck_archive(path, repair=True)
        assert not repaired.unrepaired, str(repaired)
        assert fsck_archive(path).clean
        # Nothing was quarantined — the payload still decodes.
        assert not os.path.exists(os.path.join(path, QUARANTINE_DIR))

    def test_missing_payload_is_forgotten_not_invented(
        self, tmp_path, versions
    ):
        path = build(str(tmp_path), "chunked", versions)
        os.remove(os.path.join(path, "chunk-0001.xml"))
        report = fsck_archive(path)
        assert "missing-payload" in codes(report)
        repaired = fsck_archive(path, repair=True)
        missing = [
            f for f in repaired.findings if f.code == "missing-payload"
        ]
        assert missing and all(f.repaired for f in missing)
        assert "forgotten" in missing[0].repair


class TestQuarantine:
    def test_undecodable_payload_is_quarantined_never_deleted(
        self, tmp_path, versions
    ):
        path = build(str(tmp_path), "chunked", versions)
        chunk = os.path.join(path, "chunk-0000.xml")
        garbage = b"\x00\xffthis is not xml and not any codec\x00"
        with open(chunk, "wb") as handle:
            handle.write(garbage)
        repaired = fsck_archive(path, repair=True)
        mismatch = [
            f
            for f in repaired.findings
            if f.code in ("checksum-mismatch", "truncated-payload")
            and f.path == "chunk-0000.xml"
        ]
        assert mismatch and mismatch[0].repaired
        assert "quarantine" in mismatch[0].repair
        # The bytes survive, verbatim, under quarantine/.
        moved = os.path.join(path, QUARANTINE_DIR, "chunk-0000.xml")
        assert os.path.exists(moved)
        with open(moved, "rb") as handle:
            assert handle.read() == garbage
        assert not os.path.exists(chunk)

    def test_reads_after_quarantine_raise_typed_error(
        self, tmp_path, versions
    ):
        path = build(str(tmp_path), "chunked", versions)
        with open(os.path.join(path, "chunk-0000.xml"), "wb") as handle:
            handle.write(b"\x00garbage\x00")
        fsck_archive(path, repair=True)
        backend = open_archive(path)
        try:
            with pytest.raises(IntegrityError, match="quarantined"):
                backend.retrieve(1)
        finally:
            backend.close()
        # A later scrub remembers and reports the quarantined payload.
        report = fsck_archive(path)
        assert "quarantined" in codes(report)

    def test_skip_policy_serves_the_healthy_chunks(self, tmp_path, versions):
        """``on_corrupt="skip"`` degrades gracefully: retrieval serves
        whatever chunks still verify, counting the casualties."""
        path = build(str(tmp_path), "chunked", versions)
        # chunk-0001 carries presence "3": only version 3 reads it.
        with open(os.path.join(path, "chunk-0001.xml"), "wb") as handle:
            handle.write(b"\x00garbage\x00")
        strict = open_archive(path)
        try:
            with pytest.raises(IntegrityError):
                strict.retrieve(3)
        finally:
            strict.close()
        degraded = open_archive(path, on_corrupt="skip")
        try:
            result = degraded.retrieve(3)
            assert result is not None
            assert degraded.chunks_skipped_corrupt >= 1
            rendered = to_pretty_string(result)
            assert "<db" in rendered  # partial but well-formed answer
        finally:
            degraded.close()


class TestWalFindings:
    def test_pending_record_reported_and_recovered(self, tmp_path, versions):
        path = build(str(tmp_path), "chunked", versions)
        reference = renderings(path)
        wal = WriteAheadLog(os.path.join(path, "wal.json"))
        staged = os.path.join(path, "chunk-0000.xml")
        with open(staged + ".tmp", "wb") as handle:
            handle.write(b"staged-but-never-published")
        wal.append([staged], meta={"version_count": 9})
        report = fsck_archive(path)
        assert "wal-pending" in codes(report)
        repaired = fsck_archive(path, repair=True)
        pending = [f for f in repaired.findings if f.code == "wal-pending"]
        assert pending and pending[0].repaired
        assert "rolled-back" in pending[0].repair
        assert fsck_archive(path).clean
        assert renderings(path) == reference

    def test_torn_record_discarded(self, tmp_path, versions):
        path = build(str(tmp_path), "chunked", versions)
        with open(os.path.join(path, "wal.json"), "w") as handle:
            handle.write('{"format": 1, "entr')
        report = fsck_archive(path)
        assert "wal-torn" in codes(report)
        repaired = fsck_archive(path, repair=True)
        assert not repaired.unrepaired, str(repaired)
        assert fsck_archive(path).clean

    def test_stray_tmp_swept(self, tmp_path, versions):
        path = build(str(tmp_path), "chunked", versions)
        stray = os.path.join(path, "chunk-0003.xml.tmp")
        with open(stray, "wb") as handle:
            handle.write(b"orphan")
        report = fsck_archive(path)
        assert "stray-tmp" in codes(report)
        fsck_archive(path, repair=True)
        assert not os.path.exists(stray)
        assert fsck_archive(path).clean


class TestCliFsck:
    def run(self, *argv):
        return main([str(part) for part in argv])

    def test_clean_archive_exits_zero(self, tmp_path, versions, capsys):
        path = build(str(tmp_path), "file", versions)
        assert self.run("fsck", path) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_then_repair_exits_zero(
        self, tmp_path, versions, capsys
    ):
        path = build(str(tmp_path), "chunked", versions)
        with open(os.path.join(path, "chunk-0000.presence"), "w") as handle:
            handle.write("1")
        assert self.run("fsck", path) == 1
        assert "presence-mismatch" in capsys.readouterr().out
        assert self.run("fsck", path, "--repair") == 0
        capsys.readouterr()
        assert self.run("fsck", path) == 0

    def test_json_report(self, tmp_path, versions, capsys):
        path = build(str(tmp_path), "chunked", versions)
        os.remove(os.path.join(path, "chunk-0000.presence"))
        assert self.run("fsck", path, "--json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["kind"] == "chunked"
        assert any(
            finding["code"] == "presence-mismatch"
            for finding in payload["findings"]
        )

    def test_corrupt_read_exits_two_with_fsck_hint(
        self, tmp_path, versions, capsys
    ):
        path = build(str(tmp_path), "chunked", versions)
        with open(os.path.join(path, "chunk-0000.xml"), "wb") as handle:
            handle.write(b"\x00garbage\x00")
        out = str(tmp_path / "out.xml")
        assert self.run("get", path, "1", "-o", out) == EXIT_CORRUPT
        err = capsys.readouterr().err
        assert "corruption detected" in err
        assert "xarch fsck" in err

    def test_corrupt_manifest_exits_two(self, tmp_path, versions, capsys):
        path = build(str(tmp_path), "chunked", versions)
        with open(os.path.join(path, "manifest.json"), "w") as handle:
            handle.write("{ not json")
        assert self.run("stats", path) == EXIT_CORRUPT
        assert "corruption detected" in capsys.readouterr().err

    def test_repaired_archive_survives_round_trip(
        self, tmp_path, versions, capsys
    ):
        """CLI-level end-to-end: damage, repair, read back."""
        path = build(str(tmp_path), "chunked", versions)
        reference = renderings(path)
        shutil.copy(
            os.path.join(path, "chunk-0001.presence"),
            os.path.join(path, "chunk-0000.presence"),
        )
        assert self.run("fsck", path, "--repair") == 0
        capsys.readouterr()
        assert renderings(path) == reference
