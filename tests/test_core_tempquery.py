"""Tests for temporal queries / semantic change reports (core.tempquery)."""

import pytest

from repro.core import (
    Archive,
    ArchiveError,
    ArchiveOptions,
    archive_diff,
    first_appearance,
    keyed_diff,
    last_change,
)
from repro.data.company import company_key_spec, company_versions
from repro.keys import KeySpec, key
from repro.xmltree import parse_document


def company_archive(options=None):
    archive = Archive(company_key_spec(), options)
    for version in company_versions():
        archive.add_version(version)
    return archive


class TestArchiveDiff:
    def test_additions_reported(self):
        archive = company_archive()
        report = archive_diff(archive, 1, 2)
        assert [c.path for c in report.added()] == [
            "/db/dept[name=finance]/emp[fn=Jane, ln=Smith]"
        ]
        assert not report.deleted()
        assert not report.changed()

    def test_deletion_reported(self):
        archive = company_archive()
        report = archive_diff(archive, 3, 4)
        deleted = [c.path for c in report.deleted()]
        assert "/db/dept[name=marketing]" in deleted

    def test_content_change_reported(self):
        archive = company_archive()
        report = archive_diff(archive, 3, 4)
        changed = {c.path: (c.old_content, c.new_content) for c in report.changed()}
        sal_path = "/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal"
        assert changed[sal_path] == ("90K", "95K")

    def test_subtree_reported_once(self):
        """A deleted department is one change, not one per descendant."""
        archive = company_archive()
        report = archive_diff(archive, 3, 4)
        marketing = [c for c in report.changes if "marketing" in c.path]
        assert len(marketing) == 1

    def test_no_changes_between_identical_versions(self):
        spec = company_key_spec()
        archive = Archive(spec)
        archive.add_version(company_versions()[3])
        archive.add_version(company_versions()[3])
        report = archive_diff(archive, 1, 2)
        assert len(report) == 0
        assert str(report).endswith("none")

    def test_backwards_diff(self):
        archive = company_archive()
        forward = archive_diff(archive, 1, 2)
        backward = archive_diff(archive, 2, 1)
        assert [c.path for c in forward.added()] == [
            c.path for c in backward.deleted()
        ]

    def test_unknown_version_raises(self):
        archive = company_archive()
        with pytest.raises(ArchiveError):
            archive_diff(archive, 1, 99)

    def test_weave_mode_content_change(self):
        archive = company_archive(ArchiveOptions(compaction=True))
        report = archive_diff(archive, 3, 4)
        sal_changes = [c for c in report.changed() if c.path.endswith("/sal")]
        assert len(sal_changes) == 1


class TestKeyedDiff:
    GENE_SPEC = KeySpec(
        explicit_keys=[
            key("/", "genes"),
            key("/genes", "gene", ("id",)),
            key("/genes/gene", "name"),
            key("/genes/gene", "seq"),
        ]
    )

    def test_figure1_is_described_sensibly(self):
        """The motivating example: keyed diff never 'renames' genes."""
        v1 = parse_document(
            "<genes>"
            "<gene><id>6230</id><name>GRTM</name><seq>GTCG</seq></gene>"
            "<gene><id>2953</id><name>ACV2</name><seq>AGTT</seq></gene>"
            "</genes>"
        )
        v2 = parse_document(
            "<genes>"
            "<gene><id>2953</id><name>ACV2</name><seq>GTCG</seq></gene>"
            "<gene><id>6230</id><name>GRTM</name><seq>AGTT</seq></gene>"
            "</genes>"
        )
        report = keyed_diff(v1, v2, self.GENE_SPEC)
        # No gene is added or deleted — only sequences changed.
        assert not report.added()
        assert not report.deleted()
        assert {c.path for c in report.changed()} == {
            "/genes/gene[id=6230]/seq",
            "/genes/gene[id=2953]/seq",
        }

    def test_reorder_is_no_change(self):
        v1 = parse_document(
            "<genes><gene><id>1</id><name>A</name><seq>x</seq></gene>"
            "<gene><id>2</id><name>B</name><seq>y</seq></gene></genes>"
        )
        v2 = parse_document(
            "<genes><gene><id>2</id><name>B</name><seq>y</seq></gene>"
            "<gene><id>1</id><name>A</name><seq>x</seq></gene></genes>"
        )
        assert len(keyed_diff(v1, v2, self.GENE_SPEC)) == 0


class TestPointQueries:
    def test_first_appearance(self):
        archive = company_archive()
        path = "/db/dept[name=finance]/emp[fn=John, ln=Doe]"
        assert first_appearance(archive, path) == 3

    def test_last_change_of_frontier(self):
        archive = company_archive()
        path = "/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal"
        assert last_change(archive, path) == 4

    def test_last_change_of_stable_element(self):
        archive = company_archive()
        path = "/db/dept[name=finance]/emp[fn=John, ln=Doe]/tel[.=123-4567]"
        assert last_change(archive, path) == 3  # unchanged since creation
