"""Tests for the experiment harness and figure drivers (small scale)."""

import pytest

from repro.data.company import company_key_spec, company_versions
from repro.experiments import (
    dataset_statistics,
    figure7_statistics,
    figure11_omim,
    figure12_omim,
    figure13_xmark,
    figure14_worstcase,
    render_figure,
    render_series,
    render_statistics,
    run_storage_experiment,
)


class TestHarness:
    def test_series_lengths_match(self):
        series = run_storage_experiment(
            "company", company_versions(), company_key_spec()
        )
        count = len(company_versions())
        assert series.versions == list(range(1, count + 1))
        for data in series.lines().values():
            assert len(data) == count

    def test_without_compression(self):
        series = run_storage_experiment(
            "company",
            company_versions(),
            company_key_spec(),
            with_compression=False,
        )
        assert not series.gzip_incremental_bytes
        assert not series.xmill_archive_bytes
        assert series.archive_bytes

    def test_sizes_monotone_for_archive(self):
        series = run_storage_experiment(
            "company", company_versions(), company_key_spec(), with_compression=False
        )
        for a, b in zip(series.archive_bytes, series.archive_bytes[1:]):
            assert b >= a

    def test_overhead_metric(self):
        series = run_storage_experiment(
            "company", company_versions(), company_key_spec(), with_compression=False
        )
        assert series.overhead_vs_incremental() >= 1.0

    def test_final_unknown_series_raises(self):
        series = run_storage_experiment(
            "company",
            company_versions(),
            company_key_spec(),
            with_compression=False,
        )
        with pytest.raises(ValueError):
            series.final("gzip_incremental_bytes")

    def test_dataset_statistics(self):
        stats = dataset_statistics("company", company_versions()[3])
        assert stats.size_bytes > 100
        assert stats.node_count > 10
        assert stats.height == 4


class TestFigureDrivers:
    """Small-scale sanity runs of each figure driver."""

    def test_figure7(self):
        rows = figure7_statistics(scale=0.3)
        names = [row.name for row in rows]
        assert names == ["OMIM", "Swiss-Prot", "XMark"]
        # The paper's height column: OMIM 5, Swiss-Prot 6, XMark 12-ish.
        omim, swissprot, xmark = rows
        # Paper Fig. 7 heights: OMIM 5, Swiss-Prot 6, XMark 12.  Our
        # generated subsets are slightly shallower for Swiss-Prot/XMark
        # (fields like xref/parlist are out of the generated subset).
        assert omim.height == 5
        assert swissprot.height >= 5
        assert xmark.height >= 5

    def test_figure11_omim_claims(self):
        result = figure11_omim()  # the full default run; the quadratic
        # blow-up of cumulative diffs needs enough versions to show
        assert result.all_claims_hold(), render_figure(result)

    def test_figure12_omim_claims(self):
        result = figure12_omim(version_count=10)
        assert result.all_claims_hold(), render_figure(result)

    def test_figure13_small(self):
        result = figure13_xmark(10.0, version_count=5)
        series = result.series[0]
        assert len(series.versions) == 5
        # Both repositories grow with churn.
        assert series.incremental_bytes[-1] > series.incremental_bytes[0]
        assert series.archive_bytes[-1] > series.archive_bytes[0]

    def test_figure14_small(self):
        result = figure14_worstcase(10.0, version_count=5)
        series = result.series[0]
        # The signature shape: archive grows much faster than the repo.
        archive_growth = series.archive_bytes[-1] - series.archive_bytes[0]
        repo_growth = series.incremental_bytes[-1] - series.incremental_bytes[0]
        assert archive_growth > 3 * repo_growth


class TestReport:
    def test_render_series_contains_all_lines(self):
        series = run_storage_experiment(
            "company", company_versions(), company_key_spec()
        )
        text = render_series(series)
        for label in series.lines():
            assert label in text

    def test_render_figure_shows_claims(self):
        result = figure11_omim(version_count=8)
        text = render_figure(result)
        assert "Figure 11a" in text
        assert "PASS" in text or "FAIL" in text

    def test_render_statistics(self):
        text = render_statistics(figure7_statistics(scale=0.3))
        assert "OMIM" in text and "Swiss-Prot" in text and "XMark" in text
