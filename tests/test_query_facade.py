"""The ArchiveDB facade: one queryable surface over every backend."""

import pytest

import repro
from repro.core import Archive, ArchiveError, ArchiveOptions, Fingerprinter
from repro.core.tempquery import Change, first_appearance, last_change
from repro.keys import parse_key_spec
from repro.query import ArchiveDB, compile_plan
from repro.storage import create_archive
from repro.xmltree import parse_document, to_string
from repro.xmltree.xpath import evaluate

KEYS = """
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
"""

VERSIONS = [
    "<db><dept><name>finance</name></dept></db>",
    """<db><dept><name>finance</name>
         <emp><fn>Jane</fn><ln>Smith</ln></emp></dept></db>""",
    """<db><dept><name>finance</name>
         <emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp></dept>
        <dept><name>marketing</name>
         <emp><fn>John</fn><ln>Doe</ln></emp></dept></db>""",
    """<db><dept><name>finance</name>
         <emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>
         <emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal>
              <tel>123-6789</tel><tel>112-3456</tel></emp></dept></db>""",
]

EXPRESSIONS = [
    "/db",
    "/db/dept",
    "/db/dept[2]",
    "/db/dept[name='finance']",
    "/db/dept[name='finance']/emp",
    "/db/dept/emp[fn='John'][ln='Doe']/sal",
    "/db/dept/emp[tel='123-4567']",
    "/db/*/emp",
    "/db/dept/name/text()",
    "//tel",
    "//tel/text()",
    "//emp[sal='95K']/fn/text()",
    "/db/dept[name='finance']//tel",
    "/db/dept[name='nowhere']/emp",
]

BACKENDS = ["file", "chunked", "external"]


def _memory_archive() -> Archive:
    archive = Archive(parse_key_spec(KEYS))
    for source in VERSIONS:
        archive.add_version(parse_document(source))
    return archive


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    path = str(tmp_path / ("arch.xml" if request.param == "file" else "arch"))
    store = create_archive(path, KEYS, kind=request.param, chunk_count=4)
    store.ingest_batch(parse_document(source) for source in VERSIONS)
    yield store
    store.close()


def _rendered(items) -> list[str]:
    return [
        item if isinstance(item, str) else to_string(item) for item in items
    ]


class TestSelectEquivalence:
    """`at(v).select(x)` answers exactly like materialize-then-xpath."""

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_every_backend_every_version(self, backend, expression):
        db = backend.db()
        for version in range(1, backend.last_version + 1):
            snapshot = backend.retrieve(version)
            expected = (
                evaluate(snapshot, expression).items
                if snapshot is not None
                else []
            )
            got = db.at(version).select(expression).all()
            assert _rendered(got) == _rendered(expected), (
                backend.kind,
                expression,
                version,
            )

    @pytest.mark.parametrize("expression", EXPRESSIONS)
    def test_in_memory_archive(self, expression):
        archive = _memory_archive()
        db = repro.open(archive)
        for version in range(1, archive.last_version + 1):
            snapshot = archive.retrieve(version)
            expected = evaluate(snapshot, expression).items
            got = db.at(version).select(expression).all()
            assert _rendered(got) == _rendered(expected)

    def test_empty_version_yields_nothing(self, tmp_path):
        store = create_archive(str(tmp_path / "e.xml"), KEYS)
        store.add_version(parse_document(VERSIONS[0]))
        store.add_version(None)
        result = store.db().at(2).select("/db/dept")
        assert result.all() == []


class TestQueryResult:
    def test_streaming_is_lazy(self):
        db = repro.open(_memory_archive())
        result = db.at(4).select("//tel")
        first = result.first()
        assert first is not None and first.tag == "tel"
        # Consuming again replays the cache and continues the stream.
        assert len(result.all()) == 3

    def test_kinds(self):
        db = repro.open(_memory_archive())
        assert db.at(4).select("/db/dept").kind == "elements"
        assert db.at(4).select("/db/dept/name/text()").kind == "strings"
        assert db.between(3, 4).changes().kind == "changes"

    def test_bool_and_count(self):
        db = repro.open(_memory_archive())
        assert db.at(4).select("//tel")
        assert not db.at(1).select("//tel")
        assert db.at(4).select("//tel").count() == 3

    def test_stats_fill_on_consumption(self):
        db = repro.open(_memory_archive())
        result = db.at(4).select("/db/dept[name='finance']/emp")
        result.all()
        assert result.stats.nodes_visited() > 0
        assert result.stats.index_lookups >= 1
        assert not result.stats.fallback


class TestTemporalScopes:
    def test_versions(self, backend):
        assert backend.db().versions().to_text() == "1-4"

    def test_changes_between(self, backend):
        changes = backend.db().between(3, 4).changes().all()
        kinds = {(change.kind, change.path) for change in changes}
        assert (
            "changed",
            "/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal",
        ) in kinds
        assert ("deleted", "/db/dept[name=marketing]") in kinds
        assert all(isinstance(change, Change) for change in changes)

    def test_changes_path_prefix_filter(self, backend):
        finance = "/db/dept[name=finance]"
        changes = backend.db().between(3, 4).changes(finance).all()
        assert changes and all(c.path.startswith(finance) for c in changes)

    def test_changes_prefix_respects_step_boundaries(self):
        spec_text = """
        (/, (db, {}))
        (/db, (rec, {id}))
        (/db/rec, (sal, {}))
        (/db/rec, (salx, {}))
        """
        archive = Archive(parse_key_spec(spec_text))
        archive.add_version(
            parse_document("<db><rec><id>1</id><sal>a</sal><salx>b</salx></rec></db>")
        )
        archive.add_version(
            parse_document("<db><rec><id>1</id><sal>c</sal><salx>d</salx></rec></db>")
        )
        db = repro.open(archive)
        paths = [c.path for c in db.between(1, 2).changes("/db/rec[id=1]/sal")]
        assert paths == ["/db/rec[id=1]/sal"]  # salx must not leak through
        # The select grammar's quoted form works on the change stream too.
        quoted = [c.path for c in db.between(1, 2).changes("/db/rec[id='1']/sal")]
        assert quoted == paths
        # A tag prefix covers its own key predicates, and '/' covers all.
        assert len(db.between(1, 2).changes("/db/rec").all()) == 2
        assert len(db.between(1, 2).changes("/").all()) == 2

    def test_history_and_shortcuts(self, backend):
        db = backend.db()
        path = "/db/dept[name=finance]/emp[fn=John, ln=Doe]"
        assert db.history(path).existence.to_text() == "3-4"
        assert db.first_appearance(path) == 3
        assert db.last_change(path + "/sal") == 4

    def test_bad_versions_raise(self, backend):
        db = backend.db()
        with pytest.raises(ArchiveError):
            db.at(99).select("/db")
        with pytest.raises(ArchiveError):
            db.at(0).select("/db")
        with pytest.raises(ArchiveError):
            db.between(1, 99).changes().all()

    def test_snapshot_matches_retrieve(self, backend):
        assert to_string(backend.db().at(3).snapshot()) == to_string(
            backend.retrieve(3)
        )


class TestMissingPathErrors:
    """Satellite: the same clear error on every backend."""

    PATH = "/db/dept[name=nowhere]/emp[fn=No, ln=One]"

    def test_backends_aligned(self, backend):
        db = backend.db()
        with pytest.raises(ArchiveError, match="never existed"):
            db.history(self.PATH)
        with pytest.raises(ArchiveError, match="never existed"):
            db.first_appearance(self.PATH)
        with pytest.raises(ArchiveError, match="never existed"):
            db.last_change(self.PATH)

    def test_memory_archive_aligned(self):
        db = repro.open(_memory_archive())
        with pytest.raises(ArchiveError, match="never existed"):
            db.first_appearance(self.PATH)

    def test_deprecated_shims_still_work(self):
        archive = _memory_archive()
        with pytest.deprecated_call():
            assert (
                first_appearance(
                    archive, "/db/dept[name=finance]/emp[fn=John, ln=Doe]"
                )
                == 3
            )
        with pytest.deprecated_call():
            assert (
                last_change(
                    archive, "/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal"
                )
                == 4
            )
        with pytest.deprecated_call(), pytest.raises(
            ArchiveError, match="never existed"
        ):
            first_appearance(archive, self.PATH)


class TestPlanner:
    def test_key_equality_becomes_lookup(self):
        plan = compile_plan(
            "/db/dept[name='finance']/emp[fn='John'][ln='Doe']", parse_key_spec(KEYS)
        )
        assert plan.steps[1].lookup == (("name", "finance"),)
        assert plan.steps[2].lookup == (("fn", "John"), ("ln", "Doe"))
        assert plan.uses_index()

    def test_singleton_key_is_lookup(self):
        plan = compile_plan("/db/dept[name='x']/emp[fn='a'][ln='b']/sal", parse_key_spec(KEYS))
        assert plan.steps[3].lookup == ()

    def test_partial_key_scans(self):
        plan = compile_plan("/db/dept/emp[fn='John']", parse_key_spec(KEYS))
        assert plan.steps[2].lookup is None  # ln not pinned

    def test_position_disables_lookup(self):
        plan = compile_plan("/db/dept[name='x'][1]", parse_key_spec(KEYS))
        assert plan.steps[1].lookup is None

    def test_unindexed_predicate_is_residual(self):
        plan = compile_plan("/db/dept/emp[sal='90K']", parse_key_spec(KEYS))
        residuals = plan.steps[2].residuals()
        assert len(residuals) == 1

    def test_explain_mentions_lookup_and_fallback(self, backend):
        db = backend.db()
        lines = "\n".join(db.explain("/db/dept[name='x']/emp"))
        assert "key lookup" in lines
        fallback_lines = "\n".join(db.explain("/db"))
        if backend.kind == "chunked":
            assert "snapshot fallback" in fallback_lines

    def test_chunked_key_lookup_opens_only_owning_chunk(self, backend):
        if backend.kind != "chunked":
            pytest.skip("hash routing is a chunked-backend concern")
        result = backend.db().at(3).select("/db/dept[name='marketing']/emp")
        assert len(result.all()) == 1
        # The partition-level lookup routes to the one owning chunk;
        # every other chunk is never considered, let alone parsed.
        assert result.stats.chunks_routed_past == backend.part_count - 1

    def test_chunked_routed_miss_still_answers_exactly(self, backend):
        if backend.kind != "chunked":
            pytest.skip("hash routing is a chunked-backend concern")
        result = backend.db().at(3).select("/db/dept[name='nowhere']/emp")
        assert result.all() == []

    def test_stats_report_pruning(self, backend):
        if backend.kind == "file":
            pytest.skip("pruning counters are for partitioned/stream stores")
        result = backend.db().at(4).select("/db/dept[name='finance']/emp")
        result.all()
        if backend.kind == "chunked":
            assert result.stats.chunks_pruned + result.stats.tree_probes > 0
        if backend.kind == "external":
            assert result.stats.events_skipped > 0


class TestOpen:
    def test_open_path_owns_backend(self, tmp_path):
        path = str(tmp_path / "arch.xml")
        store = create_archive(path, KEYS)
        store.ingest_batch(parse_document(source) for source in VERSIONS)
        store.close()
        with repro.open(path) as db:
            assert db.kind == "file"
            assert db.last_version == 4
            assert len(db.at(4).select("//tel").all()) == 3

    def test_open_backend_and_archive(self, tmp_path):
        path = str(tmp_path / "arch.xml")
        store = create_archive(path, KEYS)
        store.add_version(parse_document(VERSIONS[0]))
        assert repro.open(store).kind == "file"
        assert repro.open(_memory_archive()).kind == "memory"

    def test_backend_db_entry_point(self, tmp_path):
        path = str(tmp_path / "arch")
        store = create_archive(path, KEYS, kind="external")
        store.add_version(parse_document(VERSIONS[0]))
        db = store.db()
        assert isinstance(db, ArchiveDB)
        assert db.kind == "external"

    def test_open_rejects_junk(self):
        with pytest.raises(ArchiveError):
            ArchiveDB(42)  # type: ignore[arg-type]


class TestConfigurations:
    """Compaction and fingerprinting change storage, not answers."""

    @pytest.mark.parametrize(
        "options",
        [
            ArchiveOptions(compaction=True),
            ArchiveOptions(fingerprinter=Fingerprinter(bits=64)),
            ArchiveOptions(fingerprinter=Fingerprinter(bits=2)),
            ArchiveOptions(fingerprinter=Fingerprinter(bits=64), compaction=True),
        ],
    )
    @pytest.mark.parametrize("expression", EXPRESSIONS[:8])
    def test_memory_configurations(self, options, expression):
        archive = Archive(parse_key_spec(KEYS), options)
        for source in VERSIONS:
            archive.add_version(parse_document(source))
        db = repro.open(archive)
        for version in range(1, archive.last_version + 1):
            snapshot = archive.retrieve(version)
            expected = evaluate(snapshot, expression).items
            got = db.at(version).select(expression).all()
            assert _rendered(got) == _rendered(expected)

    def test_chunked_with_fingerprinter_orders_by_key(self, tmp_path):
        options = ArchiveOptions(fingerprinter=Fingerprinter(bits=64))
        path = str(tmp_path / "fp")
        store = create_archive(path, KEYS, kind="chunked", chunk_count=4,
                               options=options)
        store.ingest_batch(parse_document(source) for source in VERSIONS)
        db = ArchiveDB(store)
        snapshot = store.retrieve(3)
        expected = evaluate(snapshot, "/db/dept").items
        got = db.at(3).select("/db/dept").all()
        assert _rendered(got) == _rendered(expected)
        store.close()


class TestCLIQuery:
    def _archive(self, tmp_path, kind="file"):
        import os

        path = str(tmp_path / ("a.xml" if kind == "file" else "a"))
        keys_path = str(tmp_path / "keys.txt")
        with open(keys_path, "w", encoding="utf-8") as handle:
            handle.write(KEYS)
        version_dir = tmp_path / "versions"
        os.makedirs(version_dir, exist_ok=True)
        for number, source in enumerate(VERSIONS, start=1):
            (version_dir / f"v{number:02d}.xml").write_text(source)
        from repro.cli import main

        assert (
            main(
                [
                    "ingest",
                    path,
                    str(version_dir),
                    "--keys",
                    keys_path,
                    "--backend",
                    kind,
                ]
            )
            == 0
        )
        return path

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_query_at(self, tmp_path, capsys, kind):
        from repro.cli import main

        path = self._archive(tmp_path, kind)
        capsys.readouterr()  # drop the ingest chatter
        assert main(["query", path, "//tel/text()", "--at", "4"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert sorted(out) == ["112-3456", "123-4567", "123-6789"]

    def test_query_defaults_to_latest(self, tmp_path, capsys):
        from repro.cli import main

        path = self._archive(tmp_path)
        capsys.readouterr()  # drop the ingest chatter
        assert main(["query", path, "/db/dept/name/text()"]) == 0
        assert capsys.readouterr().out.strip() == "finance"

    def test_query_between(self, tmp_path, capsys):
        from repro.cli import main

        path = self._archive(tmp_path)
        capsys.readouterr()  # drop the ingest chatter
        assert main(["query", path, "/", "--between", "3", "4"]) == 0
        out = capsys.readouterr().out
        assert "deleted /db/dept[name=marketing]" in out

    def test_query_explain_and_stats(self, tmp_path, capsys):
        from repro.cli import main

        path = self._archive(tmp_path)
        capsys.readouterr()  # drop the ingest chatter
        assert main(["query", path, "/db/dept[name='x']", "--explain"]) == 0
        assert "key lookup" in capsys.readouterr().out
        assert main(["query", path, "//tel", "--at", "4", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "planned over the archive tree" in captured.err
