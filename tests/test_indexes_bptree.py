"""Tests for the B+ tree and the B+-backed key index (indexes.bptree)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Archive
from repro.data import OmimGenerator, omim_key_spec
from repro.data.company import company_key_spec, company_versions
from repro.indexes import BPlusKeyIndex, BPlusTree, KeyIndex


class TestBPlusTree:
    def test_insert_and_search(self):
        tree = BPlusTree(branching=4)
        for value in [5, 1, 9, 3, 7, 2, 8, 4, 6, 0]:
            tree.insert(value, value * 10)
        for value in range(10):
            assert tree.search(value) == value * 10
        assert tree.search(99) is None

    def test_replace_existing(self):
        tree = BPlusTree(branching=4)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree.search("k") == 2
        assert len(tree) == 1

    def test_items_sorted(self):
        tree = BPlusTree(branching=4)
        import random

        values = list(range(200))
        random.Random(7).shuffle(values)
        for value in values:
            tree.insert(value, value)
        assert [key for key, _ in tree.items()] == list(range(200))

    def test_range_search(self):
        tree = BPlusTree(branching=4)
        for value in range(100):
            tree.insert(value, value)
        found = [key for key, _ in tree.range_search(25, 31)]
        assert found == list(range(25, 32))

    def test_height_logarithmic(self):
        tree = BPlusTree(branching=8)
        for value in range(4096):
            tree.insert(value, value)
        # log_4(4096) = 6; splits at b/2 keys give base ~b/2.
        assert tree.height() <= 8

    def test_probe_count_reported(self):
        tree = BPlusTree(branching=4)
        for value in range(500):
            tree.insert(value, value)
        probes = [0]
        tree.search(250, probes)
        assert 1 <= probes[0] <= tree.height()

    def test_rejects_tiny_branching(self):
        with pytest.raises(ValueError):
            BPlusTree(branching=2)

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_semantics(self, values):
        tree = BPlusTree(branching=5)
        reference = {}
        for value in values:
            tree.insert(value, value + 1)
            reference[value] = value + 1
        assert len(tree) == len(reference)
        for key_value in reference:
            assert tree.search(key_value) == reference[key_value]
        assert [k for k, _ in tree.items()] == sorted(reference)


class TestBPlusKeyIndex:
    def test_matches_flat_key_index(self):
        spec = omim_key_spec()
        archive = Archive(spec)
        for version in OmimGenerator(seed=5, initial_records=60).generate_versions(3):
            archive.add_version(version)
        flat = KeyIndex(archive)
        bplus = BPlusKeyIndex(archive, branching=8)
        document = archive.retrieve(archive.last_version)
        for record in document.find_all("Record")[:20]:
            num = record.find("Num").text_content()
            path = f"/ROOT/Record[Num={num}]"
            assert bplus.history(path)[0] == flat.history(path)[0]

    def test_paper_example(self):
        archive = Archive(company_key_spec())
        for version in company_versions():
            archive.add_version(version)
        index = BPlusKeyIndex(archive)
        timestamps, probes = index.history(
            "/db/dept[name=finance]/emp[fn=John, ln=Doe]"
        )
        assert timestamps.to_text() == "3-4"
        assert probes >= 2

    def test_missing_element(self):
        archive = Archive(company_key_spec())
        for version in company_versions():
            archive.add_version(version)
        index = BPlusKeyIndex(archive)
        from repro.core import ArchiveError

        with pytest.raises(ArchiveError):
            index.history("/db/dept[name=hr]")

    def test_probes_logarithmic_in_degree(self):
        spec = omim_key_spec()
        archive = Archive(spec)
        archive.add_version(
            OmimGenerator(seed=6, initial_records=300).initial_version()
        )
        index = BPlusKeyIndex(archive, branching=16)
        document = archive.retrieve(1)
        num = document.find("Record").find("Num").text_content()
        _, probes = index.history(f"/ROOT/Record[Num={num}]")
        # 300 records at branching 16: 2-3 levels, plus the root step.
        assert probes <= 8
