"""Property suite: arbitrary corruption surfaces as *typed* errors.

Hypothesis flips bits and truncates files — manifests, ``.presence``
sidecars, checksum sidecars, codec containers, the payloads themselves
— at arbitrary offsets, across every backend.  Whatever the damage,
reading the archive must raise the typed
:class:`~repro.storage.IntegrityError` family, never a bare
``KeyError``/``UnicodeDecodeError``/``EOFError``/``json``/``zlib``
error from whichever layer happened to choke first; and ``fsck`` must
report the injured file by name without crashing.
"""

import os
import shutil
import tempfile

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.data.company import COMPANY_KEY_TEXT, company_versions
from repro.storage import (
    CodecError,
    IntegrityError,
    create_archive,
    fsck_archive,
    get_codec,
    open_archive,
)
from repro.xmltree.serializer import to_pretty_string

#: Archive-state files fair game for corruption, per backend layout.
TARGETS = {
    "file": ["archive.xml", "archive.xml.manifest.json"],
    "chunked": [
        "chunk-0000.xml",
        "chunk-0000.presence",
        "versions.txt",
        "manifest.json",
        "checksums.json",
    ],
    "external": ["archive.jsonl", "manifest.json", "checksums.json"],
}
#: Codec per backend — compressed containers make offsets interesting.
BUILD_CODEC = {"file": "gzip", "chunked": "gzip", "external": "xmill"}


@pytest.fixture(scope="module")
def pristine():
    """One healthy two-version archive per backend, built once, plus
    the reference retrieval renderings for equivalence checks."""
    base = tempfile.mkdtemp(prefix="integrity-pristine-")
    versions = [v.copy() for v in list(company_versions())[:2]]
    paths = {}
    references = {}
    for kind in TARGETS:
        root = os.path.join(base, kind)
        os.makedirs(root)
        path = os.path.join(
            root, "archive.xml" if kind == "file" else "store"
        )
        backend = create_archive(
            path,
            COMPANY_KEY_TEXT,
            kind=kind,
            chunk_count=2,
            codec=BUILD_CODEC[kind],
        )
        backend.ingest_batch([v.copy() for v in versions])
        backend.close()
        paths[kind] = root
        references[kind] = exercise(path)
    yield paths, references
    shutil.rmtree(base, ignore_errors=True)


def corrupt(path, mode, offset, bit):
    """Apply one mutation; return False if it would be a no-op."""
    with open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return False
    if mode == "flip":
        index = offset % len(data)
        mutated = bytearray(data)
        mutated[index] ^= 1 << bit
        data = bytes(mutated)
    else:  # truncate
        cut = offset % len(data)
        if cut == len(data):
            return False
        data = data[:cut]
    with open(path, "wb") as handle:
        handle.write(data)
    return True


def exercise(archive):
    """Open and read everything a curator would; return the renderings."""
    backend = open_archive(archive)
    try:
        return [
            to_pretty_string(backend.retrieve(version))
            for version in range(1, backend.last_version + 1)
        ]
    finally:
        backend.close()


class TestArbitraryCorruptionIsTyped:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_reads_raise_integrity_error_and_fsck_names_the_file(
        self, data, pristine
    ):
        kind = data.draw(st.sampled_from(sorted(TARGETS)), label="backend")
        target = data.draw(st.sampled_from(TARGETS[kind]), label="file")
        mode = data.draw(st.sampled_from(["flip", "truncate"]), label="mode")
        offset = data.draw(st.integers(min_value=0, max_value=1 << 20))
        bit = data.draw(st.integers(min_value=0, max_value=7))

        paths, references = pristine
        work = tempfile.mkdtemp(prefix="integrity-work-")
        try:
            shutil.copytree(paths[kind], work, dirs_exist_ok=True)
            archive = os.path.join(
                work, "archive.xml" if kind == "file" else "store"
            )
            injured = (
                os.path.join(work, target)
                if kind == "file"
                else os.path.join(archive, target)
            )
            assume(corrupt(injured, mode, offset, bit))

            # Whatever the damage, a read either raises the *typed*
            # error family or — when the flip is semantically invisible
            # (JSON whitespace in a sidecar, an ignorable container
            # byte) — returns answers byte-identical to the pristine
            # archive's.  Anything else (a bare KeyError, a silently
            # wrong answer) fails the property.
            raised = None
            try:
                rendered = exercise(archive)
            except IntegrityError as error:
                raised = error
            if raised is None:
                assert rendered == references[kind], (
                    f"corrupting {target!r} ({mode} @ {offset}) changed "
                    f"answers without raising IntegrityError"
                )
                return

            # The read detected damage — fsck must report the injured
            # file by name without crashing.
            report = fsck_archive(archive)
            assert not report.clean
            named = {os.path.basename(f.path) for f in report.findings}
            assert os.path.basename(target) in named, (
                f"fsck missed the injured file {target!r}; "
                f"found {sorted(named)}:\n{report}"
            )
        finally:
            shutil.rmtree(work, ignore_errors=True)


class TestCodecContainerCorruption:
    """Damaged codec containers classify as CodecError, never leak
    ``zlib.error``/``EOFError``/``IndexError`` from the decoder."""

    @given(
        codec=st.sampled_from(["gzip", "xmill"]),
        offset=st.integers(min_value=0, max_value=1 << 16),
        bit=st.integers(min_value=0, max_value=7),
        mode=st.sampled_from(["flip", "truncate"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_decode_document(self, codec, offset, bit, mode):
        impl = get_codec(codec)
        encoded = impl.encode_document(
            "<db>\n<rec>\n<k>one</k>\n<v>alpha</v>\n</rec>\n</db>\n"
        )
        if mode == "flip":
            index = offset % len(encoded)
            mutated = bytearray(encoded)
            mutated[index] ^= 1 << bit
            damaged = bytes(mutated)
        else:
            damaged = encoded[: offset % len(encoded)]
        assume(damaged != encoded)
        try:
            decoded = impl.decode_document(damaged)
        except (CodecError, IntegrityError):
            return  # typed, as required
        except ValueError:
            return  # XML-level damage surfaces as a parse error upstream
        # Some flips land in ignorable header bytes and still decode —
        # that is the checksum layer's job to catch, not the codec's.
        assert isinstance(decoded, str)

    @given(
        offset=st.integers(min_value=0, max_value=1 << 16),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=40, deadline=None)
    def test_framed_text_streams(self, tmp_path_factory, offset, bit):
        """A corrupted framed-gzip event stream read end-to-end raises
        typed errors only."""
        from repro.storage.events import IOStats, read_events

        base = tempfile.mkdtemp(prefix="integrity-frame-")
        try:
            path = os.path.join(base, "stream.jsonl")
            impl = get_codec("gzip")
            with impl.open_text_write(path) as handle:
                for line in range(50):
                    handle.write(
                        f'["node", "rec{line}", [], "1-2"]\n'
                    )
            with open(path, "rb") as handle:
                data = handle.read()
            index = offset % len(data)
            mutated = bytearray(data)
            mutated[index] ^= 1 << bit
            with open(path, "wb") as handle:
                handle.write(bytes(mutated))
            try:
                for _ in read_events(path, IOStats(), "gzip"):
                    pass
            except IntegrityError:
                pass  # typed, as required
        finally:
            shutil.rmtree(base, ignore_errors=True)


class TestWalRecordCorruption:
    @given(
        offset=st.integers(min_value=0, max_value=1 << 12),
        bit=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_any_flip_is_discarded_never_replayed(self, offset, bit):
        """A WAL record with any flipped bit is torn/malformed —
        recovery discards it instead of acting on garbage intent."""
        from repro.storage import WalError, WriteAheadLog

        base = tempfile.mkdtemp(prefix="integrity-wal-")
        try:
            wal_path = os.path.join(base, "wal.json")
            wal = WriteAheadLog(wal_path)
            entry = os.path.join(base, "payload.bin")
            with open(entry + ".tmp", "wb") as handle:
                handle.write(b"staged-bytes")
            wal.append([entry], meta={"version_count": 3})
            with open(wal_path, "rb") as handle:
                data = handle.read()
            index = offset % len(data)
            mutated = bytearray(data)
            mutated[index] ^= 1 << bit
            assume(bytes(mutated) != data)
            with open(wal_path, "wb") as handle:
                handle.write(bytes(mutated))
            try:
                record = wal.read_record()
            except WalError:
                outcome = wal.recover(stray_tmps=[entry + ".tmp"])
                assert outcome == "discarded-torn-record"
                # Garbage intent must never publish the staged file.
                assert not os.path.exists(entry)
                return
            # One flipped bit cannot produce a *different* valid record:
            # the self-checksum binds entries and meta.
            assert record == {
                "format": 1,
                "entries": ["payload.bin"],
                "meta": {"version_count": 3},
            }
        finally:
            shutil.rmtree(base, ignore_errors=True)
