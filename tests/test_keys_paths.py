"""Tests for path expressions (repro.keys.paths)."""

import pytest

from repro.keys import (
    format_path,
    is_proper_prefix,
    navigate,
    parse_path,
    value_at,
)
from repro.xmltree import Attribute, parse_document


class TestParsePath:
    def test_absolute(self):
        assert parse_path("/db/dept") == ("db", "dept")

    def test_relative(self):
        assert parse_path("Date/Month") == ("Date", "Month")

    @pytest.mark.parametrize("spelling", ["", ".", "\\e", "/"])
    def test_empty_spellings(self, spelling):
        assert parse_path(spelling) == ()

    def test_single_step(self):
        assert parse_path("name") == ("name",)

    def test_whitespace_tolerated(self):
        assert parse_path("  /db/dept ") == ("db", "dept")


class TestFormatPath:
    def test_round_trip(self):
        assert format_path(parse_path("/db/dept")) == "/db/dept"

    def test_relative_form(self):
        assert format_path(("fn",), absolute=False) == "fn"

    def test_empty(self):
        assert format_path(()) == "."


class TestPrefix:
    def test_proper_prefix(self):
        assert is_proper_prefix(("db",), ("db", "dept"))

    def test_equal_is_not_proper(self):
        assert not is_proper_prefix(("db",), ("db",))

    def test_divergent(self):
        assert not is_proper_prefix(("db", "x"), ("db", "dept", "emp"))


class TestNavigate:
    DOC = parse_document(
        "<emp><fn>John</fn><ln>Doe</ln>"
        "<tel>123</tel><tel>456</tel>"
        "<addr><zip>19104</zip></addr></emp>"
    )

    def test_empty_path_is_self(self):
        assert navigate(self.DOC, ()) == [self.DOC]

    def test_single_step(self):
        (fn,) = navigate(self.DOC, ("fn",))
        assert fn.text_content() == "John"

    def test_multiple_matches(self):
        assert len(navigate(self.DOC, ("tel",))) == 2

    def test_multi_step(self):
        (zip_node,) = navigate(self.DOC, ("addr", "zip"))
        assert zip_node.text_content() == "19104"

    def test_missing(self):
        assert navigate(self.DOC, ("nope",)) == []

    def test_attribute_step(self):
        doc = parse_document('<item id="item1"><name>x</name></item>')
        (attr,) = navigate(doc, ("id",))
        assert isinstance(attr, Attribute)
        assert attr.value == "item1"

    def test_element_preferred_over_attribute(self):
        doc = parse_document('<item id="attr-id"><id>elem-id</id></item>')
        (target,) = navigate(doc, ("id",))
        assert value_at(target) == "elem-id"


class TestValueAt:
    def test_element_content(self):
        doc = parse_document("<fn>John</fn>")
        assert value_at(doc) == "John"

    def test_attribute_value(self):
        assert value_at(Attribute("id", "item1")) == "item1"

    def test_structured_content(self):
        doc = parse_document("<k><a>1</a><b>2</b></k>")
        assert value_at(doc) == "<a>1</a><b>2</b>"
