"""Tests for the chunked archiver (storage.chunked) — the paper's
Sec. 5 memory workaround."""

import pytest

from repro.core import Archive, documents_equivalent
from repro.data import OmimGenerator, omim_key_spec
from repro.storage import ChunkedArchiver, ChunkedArchiverError


@pytest.fixture
def versions():
    return OmimGenerator(seed=11, initial_records=20).generate_versions(4)


@pytest.fixture
def spec():
    return omim_key_spec()


class TestChunkedArchiver:
    def test_retrieval_matches_monolithic(self, tmp_path, versions, spec):
        chunked = ChunkedArchiver(str(tmp_path), spec, chunk_count=4)
        monolithic = Archive(spec)
        for version in versions:
            chunked.add_version(version.copy())
            monolithic.add_version(version)
        for number in range(1, len(versions) + 1):
            assert documents_equivalent(
                chunked.retrieve(number), monolithic.retrieve(number), spec
            )

    def test_single_chunk_degenerates_to_monolithic(self, tmp_path, versions, spec):
        chunked = ChunkedArchiver(str(tmp_path), spec, chunk_count=1)
        for version in versions:
            chunked.add_version(version.copy())
        assert documents_equivalent(
            chunked.retrieve(2), versions[1], spec
        )

    def test_records_stay_in_their_chunk(self, tmp_path, versions, spec):
        """The same record must land in the same chunk every version —
        otherwise merging by key would break."""
        chunked = ChunkedArchiver(str(tmp_path), spec, chunk_count=4)
        for version in versions:
            chunked.add_version(version.copy())
        # History works, which requires the record's whole lifetime to
        # live in one chunk.
        num = versions[0].find("Record").find("Num").text_content()
        history = chunked.history(f"/ROOT/Record[Num={num}]")
        assert 1 in history.existence

    def test_persistence(self, tmp_path, versions, spec):
        first = ChunkedArchiver(str(tmp_path), spec, chunk_count=3)
        for version in versions[:2]:
            first.add_version(version.copy())
        second = ChunkedArchiver(str(tmp_path), spec, chunk_count=3)
        assert second.last_version == 2
        for version in versions[2:]:
            second.add_version(version.copy())
        for number, original in enumerate(versions, start=1):
            assert documents_equivalent(second.retrieve(number), original, spec)

    def test_total_bytes(self, tmp_path, versions, spec):
        chunked = ChunkedArchiver(str(tmp_path), spec, chunk_count=4)
        chunked.add_version(versions[0].copy())
        before = chunked.total_bytes()
        chunked.add_version(versions[1].copy())
        assert chunked.total_bytes() > before

    def test_unknown_version_raises(self, tmp_path, versions, spec):
        chunked = ChunkedArchiver(str(tmp_path), spec)
        chunked.add_version(versions[0].copy())
        with pytest.raises(ChunkedArchiverError):
            chunked.retrieve(5)

    def test_rejects_zero_chunks(self, tmp_path, spec):
        with pytest.raises(ChunkedArchiverError):
            ChunkedArchiver(str(tmp_path), spec, chunk_count=0)

    def test_missing_element_raises(self, tmp_path, versions, spec):
        chunked = ChunkedArchiver(str(tmp_path), spec, chunk_count=2)
        chunked.add_version(versions[0].copy())
        with pytest.raises(Exception):
            chunked.history("/ROOT/Record[Num=nonexistent]")
