"""Tests for delta repositories and the SCCS weave."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VersionSet, documents_equivalent
from repro.data.company import company_key_spec, company_versions
from repro.diffbase import (
    CumulativeDiffRepository,
    FullCopyRepository,
    IncrementalDiffRepository,
    SCCSWeave,
)
from repro.xmltree import to_pretty_string


class TestIncrementalRepository:
    def test_round_trips_company_versions(self):
        repo = IncrementalDiffRepository()
        spec = company_key_spec()
        versions = company_versions()
        for version in versions:
            repo.add_version(version)
        for number, original in enumerate(versions, start=1):
            assert documents_equivalent(repo.retrieve(number), original, spec)

    def test_applications_grow_linearly(self):
        repo = IncrementalDiffRepository()
        for version in company_versions():
            repo.add_version(version)
        assert repo.applications_for(1) == 0
        assert repo.applications_for(4) == 3

    def test_empty_version_round_trip(self):
        repo = IncrementalDiffRepository()
        repo.add_version(company_versions()[0])
        repo.add_version(None)
        repo.add_version(company_versions()[1])
        assert repo.retrieve(2) is None
        assert repo.retrieve(3) is not None

    def test_size_grows_with_change_not_with_versions(self):
        repo = IncrementalDiffRepository()
        version = company_versions()[3]
        repo.add_version(version)
        size_after_one = repo.total_bytes()
        for _ in range(5):
            repo.add_version(version)  # no change at all
        assert repo.total_bytes() == size_after_one  # empty scripts

    def test_out_of_range(self):
        repo = IncrementalDiffRepository()
        repo.add_version(company_versions()[0])
        with pytest.raises(IndexError):
            repo.retrieve(2)


class TestCumulativeRepository:
    def test_round_trips(self):
        repo = CumulativeDiffRepository()
        spec = company_key_spec()
        versions = company_versions()
        for version in versions:
            repo.add_version(version)
        for number, original in enumerate(versions, start=1):
            assert documents_equivalent(repo.retrieve(number), original, spec)

    def test_one_application_retrieval(self):
        repo = CumulativeDiffRepository()
        for version in company_versions():
            repo.add_version(version)
        assert repo.applications_for(1) == 0
        assert all(repo.applications_for(v) == 1 for v in (2, 3, 4))

    def test_grows_faster_than_incremental(self):
        """Sec. 5.2: cumulative deltas repeat accumulated changes."""
        incremental = IncrementalDiffRepository()
        cumulative = CumulativeDiffRepository()
        # A document that keeps accreting records.
        from repro.xmltree import parse_document

        for count in range(1, 14):
            body = "".join(
                f"<rec><id>{i}</id><val>value number {i}</val></rec>"
                for i in range(count * 5)
            )
            document = parse_document(f"<db>{body}</db>")
            incremental.add_version(document)
            cumulative.add_version(document)
        assert cumulative.total_bytes() > 1.5 * incremental.total_bytes()


class TestFullCopyRepository:
    def test_round_trips(self):
        repo = FullCopyRepository()
        spec = company_key_spec()
        for version in company_versions():
            repo.add_version(version)
        for number, original in enumerate(company_versions(), start=1):
            assert documents_equivalent(repo.retrieve(number), original, spec)

    def test_total_is_sum_of_versions(self):
        repo = FullCopyRepository()
        expected = 0
        for version in company_versions():
            repo.add_version(version)
            expected += len(to_pretty_string(version).encode("utf-8"))
        assert repo.total_bytes() == expected

    def test_concatenated_contains_all(self):
        repo = FullCopyRepository()
        for version in company_versions():
            repo.add_version(version)
        blob = repo.concatenated()
        assert blob.count("<db>") == 4


class TestSCCSWeave:
    def test_retrieval(self):
        weave = SCCSWeave()
        weave.add_version(["a", "b", "c"])
        weave.add_version(["a", "x", "c"])
        weave.add_version(["a", "x", "c", "d"])
        assert weave.retrieve(1) == ["a", "b", "c"]
        assert weave.retrieve(2) == ["a", "x", "c"]
        assert weave.retrieve(3) == ["a", "x", "c", "d"]

    def test_unchanged_lines_stored_once(self):
        weave = SCCSWeave()
        weave.add_version(["common"] * 10)
        weave.add_version(["common"] * 10)
        assert len(weave.lines) == 10

    def test_reinserted_line_duplicated(self):
        """The SCCS weakness the paper notes in Sec. 8: no keys, so a
        deleted-then-reinserted line occurs twice in the weave."""
        weave = SCCSWeave()
        weave.add_version(["keep", "flicker"])
        weave.add_version(["keep"])
        weave.add_version(["keep", "flicker"])
        assert len(weave.line_history("flicker")) == 2

    def test_serialize_round_trip(self):
        weave = SCCSWeave()
        weave.add_version(["a", "b"])
        weave.add_version(["b", "c"])
        revived = SCCSWeave.deserialize(weave.serialize())
        assert revived.retrieve(1) == ["a", "b"]
        assert revived.retrieve(2) == ["b", "c"]
        assert revived.version_count == 2

    def test_deserialize_rejects_garbage(self):
        with pytest.raises(ValueError):
            SCCSWeave.deserialize("nonsense")

    def test_out_of_range(self):
        weave = SCCSWeave()
        weave.add_version(["a"])
        with pytest.raises(IndexError):
            weave.retrieve(2)

    def test_version_timestamps_are_interval_sets(self):
        weave = SCCSWeave()
        for _ in range(5):
            weave.add_version(["stable"])
        (history,) = weave.line_history("stable")
        assert history == VersionSet.parse("1-5")


_version_lists = st.lists(
    st.lists(st.sampled_from(["p", "q", "r", "s", "t"]), max_size=8),
    min_size=1,
    max_size=6,
)


class TestWeaveProperties:
    @given(_version_lists)
    @settings(max_examples=80, deadline=None)
    def test_every_version_retrievable(self, versions):
        weave = SCCSWeave()
        for lines in versions:
            weave.add_version(lines)
        for number, lines in enumerate(versions, start=1):
            assert weave.retrieve(number) == lines

    @given(_version_lists)
    @settings(max_examples=60, deadline=None)
    def test_serialize_round_trip(self, versions):
        weave = SCCSWeave()
        for lines in versions:
            weave.add_version(lines)
        revived = SCCSWeave.deserialize(weave.serialize())
        for number, lines in enumerate(versions, start=1):
            assert revived.retrieve(number) == lines
