"""Unit tests for the hand-written XML parser (repro.xmltree.parser)."""

import pytest

from repro.xmltree import (
    Element,
    Text,
    XMLSyntaxError,
    parse_document,
    to_pretty_string,
    to_string,
)


class TestBasicParsing:
    def test_single_element(self):
        root = parse_document("<db/>")
        assert root.tag == "db"
        assert root.children == []

    def test_nested_elements(self):
        root = parse_document("<db><dept><name>finance</name></dept></db>")
        assert root.find("dept").find("name").text_content() == "finance"

    def test_attributes_double_and_single_quotes(self):
        root = parse_document("<item id=\"item1\" cat='c1'/>")
        assert root.get_attribute("id") == "item1"
        assert root.get_attribute("cat") == "c1"

    def test_text_entities(self):
        root = parse_document("<t>&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;</t>")
        assert root.text_content() == "<a> & \"b\" 'c'"

    def test_numeric_character_references(self):
        root = parse_document("<t>&#65;&#x42;</t>")
        assert root.text_content() == "AB"

    def test_attribute_entities(self):
        root = parse_document('<t a="&amp;&lt;"/>')
        assert root.get_attribute("a") == "&<"

    def test_cdata(self):
        root = parse_document("<t><![CDATA[<not><parsed>]]></t>")
        assert root.text_content() == "<not><parsed>"

    def test_comments_skipped(self):
        root = parse_document("<db><!-- note --><dept/></db>")
        assert [c.tag for c in root.element_children()] == ["dept"]

    def test_prolog_and_doctype_skipped(self):
        source = '<?xml version="1.0"?><!DOCTYPE db [<!ELEMENT db ANY>]><db/>'
        assert parse_document(source).tag == "db"

    def test_processing_instruction_in_content(self):
        root = parse_document("<db><?pi data?><dept/></db>")
        assert root.find("dept") is not None


class TestWhitespaceModel:
    def test_interelement_whitespace_dropped(self):
        root = parse_document("<db>\n  <dept>\n    <name>finance</name>\n  </dept>\n</db>")
        assert all(isinstance(c, Element) for c in root.children)

    def test_text_only_content_kept(self):
        root = parse_document("<t>  padded  </t>")
        assert root.text_content() == "  padded  "

    def test_mixed_content_meaningful_text_kept(self):
        root = parse_document("<t>hello <b>world</b></t>")
        assert root.text_content() == "hello world"


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "<db>",
            "<db></dept>",
            "<db><dept></db></dept>",
            "<db id=1/>",
            "<db id='x' id='y'/>",
            "<db/><extra/>",
            "<t>&unknown;</t>",
            "",
            "<t><![CDATA[unterminated</t>",
        ],
    )
    def test_malformed_raises(self, source):
        with pytest.raises((XMLSyntaxError, ValueError)):
            parse_document(source)

    def test_error_carries_line(self):
        try:
            parse_document("<db>\n<dept>\n</db>")
        except XMLSyntaxError as err:
            assert err.line >= 2
        else:
            pytest.fail("expected XMLSyntaxError")


class TestRoundTrip:
    PAPER_VERSION_4 = (
        "<db><dept><name>finance</name>"
        "<emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>"
        "<emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal>"
        "<tel>123-6789</tel><tel>112-3456</tel></emp>"
        "</dept></db>"
    )

    def test_compact_round_trip(self):
        root = parse_document(self.PAPER_VERSION_4)
        assert to_string(parse_document(to_string(root))) == to_string(root)

    def test_pretty_round_trip_preserves_structure(self):
        root = parse_document(self.PAPER_VERSION_4)
        again = parse_document(to_pretty_string(root))
        assert to_string(again) == to_string(root)

    def test_special_characters_round_trip(self):
        root = Element("t")
        root.append(Text('a<b&c>"d\''))
        root.set_attribute("attr", 'x"<&>')
        again = parse_document(to_string(root))
        assert again.text_content() == 'a<b&c>"d\''
        assert again.get_attribute("attr") == 'x"<&>'
