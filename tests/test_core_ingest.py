"""Property tests of batched ingestion (repro.core.ingest).

For random version sequences — including empty versions, deletions,
reinsertions and content flip-flops — ``add_versions(batch)`` must
produce an archive whose ``retrieve(v)`` is canonically equal to the
original document for every ``v``, and whose XML form is *identical* to
the archive built by repeated ``add_version`` — across all four
combinations of ``compaction`` × ``fingerprinter`` options (plus the
collision-forcing narrow fingerprinter).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Archive,
    ArchiveOptions,
    Fingerprinter,
    IngestSession,
    documents_equivalent,
)
from repro.data.company import company_key_spec
from repro.xmltree import Element, Text

# The four combinations the satellite task names, plus the bits=2
# configuration that deliberately forces sorting-fingerprint collisions
# (skip digests must stay wide regardless).
CONFIGURATIONS = [
    ArchiveOptions(),
    ArchiveOptions(compaction=True),
    ArchiveOptions(fingerprinter=Fingerprinter(bits=64)),
    ArchiveOptions(fingerprinter=Fingerprinter(bits=64), compaction=True),
    ArchiveOptions(fingerprinter=Fingerprinter(bits=2)),
]

_names = st.sampled_from(["ann", "bob", "cat", "dan"])
_salaries = st.sampled_from(["10K", "20K", "30K"])


@st.composite
def _employee(draw):
    return {
        "fn": draw(_names),
        "ln": draw(_names),
        "sal": draw(st.one_of(st.none(), _salaries)),
    }


@st.composite
def _state(draw):
    dept_names = draw(st.sets(st.sampled_from(["dx", "dy", "dz"]), max_size=3))
    state = {}
    for name in sorted(dept_names):
        unique = {}
        for emp in draw(st.lists(_employee(), max_size=3)):
            unique[(emp["fn"], emp["ln"])] = emp
        state[name] = unique
    return state


def _document(state) -> Element:
    db = Element("db")
    for dept_name, employees in state.items():
        dept = db.append(Element("dept"))
        dept.append(Element("name")).append(Text(dept_name))
        for (fn, ln), emp in employees.items():
            emp_el = dept.append(Element("emp"))
            emp_el.append(Element("fn")).append(Text(fn))
            emp_el.append(Element("ln")).append(Text(ln))
            if emp["sal"] is not None:
                emp_el.append(Element("sal")).append(Text(emp["sal"]))
    return db


# ``None`` entries are empty versions — the Sec. 2 corner the batch
# path must thread through the memo unchanged.
_sequences = st.lists(
    st.one_of(st.none(), _state()), min_size=1, max_size=6
)


@pytest.mark.parametrize(
    "options", CONFIGURATIONS, ids=lambda o: repr(o)
)
@given(states=_sequences)
@settings(max_examples=40, deadline=None)
def test_batch_equals_sequential_and_originals(options, states):
    spec = company_key_spec()
    documents = [None if s is None else _document(s) for s in states]

    sequential = Archive(spec, options)
    for document in documents:
        sequential.add_version(None if document is None else document.copy())

    batched = Archive(spec, options)
    total = batched.add_versions(
        None if document is None else document.copy() for document in documents
    )

    assert total.versions == len(documents)
    assert batched.to_xml_string() == sequential.to_xml_string()
    for number, document in enumerate(documents, start=1):
        rebuilt = batched.retrieve(number)
        if document is None:
            assert rebuilt is None
        else:
            assert documents_equivalent(rebuilt, document, spec)


@pytest.mark.parametrize(
    "options", CONFIGURATIONS, ids=lambda o: repr(o)
)
@given(prefix=_sequences, suffix=_sequences)
@settings(max_examples=25, deadline=None)
def test_seeded_session_on_existing_archive(options, prefix, suffix):
    """A batch appended to a pre-existing archive (memo seeded from its
    current state) must match the all-sequential build, even after the
    archive round-trips through its XML form."""
    spec = company_key_spec()
    before = [None if s is None else _document(s) for s in prefix]
    after = [None if s is None else _document(s) for s in suffix]

    sequential = Archive(spec, options)
    for document in before + after:
        sequential.add_version(None if document is None else document.copy())

    base = Archive(spec, options)
    for document in before:
        base.add_version(None if document is None else document.copy())
    reloaded = Archive.from_xml_string(base.to_xml_string(), spec, options)
    session = IngestSession(reloaded)
    for document in after:
        session.add(None if document is None else document.copy())

    assert reloaded.to_xml_string() == sequential.to_xml_string()


def test_identical_versions_collapse_to_single_root_skip():
    """Re-archiving an identical document is one digest hit at the
    document root: a single merge visit, the rest skipped."""
    spec = company_key_spec()
    state = {"dx": {("ann", "bob"): {"fn": "ann", "ln": "bob", "sal": "10K"}}}
    archive = Archive(spec)
    session = IngestSession(archive)
    session.add(_document(state))
    stats = session.add(_document(state))
    assert stats.subtrees_skipped == 1
    assert stats.nodes_matched == 1
    assert stats.nodes_inserted == 0


def test_delete_then_reinsert_skips_and_splits_timestamp():
    """A subtree deleted and later reinserted unchanged is recognized by
    its fingerprint: the merge skips the descent and the timestamp
    records the gap."""
    spec = company_key_spec()
    full = {
        "dx": {("ann", "bob"): {"fn": "ann", "ln": "bob", "sal": "10K"}},
        "dy": {("cat", "dan"): {"fn": "cat", "ln": "dan", "sal": "20K"}},
    }
    partial = {"dx": full["dx"]}
    archive = Archive(spec)
    session = IngestSession(archive)
    session.add(_document(full))
    session.add(_document(partial))
    stats = session.add(_document(full))
    assert stats.subtrees_skipped >= 2  # dx skipped, dy skip-reinserted
    history = archive.history("/db/dept[name=dy]")
    assert history.existence.to_text() == "1,3"
