"""Backend conformance suite: one contract, three implementations.

Every :class:`repro.storage.StorageBackend` must answer ingest,
retrieve, history, diff and stats identically — byte-identical
retrievals, matching temporal histories, the same change reports — and
the durable backends must survive a crash at any point of a batch
commit: killed between WAL append and publish, the archive reads at
the pre-batch version count; killed mid-publish, recovery completes
the commit.

The matrix runs across at-rest codecs too: every backend must
round-trip byte-identically whatever the codec, survive the same crash
drills under a compressing codec, and ``recode`` between any codec
pair atomically (a crash mid-recode recovers to wholly-old or
wholly-new encodings).
"""

import json
import os

import pytest

from repro.core import Archive, ArchiveError
from repro.core.tempquery import archive_diff
from repro.data.company import COMPANY_KEY_TEXT, company_versions
from repro.keys.keyparser import parse_key_spec
from repro.storage import (
    ChunkedArchiver,
    ExternalArchiver,
    FileBackend,
    create_archive,
    detect_backend_kind,
    key_spec_fingerprint,
    open_archive,
    read_manifest,
)
from repro.storage.wal import WriteAheadLog
from repro.xmltree import to_pretty_string

BACKENDS = ["file", "chunked", "external"]
CODECS = ["raw", "gzip", "xmill"]


@pytest.fixture
def spec():
    return parse_key_spec(COMPANY_KEY_TEXT)


@pytest.fixture
def versions():
    return list(company_versions())


@pytest.fixture
def reference(spec, versions):
    """The in-memory archive every backend must agree with."""
    archive = Archive(spec)
    for version in versions:
        archive.add_version(version.copy())
    return archive


def make_backend(kind, base, spec, chunk_count=3, codec=None):
    if kind == "file":
        return FileBackend(os.path.join(base, "archive.xml"), spec, codec=codec)
    if kind == "chunked":
        return ChunkedArchiver(
            os.path.join(base, "chunked"), spec, chunk_count, codec=codec
        )
    return ExternalArchiver(os.path.join(base, "external"), spec, codec=codec)


def rendered(document):
    return to_pretty_string(document) if document is not None else None


class TestConformance:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_batch_retrievals_byte_identical_to_reference(
        self, kind, codec, tmp_path, spec, versions, reference
    ):
        backend = make_backend(kind, str(tmp_path), spec, codec=codec)
        stats = backend.ingest_batch([v.copy() for v in versions])
        assert stats.versions == len(versions)
        assert backend.last_version == len(versions)
        for number in range(1, len(versions) + 1):
            assert rendered(backend.retrieve(number)) == rendered(
                reference.retrieve(number)
            )

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_add_version_loop_matches_batch(
        self, kind, tmp_path, spec, versions, reference
    ):
        backend = make_backend(kind, str(tmp_path), spec)
        for version in versions:
            backend.add_version(version.copy())
        assert backend.last_version == len(versions)
        assert rendered(backend.retrieve(3)) == rendered(reference.retrieve(3))

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_empty_versions(self, kind, tmp_path, spec, versions):
        backend = make_backend(kind, str(tmp_path), spec)
        backend.ingest_batch([versions[0].copy(), None, versions[1].copy()])
        assert backend.last_version == 3
        assert backend.retrieve(2) is None
        assert backend.retrieve(3) is not None

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_unknown_version_rejected(self, kind, tmp_path, spec, versions):
        backend = make_backend(kind, str(tmp_path), spec)
        backend.ingest_batch([versions[0].copy()])
        with pytest.raises(ValueError):
            backend.retrieve(2)

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_history_parity(self, kind, tmp_path, spec, versions, reference):
        backend = make_backend(kind, str(tmp_path), spec)
        backend.ingest_batch([v.copy() for v in versions])
        for path in (
            "/db/dept[name=finance]/emp[fn=John, ln=Doe]",
            "/db/dept[name=finance]/emp[fn=John, ln=Doe]/sal",
            "/db/dept[name=marketing]",
        ):
            expected = reference.history(path)
            actual = backend.history(path)
            assert actual.existence.to_text() == expected.existence.to_text()
            if expected.changes is None:
                assert actual.changes is None
            else:
                assert [
                    (ts.to_text(), content) for ts, content in actual.changes
                ] == [(ts.to_text(), content) for ts, content in expected.changes]

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_history_missing_element_raises(self, kind, tmp_path, spec, versions):
        backend = make_backend(kind, str(tmp_path), spec)
        backend.ingest_batch([v.copy() for v in versions])
        with pytest.raises(ValueError):
            backend.history("/db/dept[name=nonexistent]")

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_diff_parity(self, kind, tmp_path, spec, versions, reference):
        backend = make_backend(kind, str(tmp_path), spec)
        backend.ingest_batch([v.copy() for v in versions])
        expected = archive_diff(reference, 2, 4)
        actual = backend.diff(2, 4)
        # Chunked reports group changes by chunk; compare as sets.
        assert sorted(map(str, actual.changes)) == sorted(map(str, expected.changes))

    def test_chunked_diff_expands_shell_flicker(
        self, tmp_path, spec, versions, reference
    ):
        """With enough chunks a record sits alone in its chunk; when it
        dies, the chunk-local walk sees the shared document root die
        with it.  The merged report must still name the record, exactly
        like the in-memory walk."""
        backend = ChunkedArchiver(str(tmp_path / "many"), spec, 16)
        backend.ingest_batch([v.copy() for v in versions])
        expected = archive_diff(reference, 3, 4)
        actual = backend.diff(3, 4)
        assert sorted(map(str, actual.changes)) == sorted(map(str, expected.changes))

    def test_chunked_diff_reports_globally_deleted_root_once(
        self, tmp_path, spec, versions, reference
    ):
        backend = ChunkedArchiver(str(tmp_path / "many"), spec, 16)
        backend.ingest_batch([v.copy() for v in versions] + [None])
        reference.add_version(None)
        expected = archive_diff(reference, len(versions), len(versions) + 1)
        actual = backend.diff(len(versions), len(versions) + 1)
        assert sorted(map(str, actual.changes)) == sorted(map(str, expected.changes))

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_stats(self, kind, tmp_path, spec, versions, reference):
        backend = make_backend(kind, str(tmp_path), spec)
        backend.ingest_batch([v.copy() for v in versions])
        stats = backend.stats()
        assert stats.versions == len(versions)
        # Node counts agree across representations: the chunked backend
        # folds its per-chunk root/shell duplicates into one logical
        # occurrence.
        assert stats.nodes == reference.stats().nodes
        assert stats.stored_timestamps > 0
        assert stats.serialized_bytes > 0

    def test_retrievals_byte_identical_across_backends(
        self, tmp_path, spec, versions
    ):
        texts = {}
        for kind in BACKENDS:
            backend = make_backend(kind, str(tmp_path), spec)
            backend.ingest_batch([v.copy() for v in versions])
            texts[kind] = [
                rendered(backend.retrieve(number))
                for number in range(1, len(versions) + 1)
            ]
        assert texts["file"] == texts["chunked"] == texts["external"]


class TestOpenArchive:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_autodetects_backend(self, kind, tmp_path, spec, versions):
        path = str(tmp_path / ("arch.xml" if kind == "file" else "arch"))
        backend = create_archive(path, COMPANY_KEY_TEXT, kind=kind, chunk_count=3)
        backend.ingest_batch([v.copy() for v in versions])
        text = rendered(backend.retrieve(2))
        backend.close()
        reopened = open_archive(path)  # no spec, no kind: all from disk
        assert reopened.kind == kind
        assert reopened.last_version == len(versions)
        assert rendered(reopened.retrieve(2)) == text

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_manifest_is_self_describing(self, kind, tmp_path, spec, versions):
        path = str(tmp_path / ("arch.xml" if kind == "file" else "arch"))
        backend = create_archive(path, COMPANY_KEY_TEXT, kind=kind, chunk_count=3)
        backend.ingest_batch([v.copy() for v in versions])
        manifest = read_manifest(path)
        assert manifest is not None
        assert manifest.kind == kind
        assert manifest.version_count == len(versions)
        assert manifest.key_spec_hash == key_spec_fingerprint(spec)

    def test_wrong_keys_rejected(self, tmp_path, versions):
        path = str(tmp_path / "arch.xml")
        backend = create_archive(path, COMPANY_KEY_TEXT, kind="file")
        backend.ingest_batch([v.copy() for v in versions])
        other = parse_key_spec("(/, (db, {}))\n(/db, (dept, {}))")
        with pytest.raises(ArchiveError):
            open_archive(path, other)

    def test_legacy_layouts_detected_without_manifest(self, tmp_path, spec, versions):
        chunked = ChunkedArchiver(str(tmp_path / "chunked"), spec, 3)
        chunked.ingest_batch([v.copy() for v in versions])
        expected = rendered(chunked.retrieve(2))
        os.remove(tmp_path / "chunked" / "manifest.json")
        assert detect_backend_kind(str(tmp_path / "chunked")) == "chunked"
        reopened = open_archive(str(tmp_path / "chunked"), spec)
        # The inferred chunk count covers every stored chunk file, so
        # reads of a pre-manifest directory stay complete.
        assert reopened.last_version == len(versions)
        assert rendered(reopened.retrieve(2)) == expected

        external = ExternalArchiver(str(tmp_path / "external"), spec)
        external.add_version(versions[0].copy())
        os.remove(tmp_path / "external" / "manifest.json")
        assert detect_backend_kind(str(tmp_path / "external")) == "external"

        file_backend = FileBackend(str(tmp_path / "arch.xml"), spec)
        file_backend.add_version(versions[0].copy())
        os.remove(tmp_path / "arch.xml.manifest.json")
        assert detect_backend_kind(str(tmp_path / "arch.xml")) == "file"

    def test_missing_archive_raises(self, tmp_path):
        with pytest.raises(ArchiveError):
            open_archive(str(tmp_path / "nowhere"))

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_force_recreation_resets_the_archive(self, kind, tmp_path, versions):
        path = str(tmp_path / ("arch.xml" if kind == "file" else "arch"))
        backend = create_archive(path, COMPANY_KEY_TEXT, kind=kind, chunk_count=3)
        backend.ingest_batch([v.copy() for v in versions])
        assert backend.last_version == len(versions)
        fresh = create_archive(path, COMPANY_KEY_TEXT, kind=kind, force=True)
        assert fresh.last_version == 0  # reinitialized, not adopted
        assert open_archive(path).last_version == 0

    def test_force_refuses_non_archive_directory(self, tmp_path):
        victim = tmp_path / "precious"
        victim.mkdir()
        (victim / "data.txt").write_text("not an archive")
        with pytest.raises(ArchiveError):
            create_archive(str(victim), COMPANY_KEY_TEXT, kind="chunked", force=True)
        assert (victim / "data.txt").exists()


class SimulatedCrash(RuntimeError):
    pass


def _crash_before_publish(self, entries):
    raise SimulatedCrash("killed between WAL append and publish")


def _crash_mid_publish(self, entries):
    first = entries[0]
    os.replace(first + ".tmp", first)
    raise SimulatedCrash("killed mid-publish")


class TestCrashRecovery:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("kind", ["file", "chunked"])
    def test_crash_between_append_and_publish_rolls_back(
        self, kind, codec, tmp_path, spec, versions, monkeypatch
    ):
        backend = make_backend(kind, str(tmp_path), spec, codec=codec)
        backend.ingest_batch([v.copy() for v in versions[:2]])
        path = backend.path if kind == "file" else backend.directory
        pre_batch = [rendered(backend.retrieve(n)) for n in (1, 2)]

        monkeypatch.setattr(WriteAheadLog, "publish", _crash_before_publish)
        crashing = open_archive(path, spec)
        with pytest.raises(SimulatedCrash):
            crashing.ingest_batch([v.copy() for v in versions[2:]])
        monkeypatch.undo()

        recovered = open_archive(path, spec)
        assert recovered.last_version == 2  # the batch rolled back cleanly
        assert [rendered(recovered.retrieve(n)) for n in (1, 2)] == pre_batch
        directory = path if os.path.isdir(path) else os.path.dirname(path)
        assert not any(n.endswith(".tmp") for n in os.listdir(directory))
        # ...and the batch replays cleanly after recovery.
        recovered.ingest_batch([v.copy() for v in versions[2:]])
        assert recovered.last_version == len(versions)

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("kind", ["file", "chunked"])
    def test_crash_mid_publish_rolls_forward(
        self, kind, codec, tmp_path, spec, versions, monkeypatch
    ):
        backend = make_backend(kind, str(tmp_path), spec, codec=codec)
        backend.ingest_batch([v.copy() for v in versions[:2]])
        path = backend.path if kind == "file" else backend.directory

        monkeypatch.setattr(WriteAheadLog, "publish", _crash_mid_publish)
        crashing = open_archive(path, spec)
        with pytest.raises(SimulatedCrash):
            crashing.ingest_batch([v.copy() for v in versions[2:]])
        monkeypatch.undo()

        recovered = open_archive(path, spec)
        # Publication had begun, so recovery completes the commit: no
        # torn mix of pre- and post-batch files survives.
        assert recovered.last_version == len(versions)
        for number in range(1, len(versions) + 1):
            recovered.retrieve(number)  # every version reconstructs

    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("kind", ["file", "chunked"])
    def test_crash_mid_stage_rolls_back(
        self, kind, codec, tmp_path, spec, versions, monkeypatch
    ):
        """Dying before the WAL append leaves only stray tmps; opening
        the archive discards them."""
        backend = make_backend(kind, str(tmp_path), spec, codec=codec)
        backend.ingest_batch([v.copy() for v in versions[:2]])
        path = backend.path if kind == "file" else backend.directory

        monkeypatch.setattr(
            WriteAheadLog,
            "append",
            lambda self, entries, meta=None: (_ for _ in ()).throw(
                SimulatedCrash("killed mid-stage")
            ),
        )
        crashing = open_archive(path, spec)
        with pytest.raises(SimulatedCrash):
            crashing.ingest_batch([v.copy() for v in versions[2:]])
        monkeypatch.undo()

        recovered = open_archive(path, spec)
        assert recovered.last_version == 2
        directory = path if os.path.isdir(path) else os.path.dirname(path)
        assert not any(n.endswith(".tmp") for n in os.listdir(directory))

    def test_on_chunk_not_fired_for_rolled_back_batch(
        self, tmp_path, spec, versions, monkeypatch
    ):
        """Index-cache hooks must only see committed state: a batch
        that dies before publish fires no ``on_chunk``, so caches never
        adopt versions the disk rolled back."""
        backend = make_backend("chunked", str(tmp_path), spec)
        backend.ingest_batch([v.copy() for v in versions[:2]])
        seen = []
        monkeypatch.setattr(WriteAheadLog, "publish", _crash_before_publish)
        with pytest.raises(SimulatedCrash):
            backend.ingest_batch(
                [v.copy() for v in versions[2:]],
                on_chunk=lambda index, archive: seen.append(index),
            )
        assert seen == []
        monkeypatch.undo()
        backend2 = make_backend("chunked", str(tmp_path), spec)
        backend2.ingest_batch(
            [v.copy() for v in versions[2:]],
            on_chunk=lambda index, archive: seen.append(index),
        )
        assert seen  # committed batches still announce their chunks

    def test_torn_wal_record_treated_as_uncommitted(self, tmp_path, spec, versions):
        backend = make_backend("chunked", str(tmp_path), spec)
        backend.ingest_batch([v.copy() for v in versions[:2]])
        with open(os.path.join(backend.directory, "wal.json"), "w") as handle:
            handle.write('{"format": 1, "entr')  # torn mid-write
        recovered = open_archive(backend.directory, spec)
        assert recovered.last_version == 2
        assert not os.path.exists(os.path.join(backend.directory, "wal.json"))

    def test_wal_meta_records_target_version_count(
        self, tmp_path, spec, versions, monkeypatch
    ):
        backend = make_backend("chunked", str(tmp_path), spec)
        monkeypatch.setattr(WriteAheadLog, "publish", _crash_before_publish)
        with pytest.raises(SimulatedCrash):
            backend.ingest_batch([v.copy() for v in versions])
        with open(os.path.join(backend.directory, "wal.json")) as handle:
            record = json.load(handle)
        assert record["meta"]["version_count"] == len(versions)


class TestCodecMatrix:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_codec_autodetected_on_reopen(
        self, kind, codec, tmp_path, spec, versions
    ):
        path = str(tmp_path / ("arch.xml" if kind == "file" else "arch"))
        backend = create_archive(
            path, COMPANY_KEY_TEXT, kind=kind, chunk_count=3, codec=codec
        )
        backend.ingest_batch([v.copy() for v in versions])
        expected = rendered(backend.retrieve(2))
        backend.close()
        manifest = read_manifest(path)
        assert manifest is not None and manifest.codec == codec
        reopened = open_archive(path)  # no spec, no codec: all from disk
        assert reopened.codec.name == codec
        assert rendered(reopened.retrieve(2)) == expected

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_compressing_codec_shrinks_disk_but_not_raw(
        self, kind, tmp_path, spec, versions
    ):
        (tmp_path / "r").mkdir()
        (tmp_path / "g").mkdir()
        raw = make_backend(kind, str(tmp_path / "r"), spec, codec="raw")
        gz = make_backend(kind, str(tmp_path / "g"), spec, codec="gzip")
        raw.ingest_batch([v.copy() for v in versions])
        gz.ingest_batch([v.copy() for v in versions])
        raw_stats, gz_stats = raw.stats(), gz.stats()
        assert raw_stats.raw_bytes == gz_stats.raw_bytes  # same logical bytes
        assert raw_stats.disk_bytes == raw_stats.raw_bytes
        assert gz_stats.disk_bytes < gz_stats.raw_bytes
        assert gz_stats.compression_ratio > 1.0
        assert raw_stats.compression_ratio == 1.0

    def test_manifestless_file_codec_sniffed_by_magic(
        self, tmp_path, spec, versions
    ):
        path = str(tmp_path / "arch.xml")
        backend = FileBackend(path, spec, codec="xmill")
        backend.ingest_batch([v.copy() for v in versions])
        expected = rendered(backend.retrieve(2))
        os.remove(path + ".manifest.json")
        reopened = open_archive(path, spec)
        assert reopened.codec.name == "xmill"
        assert rendered(reopened.retrieve(2)) == expected

    def test_manifestless_chunked_codec_sniffed_by_magic(
        self, tmp_path, spec, versions
    ):
        backend = ChunkedArchiver(str(tmp_path / "c"), spec, 3, codec="gzip")
        backend.ingest_batch([v.copy() for v in versions])
        expected = rendered(backend.retrieve(2))
        os.remove(tmp_path / "c" / "manifest.json")
        reopened = open_archive(str(tmp_path / "c"), spec)
        assert reopened.codec.name == "gzip"
        assert rendered(reopened.retrieve(2)) == expected

    def test_presence_sidecars_stay_plain(self, tmp_path, spec, versions):
        backend = ChunkedArchiver(str(tmp_path / "c"), spec, 3, codec="xmill")
        backend.ingest_batch([v.copy() for v in versions])
        for name in os.listdir(tmp_path / "c"):
            full = tmp_path / "c" / name
            if name.endswith((".presence", ".txt", ".json", ".keys")):
                full.read_text(encoding="utf-8")  # must not be binary


RECODE_CHAIN = ["gzip", "xmill", "raw", "xmill", "gzip", "raw"]


class TestRecode:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_recode_chain_preserves_every_retrieval(
        self, kind, tmp_path, spec, versions, reference
    ):
        """raw→gzip→xmill→raw→… covers every ordered codec pair."""
        path = str(tmp_path / ("arch.xml" if kind == "file" else "arch"))
        backend = create_archive(path, COMPANY_KEY_TEXT, kind=kind, chunk_count=3)
        backend.ingest_batch([v.copy() for v in versions])
        expected = [
            rendered(reference.retrieve(n)) for n in range(1, len(versions) + 1)
        ]
        previous = "raw"
        for codec in RECODE_CHAIN:
            report = backend.recode(codec)
            assert (report.old_codec, report.new_codec) == (previous, codec)
            previous = codec
            backend.close()
            backend = open_archive(path)  # reopen: manifest names the codec
            assert backend.codec.name == codec
            assert [
                rendered(backend.retrieve(n))
                for n in range(1, len(versions) + 1)
            ] == expected

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_recode_onto_same_codec_is_idempotent(
        self, kind, tmp_path, spec, versions
    ):
        backend = make_backend(kind, str(tmp_path), spec, codec="gzip")
        backend.ingest_batch([v.copy() for v in versions])
        before = rendered(backend.retrieve(1))
        report = backend.recode("gzip")
        assert report.old_codec == report.new_codec == "gzip"
        assert rendered(backend.retrieve(1)) == before

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_crash_before_recode_publish_keeps_old_codec(
        self, kind, tmp_path, spec, versions, monkeypatch
    ):
        path = str(tmp_path / ("arch.xml" if kind == "file" else "arch"))
        backend = create_archive(path, COMPANY_KEY_TEXT, kind=kind, chunk_count=3)
        backend.ingest_batch([v.copy() for v in versions])
        expected = rendered(backend.retrieve(2))
        backend.close()

        monkeypatch.setattr(WriteAheadLog, "publish", _crash_before_publish)
        crashing = open_archive(path)
        with pytest.raises(SimulatedCrash):
            crashing.recode("xmill")
        monkeypatch.undo()

        recovered = open_archive(path)
        assert recovered.codec.name == "raw"  # the recode rolled back whole
        manifest = read_manifest(path)
        assert manifest is not None and manifest.codec == "raw"
        assert rendered(recovered.retrieve(2)) == expected
        directory = path if os.path.isdir(path) else os.path.dirname(path)
        assert not any(n.endswith(".tmp") for n in os.listdir(directory))
        # ...and the recode replays cleanly after recovery.
        assert recovered.recode("xmill").new_codec == "xmill"
        assert rendered(open_archive(path).retrieve(2)) == expected

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_crash_mid_recode_publish_rolls_forward(
        self, kind, tmp_path, spec, versions, monkeypatch
    ):
        path = str(tmp_path / ("arch.xml" if kind == "file" else "arch"))
        backend = create_archive(path, COMPANY_KEY_TEXT, kind=kind, chunk_count=3)
        backend.ingest_batch([v.copy() for v in versions])
        expected = rendered(backend.retrieve(2))
        backend.close()

        monkeypatch.setattr(WriteAheadLog, "publish", _crash_mid_publish)
        crashing = open_archive(path)
        with pytest.raises(SimulatedCrash):
            crashing.recode("gzip")
        monkeypatch.undo()

        # Publication had begun: recovery completes it — payloads and
        # manifest land together on the new codec, never a torn mix.
        recovered = open_archive(path)
        assert recovered.codec.name == "gzip"
        manifest = read_manifest(path)
        assert manifest is not None and manifest.codec == "gzip"
        assert rendered(recovered.retrieve(2)) == expected

    def test_recode_rejects_unknown_codec(self, tmp_path, spec, versions):
        backend = make_backend("file", str(tmp_path), spec)
        backend.ingest_batch([v.copy() for v in versions])
        with pytest.raises(ValueError):
            backend.recode("zstd")
