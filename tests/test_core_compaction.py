"""Direct unit tests for the frontier weave (core.compaction)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VersionSet
from repro.core.compaction import (
    content_to_lines,
    lines_to_content,
    merge_weave,
    weave_content_at,
    weave_from_content,
)
from repro.xmltree import Text, parse_document, value_list_equal


def content(source: str):
    return list(parse_document(f"<w>{source}</w>").children)


class TestLineCodec:
    def test_elements_become_lines(self):
        lines = content_to_lines(content("<a>1</a><b><c>2</c></b>"))
        assert lines[0] == "<a>1</a>"
        assert "<b>" in lines

    def test_text_becomes_one_wrapped_line(self):
        lines = content_to_lines([Text("line one\nline two")])
        assert lines == ["<weave-text>line one&#10;line two</weave-text>"]

    def test_round_trip(self):
        original = content("<a>1</a>text<b/>")
        again = lines_to_content(content_to_lines(original))
        assert value_list_equal(original, again)

    def test_escaped_text_round_trips(self):
        original = [Text("a < b & c")]
        again = lines_to_content(content_to_lines(original))
        assert again[0].text == "a < b & c"

    def test_empty(self):
        assert lines_to_content([]) == []
        assert content_to_lines([]) == []


class TestWeaveMerge:
    def test_initial_weave(self):
        weave = weave_from_content(content("<a>1</a>"), VersionSet([1]))
        assert weave.lines_at(1) == ["<a>1</a>"]

    def test_unchanged_content_augments_timestamps(self):
        weave = weave_from_content(content("<a>1</a>"), VersionSet([1]))
        changed = merge_weave(weave, content("<a>1</a>"), 2)
        assert not changed
        assert weave.lines_at(2) == ["<a>1</a>"]
        assert len(weave.segments) == 1

    def test_partial_change_shares_lines(self):
        weave = weave_from_content(
            content("<a>1</a><b>2</b><c>3</c>"), VersionSet([1])
        )
        merge_weave(weave, content("<a>1</a><b>CHANGED</b><c>3</c>"), 2)
        # a and c lines shared; only b stored twice: a, b, b', c.
        assert weave.line_count() == 4
        assert weave.lines_at(1) == ["<a>1</a>", "<b>2</b>", "<c>3</c>"]
        assert weave.lines_at(2) == ["<a>1</a>", "<b>CHANGED</b>", "<c>3</c>"]

    def test_line_reappearing_after_empty_state_is_reshared(self):
        """The weave aligns against the last *recorded* state, so a
        line deleted to empty and reinserted identically is stored once
        (timestamps 1,3) — reconstruction stays exact."""
        weave = weave_from_content(content("<x/>"), VersionSet([1]))
        merge_weave(weave, [], 2)
        merge_weave(weave, content("<x/>"), 3)
        assert weave.line_count() == 1
        assert weave.lines_at(1) == ["<x/>"]
        assert weave.lines_at(2) == []
        assert weave.lines_at(3) == ["<x/>"]

    def test_line_reappearing_after_other_content_is_duplicated(self):
        """Classic SCCS duplication: A -> B -> A stores A twice."""
        weave = weave_from_content(content("<a>A</a>"), VersionSet([1]))
        merge_weave(weave, content("<b>B</b>"), 2)
        merge_weave(weave, content("<a>A</a>"), 3)
        assert weave.line_count() == 3
        for number, expected in [(1, "<a>A</a>"), (2, "<b>B</b>"), (3, "<a>A</a>")]:
            assert weave.lines_at(number) == [expected]

    def test_content_at_parses_back(self):
        weave = weave_from_content(content("<a>1</a><b>2</b>"), VersionSet([1]))
        merge_weave(weave, content("<a>1</a>"), 2)
        rebuilt = weave_content_at(weave, 1)
        assert value_list_equal(rebuilt, content("<a>1</a><b>2</b>"))

    def test_empty_initial_content(self):
        weave = weave_from_content([], VersionSet([1]))
        merge_weave(weave, content("<a/>"), 2)
        assert weave.lines_at(1) == []
        assert weave.lines_at(2) == ["<a/>"]


_line_pools = st.lists(
    st.sampled_from(["<a>1</a>", "<b>2</b>", "<c>3</c>", "<d/>", "<e>x</e>"]),
    max_size=5,
    unique=True,
)


class TestWeaveProperties:
    @given(st.lists(_line_pools, min_size=1, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_every_version_reconstructs(self, version_contents):
        contents = [content("".join(lines)) for lines in version_contents]
        weave = weave_from_content(contents[0], VersionSet([1]))
        for number, item in enumerate(contents[1:], start=2):
            merge_weave(weave, item, number)
        for number, item in enumerate(contents, start=1):
            assert value_list_equal(weave_content_at(weave, number), item)

    @given(st.lists(_line_pools, min_size=2, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_line_count_bounded_by_total(self, version_contents):
        contents = [content("".join(lines)) for lines in version_contents]
        weave = weave_from_content(contents[0], VersionSet([1]))
        total_lines = len(content_to_lines(contents[0]))
        for number, item in enumerate(contents[1:], start=2):
            merge_weave(weave, item, number)
            total_lines += len(content_to_lines(item))
        # Sharing can only reduce the count below storing all versions.
        assert weave.line_count() <= total_lines
