"""EXT-MEM — Sec. 6: the external-memory archiver.

Checks equivalence with the in-memory archiver at benchmark scale and
reports the I/O page accounting of the sort and merge phases; benches
one external add_version under a small memory budget.
"""

import tempfile

from conftest import publish

from repro.core import Archive
from repro.data import SwissProtGenerator, swissprot_key_spec
from repro.storage import ExternalArchiver


def _versions(count=4, records=12):
    return SwissProtGenerator(seed=9, initial_records=records).generate_versions(count)


def test_external_add_version(benchmark):
    spec = swissprot_key_spec()
    versions = _versions()

    def run():
        with tempfile.TemporaryDirectory() as directory:
            archiver = ExternalArchiver(directory, spec, memory_budget=60, fan_in=4)
            for version in versions:
                archiver.add_version(version.copy())
            return archiver.io_stats.pages_written()

    pages = benchmark.pedantic(run, rounds=1, iterations=1)
    assert pages > 0


def test_external_equivalence_and_io(once, results_dir):
    spec = swissprot_key_spec()
    versions = _versions()

    def run():
        with tempfile.TemporaryDirectory() as directory:
            archiver = ExternalArchiver(directory, spec, memory_budget=60, fan_in=4)
            in_memory = Archive(spec)
            for version in versions:
                archiver.add_version(version.copy())
                in_memory.add_version(version)
            same = archiver.to_archive().to_xml_string() == in_memory.to_xml_string()
            return same, archiver.io_stats, archiver.archive_bytes()

    same, stats, archive_bytes = once(run)
    text = (
        f"external archive identical to in-memory: {same}\n"
        f"pages read: {stats.pages_read()}, pages written: "
        f"{stats.pages_written()} (page size {stats.page_size})\n"
        f"final archive stream: {archive_bytes} bytes"
    )
    publish(results_dir, "external_memory.txt", text)
    assert same
    # Single-pass merging: total I/O stays within a small multiple of
    # the data actually stored (the O(N/B)-per-phase analysis).
    assert stats.bytes_read < 40 * archive_bytes
