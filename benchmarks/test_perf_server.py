"""PERF-SERVER — ``xarchd`` read latency under an active writer.

The server's concurrency claim (snapshot-isolated readers, single
writer) is only worth having if reads stay cheap while a writer
publishes: every request re-pins a recovery-free snapshot, so the cost
under contention is the pin (manifest + checksum sidecar) plus the
query itself, never a lock wait.

The drill here: K reader threads hammer one chunked archive over HTTP
while one writer ingests version after version through the same
server.  Recorded per read: wall-clock latency and *generation
staleness* — the distance between the writer's last published
generation at request start and the generation the answer actually
pinned.  Staleness 0 means the pin caught the newest commit; the drill
asserts staleness never exceeds one generation (a reader can race the
commit it overlaps, never fall further behind) and that every answer
is internally consistent (record count matches its pinned version).

``p50/p99`` land in ``extra_info`` (kept by ``summarize_bench.py``,
committed as ``BENCH_server.json``); the rendered table is published
to ``results/PERF_server.txt``.
"""

import os
import threading
import time

import pytest

from conftest import publish

from repro.client import connect
from repro.data.omim import OMIM_KEY_TEXT
from repro.experiments.figures import omim_versions
from repro.server.http import make_server, run_in_thread
from repro.storage import create_archive

READERS = 4
SEED_VERSIONS = 3
WRITER_VERSIONS = 5
RECORDS = 80
CORES = len(os.sched_getaffinity(0))

#: Filled by the drill, rendered by the summary test.
RESULTS: dict = {}


def percentile(samples: list, fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * fraction))]


@pytest.fixture(scope="module")
def served_store(tmp_path_factory):
    """An in-process server over one chunked OMIM archive."""
    root = str(tmp_path_factory.mktemp("server-bench"))
    versions = omim_versions(
        SEED_VERSIONS + WRITER_VERSIONS, initial_records=RECORDS
    )
    backend = create_archive(
        os.path.join(root, "omim-store"),
        OMIM_KEY_TEXT,
        kind="chunked",
        chunk_count=4,
    )
    backend.ingest_batch(versions[:SEED_VERSIONS])
    backend.close()
    server = make_server(root, port=0)
    run_in_thread(server)
    host, port = server.server_address
    yield {
        "url": f"http://{host}:{port}/archives/omim-store",
        "pending": versions[SEED_VERSIONS:],
    }
    server.shutdown()
    server.server_close()


def test_reads_under_write_load(benchmark, served_store):
    """K readers + 1 writer against one archive; p50/p99 + staleness."""
    url, pending = served_store["url"], served_store["pending"]

    def drill():
        #: Last generation the writer saw published (readers compare
        #: their pinned generation against the value at request start).
        published = {"generation": None, "count": 0}
        done = threading.Event()
        errors = []
        samples = []  # (latency_s, staleness, count, resolved_version)
        samples_lock = threading.Lock()

        def writer():
            try:
                with connect(url) as db:
                    published["generation"] = db.stats()["generation"]
                    for document in pending:
                        report = db.ingest([document])
                        published["generation"] = report["generation"]
                        published["count"] += 1
            except BaseException as error:  # pragma: no cover
                errors.append(error)
            finally:
                done.set()

        def reader():
            try:
                with connect(url) as db:
                    while not done.is_set():
                        known = published["generation"]
                        start = time.perf_counter()
                        result = db.at("latest").select("/ROOT/Record/Num/text()")
                        count = len(result.all())
                        elapsed = time.perf_counter() - start
                        staleness = (
                            max(0, known - result.generation)
                            if known is not None
                            else 0
                        )
                        with samples_lock:
                            samples.append(
                                (elapsed, staleness, count,
                                 result.done["version"])
                            )
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        return published, errors, samples

    published, errors, samples = benchmark.pedantic(
        drill, rounds=1, iterations=1
    )
    assert not errors, errors
    assert published["count"] == WRITER_VERSIONS
    assert len(samples) >= READERS  # every reader got answers through

    latencies = [latency for latency, _, _, _ in samples]
    staleness = [stale for _, stale, _, _ in samples]
    # A pin can race the one commit it overlaps, never trail further.
    assert max(staleness) <= 1
    # Internal consistency: the record count grows with the resolved
    # version (one Record is added per OMIM version), so a torn read —
    # counting records of one version under the header of another —
    # cannot hide.
    expected = {
        version: RECORDS + (version - 1)
        for _, _, _, version in samples
    }
    for _, _, count, version in samples:
        assert count == expected[version], (count, version)

    RESULTS.update(
        reads=len(samples),
        ingests=published["count"],
        p50_ms=percentile(latencies, 0.50) * 1e3,
        p99_ms=percentile(latencies, 0.99) * 1e3,
        max_ms=max(latencies) * 1e3,
        stale_reads=sum(1 for value in staleness if value),
        max_staleness=max(staleness),
    )
    benchmark.extra_info.update(RESULTS, readers=READERS, cpu_cores=CORES)


def test_server_summary(results_dir):
    assert RESULTS, "drill did not run"
    stale_pct = 100.0 * RESULTS["stale_reads"] / RESULTS["reads"]
    lines = [
        "PERF-SERVER: xarchd under concurrent load "
        f"({READERS} readers + 1 writer, {CORES} core(s) available)",
        "",
        f"reads answered:     {RESULTS['reads']}",
        f"writer ingests:     {RESULTS['ingests']}",
        f"read latency p50:   {RESULTS['p50_ms']:.1f} ms",
        f"read latency p99:   {RESULTS['p99_ms']:.1f} ms",
        f"read latency max:   {RESULTS['max_ms']:.1f} ms",
        f"stale reads:        {RESULTS['stale_reads']} ({stale_pct:.1f}%), "
        f"max staleness {RESULTS['max_staleness']} generation(s)",
        "",
        "(every answer matched its pinned version's record count; a pin",
        " trails the newest publish by at most the commit it overlaps)",
    ]
    publish(results_dir, "PERF_server.txt", "\n".join(lines))
