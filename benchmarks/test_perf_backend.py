"""TIME-BACKEND — the unified storage protocol's conformance timings.

One benchmark per backend over the identical workload: batch-ingest an
OMIM-style version sequence through the
:class:`~repro.storage.StorageBackend` surface, then retrieve every
version and run a history probe.  The timings land next to the merge
and retrieval benchmarks in CI, so a regression in any backend's
ingest/read path shows up in the uploaded JSON artifacts.

Correctness rides along: every benchmark round asserts the retrieved
versions match the originals, so a backend cannot get faster by
answering wrong.
"""

import pytest

from repro.data import OmimGenerator, omim_key_spec
from repro.storage import ChunkedArchiver, ExternalArchiver, FileBackend

VERSIONS = 12
RECORDS = 16
BACKENDS = ["file", "chunked", "external"]


@pytest.fixture(scope="module")
def sequence():
    return OmimGenerator(seed=29, initial_records=RECORDS).generate_versions(VERSIONS)


@pytest.fixture(scope="module")
def spec():
    return omim_key_spec()


def make_backend(kind, base, spec):
    if kind == "file":
        return FileBackend(str(base / "archive.xml"), spec)
    if kind == "chunked":
        return ChunkedArchiver(str(base / "chunked"), spec, chunk_count=4)
    return ExternalArchiver(str(base / "external"), spec)


@pytest.mark.parametrize("kind", BACKENDS)
def test_backend_ingest_throughput(benchmark, kind, sequence, spec, tmp_path_factory):
    """Wall-clock of one ``ingest_batch`` over the version sequence."""
    counter = iter(range(1_000_000))

    def setup():
        base = tmp_path_factory.mktemp(f"{kind}-ingest-{next(counter)}")
        return (make_backend(kind, base, spec),), {}

    def ingest(backend):
        total = backend.ingest_batch(v.copy() for v in sequence)
        assert backend.last_version == VERSIONS
        return total

    benchmark.pedantic(ingest, setup=setup, rounds=3, iterations=1)


@pytest.mark.parametrize("kind", BACKENDS)
def test_backend_retrieve_throughput(benchmark, kind, sequence, spec, tmp_path_factory):
    """Wall-clock of retrieving every version plus one history probe."""
    base = tmp_path_factory.mktemp(f"{kind}-retrieve")
    backend = make_backend(kind, base, spec)
    backend.ingest_batch(v.copy() for v in sequence)
    num = sequence[0].find("Record").find("Num").text_content()
    path = f"/ROOT/Record[Num={num}]"

    def read_everything():
        for number in range(1, VERSIONS + 1):
            document = backend.retrieve(number)
            assert document is not None
        history = backend.history(path)
        assert history.existence.max_version() >= 1

    benchmark.pedantic(read_everything, rounds=3, iterations=1)
