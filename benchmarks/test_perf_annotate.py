"""TIME-ANNOT — Sec. 4.1 analysis: Annotate Keys scales near-linearly
in document size (O(N·h·(Σm + q)) with h, Σm, q small constants)."""

import pytest

from repro.data import OmimGenerator, omim_key_spec
from repro.keys import annotate_keys


@pytest.mark.parametrize("records", [25, 50, 100])
def test_annotate_keys_scaling(benchmark, records):
    spec = omim_key_spec()
    document = OmimGenerator(seed=1, initial_records=records).initial_version()
    result = benchmark(lambda: annotate_keys(document, spec))
    assert result.label(result.root) is not None


def test_annotate_cost_linear_in_nodes(once):
    """Direct check of the analysis: quadrupling N scales time ~linearly."""
    import time

    spec = omim_key_spec()

    def measure():
        timings = {}
        for records in (40, 160):
            document = OmimGenerator(seed=2, initial_records=records).initial_version()
            # Best of several runs: the minimum is the standard
            # noise-robust estimator, so a GC pause or scheduler blip in
            # one run (common late in a long pytest process) cannot skew
            # the ratio the assertion checks.
            best = float("inf")
            for _ in range(5):
                start = time.perf_counter()
                annotate_keys(document, spec)
                best = min(best, time.perf_counter() - start)
            timings[records] = best
        return timings[160] / timings[40]

    ratio = once(measure)
    # 4x nodes → between ~2x and ~8x time (linear with noise allowance).
    assert 2.0 < ratio < 8.0, f"scaling ratio {ratio:.2f}"
