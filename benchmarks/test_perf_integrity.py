"""TIME-INTEGRITY — what the integrity plane costs.

Three numbers the trajectory tracks (committed as
``benchmarks/results/BENCH_integrity.json``):

* ingest throughput with checksumming on (it cannot be turned off at
  write time — every staged payload is hashed before publish);
* the verify-on-read delta: the same sparse retrieval under
  ``verify="always"`` vs ``verify="never"``, min-of-N on both sides so
  scheduler noise cancels.  The recorded ``verify_delta`` is the
  headline claim — hashing is small against XML parsing, so the
  overhead stays in the low single digits;
* ``fsck`` scrub throughput (bytes of archive state per second).

Correctness rides along: every benchmark round asserts the retrieval
succeeded and the scrub came back clean, so the integrity plane cannot
get faster by checking less.
"""

import os
import time

import pytest

from repro.data import OmimGenerator, omim_key_spec
from repro.storage import ChunkedArchiver, fsck_archive, open_archive

VERSIONS = 10
RECORDS = 16
#: Manual-timing repetitions for the verify delta (min-of-N).
TIMING_RUNS = 5


@pytest.fixture(scope="module")
def sequence():
    return OmimGenerator(seed=31, initial_records=RECORDS).generate_versions(
        VERSIONS
    )


@pytest.fixture(scope="module")
def spec():
    return omim_key_spec()


@pytest.fixture(scope="module")
def store(tmp_path_factory, sequence, spec):
    """One chunked archive, ingested once, read by every benchmark."""
    base = tmp_path_factory.mktemp("integrity-store")
    path = str(base / "store")
    backend = ChunkedArchiver(path, spec, chunk_count=4)
    backend.ingest_batch(v.copy() for v in sequence)
    backend.close()
    return path


def archive_bytes(path):
    return sum(
        os.path.getsize(os.path.join(path, name))
        for name in os.listdir(path)
        if os.path.isfile(os.path.join(path, name))
    )


def test_ingest_throughput_with_checksums(
    benchmark, sequence, spec, tmp_path_factory
):
    """Ingest wall-clock with payload hashing on (the only mode)."""
    counter = iter(range(1_000_000))

    def setup():
        base = tmp_path_factory.mktemp(f"integrity-ingest-{next(counter)}")
        return (ChunkedArchiver(str(base / "store"), spec, chunk_count=4),), {}

    def ingest(backend):
        backend.ingest_batch(v.copy() for v in sequence)
        assert backend.last_version == VERSIONS
        backend.close()

    benchmark.pedantic(ingest, setup=setup, rounds=3, iterations=1)


def test_sparse_retrieval_verify_delta(benchmark, store, spec):
    """The verify-on-read cost: one mid-sequence retrieval, policy
    ``"always"`` (benchmark) against ``"never"`` (manual min-of-N)."""
    target = VERSIONS // 2

    def read(policy):
        backend = open_archive(store, spec, verify=policy)
        try:
            assert backend.retrieve(target) is not None
        finally:
            backend.close()

    def min_of_n(policy):
        best = float("inf")
        for _ in range(TIMING_RUNS):
            start = time.perf_counter()
            read(policy)
            best = min(best, time.perf_counter() - start)
        return best

    # Interleave a warm-up of each side, then time both the same way
    # so cache state cancels out of the comparison.
    read("never")
    read("always")
    never_s = min_of_n("never")
    always_s = min_of_n("always")
    delta = (always_s - never_s) / never_s if never_s else 0.0

    benchmark.extra_info["verify_always_min_s"] = round(always_s, 6)
    benchmark.extra_info["verify_never_min_s"] = round(never_s, 6)
    benchmark.extra_info["verify_delta"] = round(delta, 4)
    # Loose tripwire only — the committed number is the claim; a hard
    # 5% assert would flake on shared CI runners.
    assert delta < 0.50, (
        f"verify-on-read overhead {delta:.1%} is far beyond the "
        f"expected low single digits"
    )
    benchmark.pedantic(read, args=("always",), rounds=3, iterations=1)


def test_fsck_scrub_throughput(benchmark, store):
    """Bytes of archive state scrubbed per second (shallow pass)."""
    scanned = archive_bytes(store)

    def scrub():
        report = fsck_archive(store)
        assert report.clean, str(report)
        return report

    result = benchmark.pedantic(scrub, rounds=3, iterations=1)
    assert result.clean
    stats_min = benchmark.stats.stats.min
    benchmark.extra_info["archive_bytes"] = scanned
    if stats_min:
        benchmark.extra_info["scrub_mb_per_s"] = round(
            scanned / stats_min / 1e6, 2
        )
