"""Ablations of the design choices the paper discusses.

* tree diff vs line diff delta sizes (Sec. 5's XML-Diff observation);
* checkpoint-interval sweep for delta repositories (Sec. 9 open issue);
* further compaction on/off (Example 4.3): weave vs full alternatives;
* chunked vs monolithic archiving (the Sec. 5 memory workaround).
"""

import tempfile

from conftest import publish

from repro.core import Archive, ArchiveOptions
from repro.data import OmimGenerator, omim_key_spec
from repro.diffbase import (
    CheckpointedDiffRepository,
    script_size,
    tree_delta_size,
)
from repro.experiments import omim_versions
from repro.storage import ChunkedArchiver
from repro.xmltree import to_pretty_string


def test_tree_diff_vs_line_diff(once, results_dir):
    """Sec. 5: XML-Diff 'incurred a significantly higher space overhead'
    than line diff on line-oriented records."""
    versions = omim_versions(6)

    def measure():
        line_total = 0
        tree_total = 0
        for old, new in zip(versions, versions[1:]):
            old_lines = to_pretty_string(old).split("\n")
            new_lines = to_pretty_string(new).split("\n")
            line_total += script_size(old_lines, new_lines)
            tree_total += tree_delta_size(old, new)
        return line_total, tree_total

    line_total, tree_total = once(measure)
    text = (
        f"total delta bytes over {len(versions) - 1} OMIM deltas:\n"
        f"  line diff (ed scripts): {line_total}\n"
        f"  tree diff (patch trees): {tree_total}\n"
        f"  tree/line ratio: {tree_total / line_total:.2f}"
    )
    publish(results_dir, "ablation_tree_vs_line.txt", text)
    assert tree_total > line_total


def test_checkpoint_interval_sweep(once, results_dir):
    """Sec. 9: space vs retrieval-work as the checkpoint interval k
    moves between full copies (k=1) and pure deltas (k=inf)."""
    versions = omim_versions(16)

    def measure():
        rows = []
        for interval in (1, 2, 4, 8, 1000):
            repo = CheckpointedDiffRepository(interval)
            for version in versions:
                repo.add_version(version)
            worst = max(
                repo.applications_for(v) for v in range(1, len(versions) + 1)
            )
            rows.append((interval, repo.total_bytes(), worst))
        return rows

    rows = once(measure)
    text = "\n".join(
        f"k={interval:>5}: {total:>9} bytes, worst-case retrieval "
        f"{worst} delta applications"
        for interval, total, worst in rows
    )
    publish(results_dir, "ablation_checkpoints.txt", text)
    sizes = [total for _, total, _ in rows]
    worsts = [worst for _, _, worst in rows]
    assert sizes == sorted(sizes, reverse=True)  # space falls with k
    assert worsts == sorted(worsts)  # retrieval work rises with k


def test_compaction_ablation(once, results_dir):
    """Example 4.3: the weave shares unchanged frontier lines.

    Two regimes:

    * multi-line frontier content with *partial* edits (here: an
      unkeyed free-text document, the paper's Sec. 2 caveat) — full
      alternatives must copy all lines per distinct value while the
      weave stores each surviving line once: weave wins big;
    * whole-value rewrites (OMIM paragraphs) — nothing to share, the
      weave's segment timestamps are pure overhead: alternatives win.
    """
    import random

    from repro.keys import empty_spec
    from repro.xmltree import Element, Text

    rng = random.Random(33)
    lines = [f"observation {i}: baseline measurement {i * 7}" for i in range(60)]
    unkeyed_versions = []
    for _ in range(10):
        document = Element("notebook")
        for line in lines:
            document.append(Element("line")).append(Text(line))
        unkeyed_versions.append(document)
        index = rng.randrange(len(lines))
        lines = lines.copy()
        lines[index] = f"observation {index}: revised {rng.randrange(10_000)}"

    from repro.data import OmimChangeRates

    rewrite_versions = OmimGenerator(
        seed=21,
        initial_records=30,
        rates=OmimChangeRates(
            delete_fraction=0.0, insert_fraction=0.01, modify_fraction=0.15
        ),
    ).generate_versions(8)

    def sizes(versions, spec):
        plain = Archive(spec)
        compact = Archive(spec, ArchiveOptions(compaction=True))
        for version in versions:
            plain.add_version(version.copy())
            compact.add_version(version.copy())
        return (
            len(plain.to_xml_string().encode("utf-8")),
            len(compact.to_xml_string().encode("utf-8")),
        )

    def measure():
        return (
            sizes(unkeyed_versions, empty_spec()),
            sizes(rewrite_versions, omim_key_spec()),
        )

    (partial_plain, partial_weave), (rewrite_plain, rewrite_weave) = once(measure)
    text = (
        f"partial edits of unkeyed free text (10 versions, 60 lines):\n"
        f"  full alternatives: {partial_plain} bytes\n"
        f"  SCCS weave:        {partial_weave} bytes "
        f"({partial_weave / partial_plain:.2f}x)\n"
        f"whole-paragraph rewrites (OMIM, 8 versions):\n"
        f"  full alternatives: {rewrite_plain} bytes\n"
        f"  SCCS weave:        {rewrite_weave} bytes "
        f"({rewrite_weave / rewrite_plain:.2f}x)"
    )
    publish(results_dir, "ablation_compaction.txt", text)
    # Partial edits: weave must win decisively (alternatives copy the
    # whole document per distinct state).
    assert partial_weave < 0.5 * partial_plain
    # Whole-value rewrites: the weave loses — nothing is shared, and the
    # line-joined text form pays timestamp segments plus newline escaping
    # (the paper: the weave's "advantage arises when values differ only
    # slightly across versions").  Bound the loss at 2x.
    assert rewrite_weave < 2.0 * rewrite_plain


def test_chunked_vs_monolithic(once, results_dir):
    """The Sec. 5 chunking workaround costs a little space (per-chunk
    skeletons) but bounds memory; results stay identical."""
    versions = omim_versions(8)
    spec = omim_key_spec()

    def measure():
        monolithic = Archive(spec)
        for version in versions:
            monolithic.add_version(version.copy())
        mono_bytes = len(monolithic.to_xml_string().encode("utf-8"))
        with tempfile.TemporaryDirectory() as directory:
            chunked = ChunkedArchiver(directory, spec, chunk_count=8)
            for version in versions:
                chunked.add_version(version.copy())
            from repro.core import documents_equivalent

            same = all(
                documents_equivalent(
                    chunked.retrieve(v), monolithic.retrieve(v), spec
                )
                for v in range(1, len(versions) + 1)
            )
            return mono_bytes, chunked.total_bytes(), same

    mono_bytes, chunk_bytes, same = once(measure)
    text = (
        f"monolithic archive: {mono_bytes} bytes\n"
        f"8-way chunked archive: {chunk_bytes} bytes "
        f"(overhead {chunk_bytes / mono_bytes:.3f}x)\n"
        f"retrievals identical: {same}"
    )
    publish(results_dir, "ablation_chunked.txt", text)
    assert same
    assert chunk_bytes < 1.25 * mono_bytes
