"""PERF-PARALLEL — multi-core scaling of the chunk data path.

The chunked backend's hot loops (batch ingest, recode, per-chunk query
evaluation) fan out to a process pool (``repro.storage.parallel``); the
claims measured here:

* **Determinism is free.**  Whatever the worker count, the produced
  archive bytes and query answers are identical to a serial run —
  every scaling round re-verifies this before its timing counts.
* **Codec work scales.**  ``recode`` is pure CPU (decode + re-encode
  per chunk); with four workers on four real cores it must beat serial
  by ≥2×.  The assertion is gated on the cores actually available —
  on a single-core runner the honest expectation is "no slower than
  serial plus pool overhead", and the measured numbers land in
  ``extra_info`` (with the core count) either way.

Timings for 1/2/4/8 workers land in each benchmark's ``extra_info``
(kept by ``summarize_bench.py``), so the committed
``BENCH_parallel.json`` records the full scaling table; the rendered
table is published to ``results/PERF_parallel.txt``.
"""

import glob
import hashlib
import os
import shutil

import pytest

from conftest import publish

from repro.data.omim import OMIM_KEY_TEXT
from repro.experiments.figures import omim_versions
from repro.query.db import open_db
from repro.storage import create_archive, open_archive
from repro.xmltree.serializer import to_string

WORKERS = [1, 2, 4, 8]
CORES = len(os.sched_getaffinity(0))

#: Minimum wall-clock per (operation, workers), filled by the scaling
#: benchmarks and rendered/asserted by the summary test at the end.
RUNS: dict = {}
#: Serial reference outputs (digests / renderings), keyed by operation.
REFERENCE: dict = {}


def digest_store(path) -> dict:
    digests = {}
    for full in sorted(glob.glob(os.path.join(path, "*"))):
        name = os.path.basename(full)
        if name == "wal.json" or not os.path.isfile(full):
            continue
        with open(full, "rb") as handle:
            digests[name] = hashlib.sha256(handle.read()).hexdigest()
    return digests


@pytest.fixture(scope="module")
def dense_store(tmp_path_factory):
    """A dense OMIM archive (~1.5k records, 12 versions) at rest under
    ``xmill`` — the CPU-heavy codec the recode/query benches decode."""
    base = tmp_path_factory.mktemp("parallel-dense")
    path = os.path.join(base, "store")
    backend = create_archive(
        path, OMIM_KEY_TEXT, kind="chunked", chunk_count=8, codec="xmill"
    )
    backend.ingest_batch(omim_versions(12, initial_records=1500))
    last = backend.last_version
    backend.close()
    return {"path": path, "last": last, "bytes": _store_bytes(path)}


def _store_bytes(path: str) -> int:
    return sum(
        os.path.getsize(full)
        for full in glob.glob(os.path.join(path, "chunk-*.xml"))
    )


@pytest.fixture(scope="module")
def ingest_versions():
    """A lighter sequence for the (much slower) ingest scaling rounds."""
    return omim_versions(8, initial_records=250)


@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_ingest_scaling(
    benchmark, workers, ingest_versions, tmp_path_factory
):
    """Batch ingest under 1/2/4/8 workers; output must match serial."""
    counter = iter(range(1_000_000))

    def setup():
        base = tmp_path_factory.mktemp(f"pingest-{workers}-{next(counter)}")
        return (os.path.join(base, "store"),), {}

    def ingest(path):
        backend = create_archive(
            path,
            OMIM_KEY_TEXT,
            kind="chunked",
            chunk_count=8,
            codec="gzip",
            workers=workers,
        )
        backend.ingest_batch(v.copy() for v in ingest_versions)
        backend.close()
        return digest_store(path)

    digests = benchmark.pedantic(ingest, setup=setup, rounds=1, iterations=1)
    REFERENCE.setdefault("ingest", digests)
    assert digests == REFERENCE["ingest"], "parallel ingest diverged from serial"
    RUNS[("ingest", workers)] = benchmark.stats.stats.min
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cpu_cores"] = CORES


@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_recode_scaling(
    benchmark, workers, dense_store, tmp_path_factory
):
    """Recode (xmill → gzip, pure codec CPU) under 1/2/4/8 workers."""
    counter = iter(range(1_000_000))

    def setup():
        base = tmp_path_factory.mktemp(f"precode-{workers}-{next(counter)}")
        path = os.path.join(base, "store")
        shutil.copytree(dense_store["path"], path)
        return (path,), {}

    def recode(path):
        backend = open_archive(path, workers=workers)
        backend.recode("gzip")
        backend.close()
        return digest_store(path)

    digests = benchmark.pedantic(recode, setup=setup, rounds=2, iterations=1)
    REFERENCE.setdefault("recode", digests)
    assert digests == REFERENCE["recode"], "parallel recode diverged from serial"
    RUNS[("recode", workers)] = benchmark.stats.stats.min
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cpu_cores"] = CORES
    benchmark.extra_info["archive_bytes"] = dense_store["bytes"]


@pytest.mark.parametrize("workers", WORKERS)
def test_parallel_query_scaling(benchmark, workers, dense_store):
    """Full record scan fanned across chunk workers; answers must
    match serial exactly, in order."""
    path, last = dense_store["path"], dense_store["last"]

    def query():
        with open_db(path, workers=workers) as db:
            result = db.at(last).select("/ROOT/Record")
            rendered = [to_string(element) for element in result]
        return rendered, result.stats

    (rendered, stats) = benchmark.pedantic(query, rounds=1, iterations=1)
    digest = hashlib.sha256("\n".join(rendered).encode("utf-8")).hexdigest()
    REFERENCE.setdefault("query", digest)
    assert digest == REFERENCE["query"], "parallel query diverged from serial"
    if workers > 1:
        assert stats.parallel_chunks > 1
        assert stats.workers_used == workers
    RUNS[("query", workers)] = benchmark.stats.stats.min
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["cpu_cores"] = CORES
    benchmark.extra_info["results"] = len(rendered)


def test_scaling_summary(results_dir):
    """Render the scaling table; on ≥4 real cores, 4-worker recode
    must beat serial by ≥2×."""
    operations = ("ingest", "recode", "query")
    assert all((op, w) in RUNS for op in operations for w in WORKERS)
    lines = [
        "PERF-PARALLEL: chunk-loop scaling "
        f"(dense OMIM workloads, {CORES} core(s) available)",
        "",
        f"{'workers':>8} " + " ".join(f"{op + ' (s)':>12}" for op in operations),
    ]
    for workers in WORKERS:
        lines.append(
            f"{workers:>8} "
            + " ".join(f"{RUNS[(op, workers)]:>12.3f}" for op in operations)
        )
    lines.append("")
    for op in operations:
        speedup = RUNS[(op, 1)] / RUNS[(op, 4)]
        lines.append(f"4-worker speedup, {op}: {speedup:.2f}x")
    lines.append(
        "(byte-identity with the serial outputs was asserted in every round)"
    )
    publish(results_dir, "PERF_parallel.txt", "\n".join(lines))
    if CORES >= 4:
        speedup = RUNS[("recode", 1)] / RUNS[("recode", 4)]
        assert speedup >= 2.0, (
            f"4-worker recode only {speedup:.2f}x faster than serial "
            f"on {CORES} cores"
        )
    else:
        # One or two cores cannot demonstrate parallel speedup; the
        # honest bar is bounded overhead: the pool must not make the
        # CPU-bound recode pathologically slower.
        overhead = RUNS[("recode", 4)] / RUNS[("recode", 1)]
        assert overhead < 2.0, (
            f"4-worker recode {overhead:.2f}x slower than serial on "
            f"{CORES} core(s) — pool overhead out of bounds"
        )
