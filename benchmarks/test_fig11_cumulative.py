"""FIG11 — Fig. 11: archive vs version vs incremental vs cumulative diffs.

(a) OMIM-like accretive data; (b) Swiss-Prot-like fast-growing data.
The headline shape: cumulative diffs grow quadratically and quickly
dwarf both the archive and the incremental repository, while the
archive tracks the incremental repository closely.
"""

from conftest import publish

from repro.experiments import figure11_omim, figure11_swissprot, render_figure


def test_fig11a_omim(once, results_dir):
    result = once(lambda: figure11_omim())
    text = render_figure(result)
    publish(results_dir, "fig11a.txt", text)
    assert result.all_claims_hold(), text


def test_fig11b_swissprot(once, results_dir):
    result = once(lambda: figure11_swissprot())
    text = render_figure(result)
    publish(results_dir, "fig11b.txt", text)
    assert result.all_claims_hold(), text
    series = result.series[0]
    # Paper Sec. 5.2: by ~version 10 the cumulative repo is already more
    # than twice the archive.
    assert series.cumulative_bytes[-1] > 2 * series.archive_bytes[-1]
