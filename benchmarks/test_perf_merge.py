"""TIME-MERGE — Sec. 4.2 analysis: Nested Merge is O(αN log N).

Benchmarks one merge of a new version into an existing archive, plus
the fingerprint variant of Sec. 4.3 (sorting by digests instead of key
values), and an ablation of further compaction.
"""

import pytest

from repro.core import Archive, ArchiveOptions, Fingerprinter
from repro.data import OmimGenerator, omim_key_spec


def _archive_and_next(options=None, records=60):
    generator = OmimGenerator(seed=4, initial_records=records)
    versions = generator.generate_versions(4)
    archive = Archive(omim_key_spec(), options)
    for version in versions[:-1]:
        archive.add_version(version)
    return archive, versions[-1]


def test_nested_merge(benchmark):
    archive, version = _archive_and_next()

    def merge():
        # Work on a throwaway copy so every round merges the same state.
        stats = Archive.from_xml_string(
            merge.text, omim_key_spec()
        ).add_version(version.copy())
        return stats

    merge.text = archive.to_xml_string()
    stats = benchmark(merge)
    assert stats.nodes_matched > 0


def test_nested_merge_with_fingerprints(benchmark):
    options = ArchiveOptions(fingerprinter=Fingerprinter(bits=64))
    archive, version = _archive_and_next(options)
    text = archive.to_xml_string()

    def merge():
        return Archive.from_xml_string(text, omim_key_spec(), options).add_version(
            version.copy()
        )

    stats = benchmark(merge)
    assert stats.nodes_matched > 0


def test_nested_merge_with_compaction(benchmark):
    options = ArchiveOptions(compaction=True)
    archive, version = _archive_and_next(options)
    text = archive.to_xml_string()

    def merge():
        return Archive.from_xml_string(text, omim_key_spec(), options).add_version(
            version.copy()
        )

    stats = benchmark(merge)
    assert stats.nodes_matched > 0


@pytest.mark.parametrize("records", [30, 120])
def test_merge_scaling(benchmark, records):
    archive, version = _archive_and_next(records=records)
    text = archive.to_xml_string()

    def merge():
        return Archive.from_xml_string(text, omim_key_spec()).add_version(
            version.copy()
        )

    benchmark(merge)
