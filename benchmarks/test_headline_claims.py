"""CLAIM-* — the paper's headline claims (Secs. 1, 5.1, 9), re-derived.

* OMIM archive never >1% over the incremental-diff repository;
* Swiss-Prot archive never >8% over it;
* xmill(archive) smaller than every compressed competitor;
* cumulative-diff storage grows quadratically;
* the OMIM yearly projection: archiving a year of versions costs a
  small constant factor over the last version, and the compressed
  archive is a fraction of the last version's size (the paper projects
  1.12x and 40%).
"""

from conftest import publish

from repro.experiments import figure12_omim, headline_claims


def test_headline_claims(once, results_dir):
    claims = once(lambda: headline_claims())
    lines = [
        f"[{'PASS' if claim.holds else 'FAIL'}] {claim.description}"
        for claim in claims
    ]
    publish(results_dir, "headline_claims.txt", "\n".join(lines))
    failed = [claim.description for claim in claims if not claim.holds]
    assert not failed, failed


def test_omim_yearly_projection(once, results_dir):
    """Sec. 1: a year's archive in ~1.12x the last version; compressed
    archive ~40% of the last version.  Our run is shorter, so the
    claim is checked directionally: archive/last-version stays a small
    constant and xmill(archive)/last-version is well under 40%."""
    result = once(lambda: figure12_omim())
    series = result.series[0]
    archive_over_last = series.final("archive_bytes") / series.final("version_bytes")
    compressed_over_last = series.final("xmill_archive_bytes") / series.final(
        "version_bytes"
    )
    text = (
        f"archive / last version          = {archive_over_last:.3f} "
        f"(paper projects 1.12 for a year)\n"
        f"xmill(archive) / last version   = {compressed_over_last:.3f} "
        f"(paper projects 0.40)"
    )
    publish(results_dir, "omim_projection.txt", text)
    assert archive_over_last < 1.15
    assert compressed_over_last < 0.40
