"""QUERY-PUSHDOWN — the facade's planned evaluation vs snapshot XPath.

The acceptance bar of the query subsystem: on a sparse workload — a
keyed query over an early, small version of a heavily accreted archive
— the planned path (key lookups through the sorted child lists, version
scoping through the timestamp trees) must visit **at most one third**
of the nodes the materialize-then-xpath baseline touches, while
returning byte-identical answers.  The baseline's node count is the
materialized snapshot itself: reconstructing it is the work the planner
exists to avoid.

Wall-clock timings for both paths are also collected so the committed
``BENCH_query.json`` summary tracks the pushdown win over time.
"""

from conftest import publish

import repro
from repro.core import Archive
from repro.data import OmimChangeRates, OmimGenerator, omim_key_spec
from repro.query.exec import node_count
from repro.xmltree import to_string
from repro.xmltree.xpath import evaluate

#: Accretive growth: version 1 is small, the archive keeps gaining
#: records, so early-version queries are sparse against the full tree.
def _accreted_archive() -> Archive:
    generator = OmimGenerator(
        seed=6,
        initial_records=6,
        rates=OmimChangeRates(
            delete_fraction=0.0, insert_fraction=0.6, modify_fraction=0.0
        ),
    )
    archive = Archive(omim_key_spec())
    for version in generator.generate_versions(12):
        archive.add_version(version)
    return archive


def _sparse_query(archive: Archive) -> str:
    """A keyed lookup for a record that already exists at version 1."""
    first = archive.retrieve(1)
    num = first.find_all("Record")[0].find("Num").text_content()
    return f"/ROOT/Record[Num='{num}']/Text/text()"


def _materialize_then_xpath(archive: Archive, version: int, expression: str):
    snapshot = archive.retrieve(version)
    return evaluate(snapshot, expression).items, node_count(snapshot)


def test_planned_query_beats_materialize(once, results_dir):
    archive = _accreted_archive()
    db = repro.open(archive)
    expression = _sparse_query(archive)

    def measure():
        rows = []
        for version in (1, archive.last_version):
            expected, baseline_nodes = _materialize_then_xpath(
                archive, version, expression
            )
            result = db.at(version).select(expression)
            got = result.all()
            assert [str(item) for item in got] == [str(item) for item in expected]
            rows.append(
                (version, result.stats.nodes_visited(), baseline_nodes,
                 result.stats.index_lookups, result.stats.fallback)
            )
        return rows

    rows = once(measure)
    text = "\n".join(
        f"version {version}: planned visits {planned}, "
        f"materialize-then-xpath {baseline} "
        f"({lookups} index lookups, fallback={fallback})"
        for version, planned, baseline, lookups, fallback in rows
    )
    publish(results_dir, "query_pushdown.txt", text)
    for version, planned, baseline, lookups, fallback in rows:
        assert not fallback
        assert lookups >= 1
        # The headline acceptance bar: ≤ 1/3 of the baseline's nodes,
        # at the sparse early version AND at the accreted latest one.
        assert planned * 3 <= baseline, (version, planned, baseline)


def test_planned_element_results_byte_identical(once):
    """Element (non-text) results must serialize identically."""
    archive = _accreted_archive()
    db = repro.open(archive)
    first = archive.retrieve(1)
    num = first.find_all("Record")[0].find("Num").text_content()
    expression = f"/ROOT/Record[Num='{num}']"

    def measure():
        for version in (1, archive.last_version):
            snapshot = archive.retrieve(version)
            expected = evaluate(snapshot, expression).elements
            got = db.at(version).select(expression).all()
            assert [to_string(e) for e in got] == [to_string(e) for e in expected]
        return True

    assert once(measure)


def test_query_planned(benchmark):
    archive = _accreted_archive()
    db = repro.open(archive)
    expression = _sparse_query(archive)
    db.at(1).select(expression).all()  # warm the lazy timestamp trees
    result = benchmark(lambda: db.at(1).select(expression).all())
    assert result


def test_query_materialize_then_xpath(benchmark):
    archive = _accreted_archive()
    expression = _sparse_query(archive)
    archive.retrieve(1)  # warm the lazy timestamp trees

    def baseline():
        snapshot = archive.retrieve(1)
        return evaluate(snapshot, expression).items

    assert benchmark(baseline)


def test_query_planned_persistent(benchmark, tmp_path):
    """The pushdown survives the storage layer (chunked backend)."""
    generator = OmimGenerator(
        seed=6,
        initial_records=6,
        rates=OmimChangeRates(
            delete_fraction=0.0, insert_fraction=0.6, modify_fraction=0.0
        ),
    )
    from repro.storage import create_archive
    from repro.data.omim import OMIM_KEY_TEXT

    store = create_archive(
        str(tmp_path / "omim"), OMIM_KEY_TEXT, kind="chunked", chunk_count=4
    )
    store.ingest_batch(generator.generate_versions(12))
    db = store.db()
    expression = _sparse_query_for_backend(store)
    result = benchmark(lambda: db.at(1).select(expression).all())
    assert result
    store.close()


def _sparse_query_for_backend(store) -> str:
    first = store.retrieve(1)
    num = first.find_all("Record")[0].find("Num").text_content()
    return f"/ROOT/Record[Num='{num}']/Text/text()"
