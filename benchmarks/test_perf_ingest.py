"""TIME-INGEST — batched multi-version ingestion with fingerprint
skip-merge.

The paper's headline workload archives long sequences of versions with
tiny deltas (OMIM: ~0.2% insertions per version).  A loop over
``add_version`` re-walks the full archive per version, so its merge
visits grow with archive size; ``add_versions`` carries subtree
fingerprints across the batch and skips descent into unchanged keyed
subtrees, so its visits track the delta.  The acceptance test asserts
both the skip counters and the canonical identity of every retrieved
version between the two paths.
"""

import pytest

from repro.core import (
    Archive,
    ArchiveOptions,
    Fingerprinter,
    MergeStats,
    documents_equivalent,
    normalize_document,
)
from repro.data import OmimGenerator, omim_key_spec

VERSIONS = 50
RECORDS = 30


@pytest.fixture(scope="module")
def sequence():
    return OmimGenerator(seed=42, initial_records=RECORDS).generate_versions(VERSIONS)


def test_batch_ingest_visits_fewer_merge_nodes(sequence):
    """The acceptance criterion: over a 50-version synthetic sequence,
    ``add_versions`` performs measurably fewer merge-node visits than
    50× ``add_version`` — while retrieval stays canonically identical
    for every version in both paths."""
    spec = omim_key_spec()

    sequential = Archive(spec)
    sequential_total = MergeStats()
    for version in sequence:
        sequential_total.accumulate(sequential.add_version(version.copy()))

    batched = Archive(spec)
    batched_total = batched.add_versions(version.copy() for version in sequence)

    # The skip counters prove the memo actually fired...
    assert batched_total.subtrees_skipped > 0
    assert batched_total.nodes_skipped > 0
    assert batched_total.versions == VERSIONS
    # ...and the visit counts prove it saved real merge work: the batch
    # path must do under half the visits (in practice it is ~20x fewer).
    assert batched_total.nodes_visited() * 2 < sequential_total.nodes_visited()
    # Skips account for the visits the sequential path performed.
    assert (
        batched_total.nodes_visited() + batched_total.nodes_skipped
        == sequential_total.nodes_visited()
    )

    # Both paths store the same archive, and every version reconstructs.
    assert batched.to_xml_string() == sequential.to_xml_string()
    for number, original in enumerate(sequence, start=1):
        assert normalize_document(
            batched.retrieve(number), spec
        ) == normalize_document(sequential.retrieve(number), spec)
        assert documents_equivalent(batched.retrieve(number), original, spec)


def test_batch_ingest_skips_under_fingerprint_sorting(sequence):
    """Skip-merge composes with the Sec. 4.3 sorting fingerprinter."""
    spec = omim_key_spec()
    options = ArchiveOptions(fingerprinter=Fingerprinter(bits=64))
    batched = Archive(spec, options)
    total = batched.add_versions(version.copy() for version in sequence[:10])
    assert total.subtrees_skipped > 0
    assert documents_equivalent(batched.retrieve(10), sequence[9], spec)


def test_batch_ingest_frontier_skips_under_compaction(sequence):
    """Under further compaction, weave segments carry explicit
    timestamps, so whole-subtree skips give way to frontier digest hits
    (content serialization and diff alignment avoided)."""
    spec = omim_key_spec()
    options = ArchiveOptions(compaction=True)
    batched = Archive(spec, options)
    total = batched.add_versions(version.copy() for version in sequence[:10])
    assert total.frontier_skips > 0
    assert documents_equivalent(batched.retrieve(10), sequence[9], spec)


def test_batch_ingest_throughput(benchmark, sequence):
    """Wall-clock of the batched pipeline over the 50-version sequence."""
    spec = omim_key_spec()

    def ingest():
        archive = Archive(spec)
        return archive.add_versions(version.copy() for version in sequence)

    total = benchmark.pedantic(ingest, rounds=1, iterations=1)
    assert total.versions == VERSIONS
