"""FIG13 — Fig. 13: XMark under random change ratios 1.66% and 10%.

Shape claims: the raw archive tracks the incremental-diff repository
(diffs win marginally at low ratios; the archive catches up at higher
ratios because re-modified values are stored once under keys), and
xmill(archive) wins the compressed comparison at both ratios.
"""

from conftest import publish

from repro.experiments import figure13_xmark, render_figure


def test_fig13a_xmark_1_66(once, results_dir):
    result = once(lambda: figure13_xmark(1.66))
    text = render_figure(result)
    publish(results_dir, "fig13a.txt", text)
    assert result.all_claims_hold(), text


def test_fig13b_xmark_10(once, results_dir):
    result = once(lambda: figure13_xmark(10.0))
    text = render_figure(result)
    publish(results_dir, "fig13b.txt", text)
    assert result.all_claims_hold(), text
