"""PERF-COMPRESSION — compressed-at-rest storage vs independently
compressed snapshots (the Fig. 12 workloads at storage grade).

The paper's Sec. 5.4 claim, finally falsifiable on the real store: an
archive kept at rest under the ``xmill`` codec must be measurably
smaller than gzipping every snapshot independently, because XMill
groups like content *across versions* where per-snapshot gzip restarts
from nothing each time.  Correctness rides along — every benchmark
round retrieves versions back and compares them against the inputs, so
a codec cannot win by dropping bytes.

Sizes land in each benchmark's ``extra_info`` (kept by
``summarize_bench.py``), so the committed ``BENCH_compression.json``
records the measured compression ratios alongside the timings.
"""

import os

import pytest

from conftest import publish

from repro.compress import gzip_compress
from repro.core import Archive
from repro.data.omim import omim_key_spec
from repro.data.swissprot import swissprot_key_spec
from repro.experiments.figures import omim_versions, swissprot_versions
from repro.storage import FileBackend
from repro.xmltree import to_pretty_string

CODECS = ["raw", "gzip", "xmill"]


@pytest.fixture(scope="module")
def workloads():
    """The two Fig. 12 version sequences, their snapshot texts and the
    reference (in-memory) retrievals every codec must reproduce."""
    loads = {}
    for name, versions, spec in (
        ("swissprot", swissprot_versions(10), swissprot_key_spec()),
        ("omim", omim_versions(16), omim_key_spec()),
    ):
        reference = Archive(spec)
        for version in versions:
            reference.add_version(version.copy())
        loads[name] = {
            "versions": versions,
            "spec": spec,
            "snapshots": [to_pretty_string(v) for v in versions],
            "retrievals": [
                to_pretty_string(reference.retrieve(n))
                for n in range(1, len(versions) + 1)
            ],
        }
    return loads


def _build(base, codec, load):
    backend = FileBackend(
        os.path.join(base, f"archive-{codec}.xml"), load["spec"], codec=codec
    )
    backend.ingest_batch(v.copy() for v in load["versions"])
    return backend


@pytest.mark.parametrize("codec", CODECS)
def test_codec_ingest_throughput(
    benchmark, codec, workloads, tmp_path_factory
):
    """Wall-clock of batch-ingesting Swiss-Prot under each codec."""
    load = workloads["swissprot"]
    counter = iter(range(1_000_000))

    def setup():
        base = tmp_path_factory.mktemp(f"ingest-{codec}-{next(counter)}")
        return (str(base),), {}

    def ingest(base):
        backend = _build(base, codec, load)
        assert backend.last_version == len(load["versions"])
        return backend

    backend = benchmark.pedantic(ingest, setup=setup, rounds=3, iterations=1)
    stats = backend.stats()
    benchmark.extra_info["raw_bytes"] = stats.raw_bytes
    benchmark.extra_info["disk_bytes"] = stats.disk_bytes
    benchmark.extra_info["compression_ratio"] = round(
        stats.compression_ratio, 3
    )


@pytest.mark.parametrize("codec", CODECS)
def test_codec_retrieve_throughput(
    benchmark, codec, workloads, tmp_path_factory
):
    """Wall-clock of retrieving every version back, decode included."""
    load = workloads["swissprot"]
    base = tmp_path_factory.mktemp(f"retrieve-{codec}")
    _build(str(base), codec, load).close()
    expected = load["retrievals"]

    def read_everything():
        backend = FileBackend(
            str(base / f"archive-{codec}.xml"), load["spec"], codec=codec
        )
        for number, snapshot in enumerate(expected, start=1):
            assert to_pretty_string(backend.retrieve(number)) == snapshot
        backend.close()

    benchmark.pedantic(read_everything, rounds=3, iterations=1)


def test_archive_under_codec_beats_gzipped_snapshots(
    once, results_dir, workloads, tmp_path_factory
):
    """The acceptance gate: xmill(archive at rest) < sum of gzip(Vi)."""

    def measure():
        rows = {}
        for name, load in workloads.items():
            base = tmp_path_factory.mktemp(f"accept-{name}")
            sizes = {}
            for codec in CODECS:
                backend = _build(str(base), codec, load)
                sizes[codec] = backend.stats().disk_bytes
            rows[name] = {
                "snapshots_raw": sum(
                    len(t.encode("utf-8")) for t in load["snapshots"]
                ),
                "snapshots_gzip": sum(
                    len(gzip_compress(t.encode("utf-8")))
                    for t in load["snapshots"]
                ),
                "archive": sizes,
            }
        return rows

    rows = once(measure)
    lines = [
        "Compressed-at-rest storage vs independently-gzipped snapshots",
        "(Fig. 12 workloads; bytes on disk, FileBackend)",
        "",
        f"{'workload':<12}{'snaps raw':>12}{'snaps gzip':>12}"
        f"{'arch raw':>12}{'arch gzip':>12}{'arch xmill':>12}",
    ]
    for name, row in rows.items():
        lines.append(
            f"{name:<12}{row['snapshots_raw']:>12}{row['snapshots_gzip']:>12}"
            f"{row['archive']['raw']:>12}{row['archive']['gzip']:>12}"
            f"{row['archive']['xmill']:>12}"
        )
        gzipped_snapshots = row["snapshots_gzip"]
        xmill_archive = row["archive"]["xmill"]
        lines.append(
            f"{'':<12}xmill(archive) = "
            f"{xmill_archive / gzipped_snapshots:.2f}x of gzip(snapshots)"
        )
        # Sec. 5.4 at the storage layer: the merged, XMill-coded archive
        # beats compressing every snapshot independently — measurably
        # (at most 60% of the gzipped-snapshot bytes), not marginally.
        assert xmill_archive < 0.6 * gzipped_snapshots, (name, row)
        # Cross-version grouping also beats whole-archive gzip.
        assert xmill_archive < row["archive"]["gzip"], (name, row)
        # And any compressing codec beats plain text at rest.
        assert row["archive"]["gzip"] < row["archive"]["raw"], (name, row)
    publish(results_dir, "perf_compression.txt", "\n".join(lines))
