"""FIG12 — Fig. 12: storage with compression (OMIM and Swiss-Prot).

Paper claims reproduced: the archive stays within 1% (OMIM) / 8%
(Swiss-Prot) of the incremental-diff repository uncompressed, and
xmill(archive) beats gzip(inc diffs), gzip(cumu diffs) and
xmill(V1+...+Vi) throughout.

The xmill sizes are *storage-grade*: the harness measures the same
length-framed container bytes the codec layer
(:mod:`repro.storage.codec`) keeps archives at rest with — framing and
container-path overhead included — so the figure's claims hold for what
the store actually writes, not an idealized section sum.  The
archive-under-codec vs independently-gzipped-snapshot comparison on the
real backends lives in ``benchmarks/test_perf_compression.py``.
"""

from conftest import publish

from repro.experiments import figure12_omim, figure12_swissprot, render_figure


def test_fig12a_omim(once, results_dir):
    result = once(lambda: figure12_omim())
    text = render_figure(result)
    publish(results_dir, "fig12a.txt", text)
    assert result.all_claims_hold(), text


def test_fig12b_swissprot(once, results_dir):
    result = once(lambda: figure12_swissprot())
    text = render_figure(result)
    publish(results_dir, "fig12b.txt", text)
    assert result.all_claims_hold(), text
    series = result.series[0]
    # The compression reversal (Sec. 5.4): even where the raw archive is
    # not smaller than the diff repo, the compressed archive wins.
    assert series.final("xmill_archive_bytes") < series.final(
        "gzip_incremental_bytes"
    )
