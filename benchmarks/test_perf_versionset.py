"""TIME-VSET — VersionSet algebra must scale linearly in interval count.

PR 1 exposed the quadratic shapes: per-element ``add`` rebuilds during
bulk construction and the version-at-a-time ``difference`` loop.  PR 2
replaced them with single-pass merges; this bench pins the behaviour —
a 4× bigger input may cost at most ~4× (with generous slack for timer
noise), which a quadratic implementation (16×) cannot satisfy, and the
10k-interval operations must complete in interactive time.
"""

import time

from conftest import publish

from repro.core import VersionSet

#: Slack multiplier over perfect linear scaling; a quadratic
#: implementation lands at the scale factor itself (16 at 4×), far
#: beyond this bound even on a noisy machine.
LINEAR_SLACK = 3.0
SCALE = 4


def _interlocked(n, offset=0):
    """n disjoint two-wide intervals; ``offset`` shifts them so two such
    sets overlap partially — the worst case for the sweep merges."""
    return [(i * 4 + 1 + offset, i * 4 + 2 + offset) for i in range(n)]


def _best_of(func, rounds=5):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _measure(n):
    a_pairs = _interlocked(n)
    b_pairs = _interlocked(n, offset=1)
    a = VersionSet.from_intervals(a_pairs)
    b = VersionSet.from_intervals(b_pairs)
    return {
        "bulk_construct": _best_of(lambda: VersionSet.from_intervals(a_pairs)),
        "bulk_members": _best_of(lambda: VersionSet(range(1, n + 1))),
        "difference": _best_of(lambda: a.difference(b)),
        "union": _best_of(lambda: a.union(b)),
        "intersection": _best_of(lambda: a.intersection(b)),
    }


def test_linear_scaling(once, results_dir):
    small_n, big_n = 2500, 2500 * SCALE  # big_n = 10_000 intervals

    def measure():
        return _measure(small_n), _measure(big_n)

    small, big = once(measure)
    lines = [
        f"{op}: {small[op] * 1e3:.3f} ms @ {small_n} intervals, "
        f"{big[op] * 1e3:.3f} ms @ {big_n} intervals "
        f"(x{big[op] / small[op]:.1f} for x{SCALE} input)"
        for op in small
    ]
    publish(results_dir, "versionset_scaling.txt", "\n".join(lines))
    for op in small:
        ratio = big[op] / small[op]
        assert ratio <= SCALE * LINEAR_SLACK, (
            f"{op} scaled x{ratio:.1f} for a x{SCALE} input — "
            f"super-linear blowup"
        )
        # Absolute sanity: 10k-interval ops stay interactive.
        assert big[op] < 0.5, f"{op} took {big[op]:.3f}s at {big_n} intervals"


def test_correctness_at_scale(once):
    """The linear paths agree with set semantics at 10k intervals."""

    def check():
        n = 10_000
        a = VersionSet.from_intervals(_interlocked(n))
        b = VersionSet.from_intervals(_interlocked(n, offset=1))
        sa, sb = set(a), set(b)
        assert set(a.difference(b)) == sa - sb
        assert set(a.union(b)) == sa | sb
        assert set(a.intersection(b)) == sa & sb
        assert len(a) == len(sa)
        return True

    assert once(check)


def test_bulk_construction(benchmark):
    pairs = _interlocked(10_000)
    result = benchmark(lambda: VersionSet.from_intervals(pairs))
    assert result.interval_count() == 10_000


def test_difference_10k_intervals(benchmark):
    a = VersionSet.from_intervals(_interlocked(10_000))
    b = VersionSet.from_intervals(_interlocked(10_000, offset=1))
    result = benchmark(lambda: a.difference(b))
    assert result.interval_count() == 10_000
