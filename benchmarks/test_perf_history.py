"""TIME-HIST — Sec. 7.2: temporal history, scan vs key index O(l log d)."""

from conftest import publish

from repro.core import Archive
from repro.data import OmimGenerator, omim_key_spec
from repro.indexes import KeyIndex


def _archive_and_target(records=150):
    generator = OmimGenerator(seed=8, initial_records=records)
    versions = generator.generate_versions(3)
    archive = Archive(omim_key_spec(), None)
    for version in versions:
        archive.add_version(version)
    # Pick a record in the middle of the key order.
    nums = sorted(
        record.find("Num").text_content()
        for record in versions[-1].find_all("Record")
    )
    target = f"/ROOT/Record[Num={nums[len(nums) // 2]}]"
    return archive, target


def test_history_via_archive_walk(benchmark):
    archive, target = _archive_and_target()
    history = benchmark(lambda: archive.history(target))
    assert history.existence


def test_history_via_key_index(benchmark):
    archive, target = _archive_and_target()
    index = KeyIndex(archive)
    result = benchmark(lambda: index.history(target))
    assert result[0]


def test_comparison_counts_logarithmic(once, results_dir):
    archive, target = _archive_and_target(records=200)
    index = KeyIndex(archive)

    def measure():
        _, comparisons = index.history(target)
        degree = len(archive.root.children[0].children)
        return comparisons, degree

    comparisons, degree = once(measure)
    text = (
        f"degree d = {degree}, path length l = 2, "
        f"binary-search comparisons = {comparisons} "
        f"(naive scan would touch ~{degree} labels)"
    )
    publish(results_dir, "history_comparisons.txt", text)
    assert comparisons < degree / 4
