"""Shared fixtures for the benchmark suite.

Figure benches run each experiment exactly once (``once``), print the
same rows/series the paper's figure plots, and persist the rendering
under ``benchmarks/results/`` so EXPERIMENTS.md can reference it.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return runner


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a figure rendering and persist it for EXPERIMENTS.md."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
