"""TIME-RETR — Sec. 7.1: version retrieval, plain scan vs timestamp trees.

The probe-count claim: for a sparse early version in a heavily accreted
archive, the archive-integrated timestamp trees probe far fewer nodes
than the scan — the acceptance bar is ≤ 1/3 of the naive count, with
byte-identical reconstructions; for a dense recent version (α > k/8)
the two stay within a constant factor (the paper's 2k fallback bound).
"""

from conftest import publish

from repro.core import Archive, ProbeCount
from repro.data import OmimChangeRates, OmimGenerator, omim_key_spec
from repro.xmltree.serializer import to_string


def _accreted_archive():
    generator = OmimGenerator(
        seed=6,
        initial_records=6,
        rates=OmimChangeRates(
            delete_fraction=0.0, insert_fraction=0.6, modify_fraction=0.0
        ),
    )
    archive = Archive(omim_key_spec())
    for version in generator.generate_versions(12):
        archive.add_version(version)
    return archive


def test_plain_scan_retrieval(benchmark):
    archive = _accreted_archive()
    result = benchmark(lambda: archive.retrieve(1, guided=False))
    assert result is not None


def test_timestamp_tree_retrieval(benchmark):
    archive = _accreted_archive()
    archive.retrieve(1)  # build the lazy trees outside the timed region
    result = benchmark(lambda: archive.retrieve(1))
    assert result is not None


def test_timestamp_tree_retrieval_cold(benchmark):
    """First-retrieve cost: lazy tree construction included."""

    def cold():
        archive = _accreted_archive()
        return archive.retrieve(1)

    assert benchmark.pedantic(cold, rounds=3, iterations=1) is not None


def test_probe_counts(once, results_dir):
    archive = _accreted_archive()

    def measure():
        rows = []
        for version in (1, archive.last_version):
            probes = ProbeCount()
            guided = archive.retrieve(version, probes=probes)
            scan = archive.retrieve(version, guided=False)
            assert guided is not None and scan is not None
            # The fast path must reconstruct the identical document.
            assert to_string(guided) == to_string(scan)
            rows.append(
                (version, probes.total(), archive.scan_probe_count(version))
            )
        return rows

    rows = once(measure)
    text = "\n".join(
        f"version {version}: timestamp-tree probes {tree}, naive scan {naive}"
        for version, tree, naive in rows
    )
    publish(results_dir, "retrieval_probes.txt", text)
    sparse_version, sparse_tree, sparse_naive = rows[0]
    dense_version, dense_tree, dense_naive = rows[1]
    # Sparse early version: the integrated trees must probe at most a
    # third of what the scan checks (acceptance bar of PR 2).
    assert sparse_tree * 3 <= sparse_naive
    # Dense latest version: at worst a small constant factor over naive
    # (the paper's 2k fallback bound).
    assert dense_tree <= 3 * dense_naive
