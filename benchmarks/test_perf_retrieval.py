"""TIME-RETR — Sec. 7.1: version retrieval, plain scan vs timestamp trees.

The probe-count claim: for a sparse early version in a heavily accreted
archive, the archive-integrated timestamp trees probe far fewer nodes
than the scan — the acceptance bar is ≤ 1/3 of the naive count, with
byte-identical reconstructions; for a dense recent version (α > k/8)
the two stay within a constant factor (the paper's 2k fallback bound).

The repeat-read bench covers the hot read path end to end through the
storage layer: a cold read pays the chunk decode, a warm read serves
the decoded tree from the process-wide chunk cache.  Cold/warm p50 and
p99 plus the hit ratio land in ``extra_info`` so committed
``BENCH_retrieval.json`` baselines track the cache's effect; the
acceptance bar is a ≥ 5× warm-over-cold p99 improvement.
"""

import gc
import os
import time

from conftest import publish

from repro.core import Archive, ProbeCount
from repro.data import OmimChangeRates, OmimGenerator, omim_key_spec
from repro.data.omim import OMIM_KEY_TEXT
from repro.storage import create_archive, open_archive
from repro.storage.cache import reset_chunk_cache
from repro.xmltree.serializer import to_string


def _accreted_archive():
    generator = OmimGenerator(
        seed=6,
        initial_records=6,
        rates=OmimChangeRates(
            delete_fraction=0.0, insert_fraction=0.6, modify_fraction=0.0
        ),
    )
    archive = Archive(omim_key_spec())
    for version in generator.generate_versions(12):
        archive.add_version(version)
    return archive


def test_plain_scan_retrieval(benchmark):
    archive = _accreted_archive()
    result = benchmark(lambda: archive.retrieve(1, guided=False))
    assert result is not None


def test_timestamp_tree_retrieval(benchmark):
    archive = _accreted_archive()
    archive.retrieve(1)  # build the lazy trees outside the timed region
    result = benchmark(lambda: archive.retrieve(1))
    assert result is not None


def test_timestamp_tree_retrieval_cold(benchmark):
    """First-retrieve cost: lazy tree construction included."""

    def cold():
        archive = _accreted_archive()
        return archive.retrieve(1)

    assert benchmark.pedantic(cold, rounds=3, iterations=1) is not None


def _percentile(samples, quantile):
    ranked = sorted(samples)
    return ranked[int(quantile * (len(ranked) - 1))]


def test_repeat_read_cache(benchmark, tmp_path, results_dir):
    """Cold (decode) vs warm (cached) repeat-read latency distributions."""
    path = os.path.join(str(tmp_path), "store")
    generator = OmimGenerator(
        seed=6,
        initial_records=40,
        rates=OmimChangeRates(
            delete_fraction=0.05, insert_fraction=0.3, modify_fraction=0.3
        ),
    )
    writer = create_archive(
        path, OMIM_KEY_TEXT, kind="chunked", chunk_count=4, codec="xbin"
    )
    writer.ingest_batch(list(generator.generate_versions(10)))
    writer.close()

    handle = open_archive(path, cache_reads=True)

    def timed_read():
        start = time.perf_counter()
        assert handle.retrieve(1) is not None
        return time.perf_counter() - start

    # Collector pauses would dominate the warm tail (a gen-2 pass walks
    # every cached tree), so sample latencies the way pytest-benchmark's
    # own --benchmark-disable-gc mode does.
    gc.collect()
    gc.disable()
    try:
        cold = []
        for _ in range(20):
            reset_chunk_cache()  # every cold sample re-decodes each chunk
            cold.append(timed_read())
        reset_chunk_cache()
        timed_read()  # populate once; the timed warm reads all hit
        gc.collect()
        handle.cache_hits = handle.cache_misses = 0
        warm = [timed_read() for _ in range(100)]
        hits, misses = handle.cache_hits, handle.cache_misses
    finally:
        gc.enable()
    handle.close()
    reset_chunk_cache()

    cold_p50, cold_p99 = _percentile(cold, 0.5), _percentile(cold, 0.99)
    warm_p50, warm_p99 = _percentile(warm, 0.5), _percentile(warm, 0.99)
    benchmark.extra_info["cold_p50_s"] = round(cold_p50, 6)
    benchmark.extra_info["cold_p99_s"] = round(cold_p99, 6)
    benchmark.extra_info["warm_p50_s"] = round(warm_p50, 6)
    benchmark.extra_info["warm_p99_s"] = round(warm_p99, 6)
    benchmark.extra_info["p50_speedup"] = round(cold_p50 / warm_p50, 2)
    benchmark.extra_info["p99_speedup"] = round(cold_p99 / warm_p99, 2)
    benchmark.extra_info["hit_ratio"] = round(hits / (hits + misses), 4)
    publish(
        results_dir,
        "retrieval_repeat_read.txt",
        "\n".join(
            [
                f"cold p50 {cold_p50 * 1e3:.2f} ms, p99 {cold_p99 * 1e3:.2f} ms",
                f"warm p50 {warm_p50 * 1e3:.2f} ms, p99 {warm_p99 * 1e3:.2f} ms",
                f"speedup p50 {cold_p50 / warm_p50:.1f}x, "
                f"p99 {cold_p99 / warm_p99:.1f}x",
                f"warm hit ratio {hits}/{hits + misses}",
            ]
        ),
    )
    # The timed region for the committed baseline: one warm read.
    benchmark.pedantic(timed_warm_read_factory(path), rounds=5, iterations=1)
    # Acceptance bar: warm repeat reads are at least 5x faster at p99.
    assert cold_p99 >= 5 * warm_p99, (
        f"repeat-read p99 improved only {cold_p99 / warm_p99:.1f}x"
    )
    assert misses == 0 and hits > 0


def timed_warm_read_factory(path):
    """A self-contained warm-read callable for the benchmark timer."""
    handle = open_archive(path, cache_reads=True)
    handle.retrieve(1)  # warm the cache outside the timed region

    def warm_read():
        assert handle.retrieve(1) is not None

    return warm_read


def test_probe_counts(once, results_dir):
    archive = _accreted_archive()

    def measure():
        rows = []
        for version in (1, archive.last_version):
            probes = ProbeCount()
            guided = archive.retrieve(version, probes=probes)
            scan = archive.retrieve(version, guided=False)
            assert guided is not None and scan is not None
            # The fast path must reconstruct the identical document.
            assert to_string(guided) == to_string(scan)
            rows.append(
                (version, probes.total(), archive.scan_probe_count(version))
            )
        return rows

    rows = once(measure)
    text = "\n".join(
        f"version {version}: timestamp-tree probes {tree}, naive scan {naive}"
        for version, tree, naive in rows
    )
    publish(results_dir, "retrieval_probes.txt", text)
    sparse_version, sparse_tree, sparse_naive = rows[0]
    dense_version, dense_tree, dense_naive = rows[1]
    # Sparse early version: the integrated trees must probe at most a
    # third of what the scan checks (acceptance bar of PR 2).
    assert sparse_tree * 3 <= sparse_naive
    # Dense latest version: at worst a small constant factor over naive
    # (the paper's 2k fallback bound).
    assert dense_tree <= 3 * dense_naive
