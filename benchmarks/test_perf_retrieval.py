"""TIME-RETR — Sec. 7.1: version retrieval, plain scan vs timestamp trees.

The probe-count claim: for a sparse early version in a heavily accreted
archive, the timestamp trees probe far fewer nodes than the scan; for a
dense recent version (α > k/8) the two are within a constant factor.
"""

from conftest import publish

from repro.core import Archive
from repro.data import OmimChangeRates, OmimGenerator, omim_key_spec
from repro.indexes import TimestampTreeIndex


def _accreted_archive():
    generator = OmimGenerator(
        seed=6,
        initial_records=6,
        rates=OmimChangeRates(
            delete_fraction=0.0, insert_fraction=0.6, modify_fraction=0.0
        ),
    )
    archive = Archive(omim_key_spec())
    for version in generator.generate_versions(9):
        archive.add_version(version)
    return archive


def test_plain_scan_retrieval(benchmark):
    archive = _accreted_archive()
    result = benchmark(lambda: archive.retrieve(1))
    assert result is not None


def test_timestamp_tree_retrieval(benchmark):
    archive = _accreted_archive()
    index = TimestampTreeIndex(archive)
    result, _ = benchmark(lambda: index.retrieve(1))
    assert result is not None


def test_probe_counts(once, results_dir):
    archive = _accreted_archive()
    index = TimestampTreeIndex(archive)

    def measure():
        rows = []
        for version in (1, archive.last_version):
            _, probes = index.retrieve(version)
            rows.append((version, probes.total(), index.naive_probe_count(version)))
        return rows

    rows = once(measure)
    text = "\n".join(
        f"version {version}: timestamp-tree probes {tree}, naive scan {naive}"
        for version, tree, naive in rows
    )
    publish(results_dir, "retrieval_probes.txt", text)
    sparse_version, sparse_tree, sparse_naive = rows[0]
    dense_version, dense_tree, dense_naive = rows[1]
    # Sparse early version: trees must save probes.
    assert sparse_tree < sparse_naive
    # Dense latest version: at worst a small constant factor over naive
    # (the paper's 2k fallback bound).
    assert dense_tree <= 3 * dense_naive
