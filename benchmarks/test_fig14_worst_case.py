"""FIG14 — Fig. 14: the worst case for key-based archiving.

Key values of n% of XMark elements mutate each version: a line diff
sees a one-line change, the archiver must store a whole near-duplicate
element.  Shape claims: the raw archive grows much faster than the diff
repository (its defining failure mode), the diff repository stays near
one version's size, and xmill(archive) remains competitive until the
archive is ~1.2x the repository (the paper's crossover observation).
"""

from conftest import publish

from repro.experiments import figure14_worstcase, render_figure


def test_fig14a_worst_case_1_66(once, results_dir):
    result = once(lambda: figure14_worstcase(1.66))
    text = render_figure(result)
    publish(results_dir, "fig14a.txt", text)
    assert result.all_claims_hold(), text


def test_fig14b_worst_case_10(once, results_dir):
    result = once(lambda: figure14_worstcase(10.0))
    text = render_figure(result)
    publish(results_dir, "fig14b.txt", text)
    assert result.all_claims_hold(), text
    series = result.series[0]
    # The defining shape: archive growth dwarfs diff-repo growth.
    archive_growth = series.archive_bytes[-1] - series.archive_bytes[0]
    repo_growth = series.incremental_bytes[-1] - series.incremental_bytes[0]
    assert archive_growth > 5 * repo_growth
