"""Trim a pytest-benchmark ``--benchmark-json`` dump to a committable
summary.

The raw dump embeds machine info, commit metadata and every sampled
round — noisy and environment-bound.  The summary keeps what a perf
trajectory needs: per-test min/mean/stddev (seconds), round counts and
ops/sec, so successive CI runs (and the committed ``BENCH_*.json``
baselines under ``benchmarks/results/``) can be diffed for regressions.

Usage::

    python -m pytest benchmarks/test_perf_retrieval.py \
        --benchmark-json=/tmp/raw.json
    python benchmarks/summarize_bench.py /tmp/raw.json \
        benchmarks/results/BENCH_retrieval.json
"""

from __future__ import annotations

import json
import sys


def summarize(raw: dict) -> dict:
    benchmarks = []
    for entry in raw.get("benchmarks", []):
        stats = entry.get("stats", {})
        summary = {
            "name": entry.get("name"),
            "group": entry.get("group"),
            "min_s": stats.get("min"),
            "mean_s": stats.get("mean"),
            "stddev_s": stats.get("stddev"),
            "rounds": stats.get("rounds"),
            "ops": stats.get("ops"),
        }
        # Size/ratio measurements benchmarks attach (e.g. the
        # compression suite's disk_bytes) are part of the trajectory.
        if entry.get("extra_info"):
            summary["extra_info"] = entry["extra_info"]
        benchmarks.append(summary)
    benchmarks.sort(key=lambda item: item["name"] or "")
    return {
        "python": raw.get("machine_info", {}).get("python_version"),
        "benchmarks": benchmarks,
    }


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(
            "usage: summarize_bench.py <raw-benchmark.json> <summary.json>",
            file=sys.stderr,
        )
        return 2
    with open(argv[1], "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    summary = summarize(raw)
    with open(argv[2], "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(summary['benchmarks'])} benchmark summaries to {argv[2]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
