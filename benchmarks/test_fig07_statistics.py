"""FIG7 — Fig. 7: dataset statistics (size, node count N, height h)."""

from conftest import publish

from repro.experiments import figure7_statistics, render_statistics


def test_fig07_dataset_statistics(once, results_dir):
    rows = once(lambda: figure7_statistics())
    text = render_statistics(rows)
    publish(results_dir, "fig07.txt", text)
    by_name = {row.name: row for row in rows}
    # Shape of the paper's table: Swiss-Prot is the largest dataset by
    # far; all heights are small constants (5, 6, 12 in the paper).
    assert by_name["Swiss-Prot"].size_bytes > by_name["OMIM"].size_bytes * 0.5
    assert by_name["OMIM"].height == 5
    assert 4 <= by_name["Swiss-Prot"].height <= 7
    assert 4 <= by_name["XMark"].height <= 13
    for row in rows:
        assert row.node_count > 500
