"""APPC1/APPC2 — Appendix C: the intermediate change ratios.

C.1: XMark random changes at 3.33% and 6.66%; C.2: the worst case at
3.33% and 6.66%.  Same shape claims as Figs. 13/14, interpolated.
"""

from conftest import publish

from repro.experiments import appendix_c1, appendix_c2, render_figure


def test_appendix_c1_random_ratios(once, results_dir):
    results = once(lambda: appendix_c1())
    for result, name in zip(results, ["appc1-3.33.txt", "appc1-6.66.txt"]):
        text = render_figure(result)
        publish(results_dir, name, text)
        assert result.all_claims_hold(), text


def test_appendix_c2_worst_case_ratios(once, results_dir):
    results = once(lambda: appendix_c2())
    for result, name in zip(results, ["appc2-3.33.txt", "appc2-6.66.txt"]):
        text = render_figure(result)
        publish(results_dir, name, text)
        assert result.all_claims_hold(), text
    # Monotone damage: the higher the mutation ratio, the worse the
    # archive/repo ratio (C.2's two panels vs each other).
    low = results[0].series[0].overhead_vs_incremental()
    high = results[1].series[0].overhead_vs_incremental()
    assert high > low
