"""Deterministic pseudo-natural text for the synthetic datasets.

The generators need text that compresses like real curated prose and
protein sequences — neither random bytes (incompressible) nor constant
strings (trivially compressible).  A fixed vocabulary sampled with a
seeded RNG gives both properties and full reproducibility.
"""

from __future__ import annotations

import random

VOCABULARY = (
    "protein gene sequence factor replication disorder inheritance domain "
    "expression mutation receptor kinase binding transcription chromosome "
    "syndrome clinical analysis variant observed reported described region "
    "terminal acid residue subunit complex pathway membrane nuclear "
    "phenotype dominant recessive linkage marker patient family study "
    "evidence function structure homology conserved species human mouse "
    "rat yeast cell tissue growth signal response activity regulation"
).split()

AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"
NUCLEOTIDES = "ACGT"

FIRST_NAMES = (
    "Victor Paul Jennifer Anna Carol David Erik Fiona George Hanna "
    "Igor Julia Kenji Laura Marco Nadia Oscar Petra Quentin Rosa"
).split()

LAST_NAMES = (
    "McKusick Converse Macke Smith Jones Tanaka Mueller Rehbein Garcia "
    "Kim Olsen Petrov Rossi Silva Novak Berg Horvat Dubois Costa Mori"
).split()


def sentence(rng: random.Random, words: int) -> str:
    """A pseudo-sentence of the given word count."""
    chosen = [rng.choice(VOCABULARY) for _ in range(max(1, words))]
    chosen[0] = chosen[0].capitalize()
    return " ".join(chosen) + "."


def paragraph(rng: random.Random, sentences: int, words_per_sentence: int = 9) -> str:
    """Several sentences joined; the body of Text/comment fields."""
    return " ".join(
        sentence(rng, rng.randint(words_per_sentence - 3, words_per_sentence + 3))
        for _ in range(max(1, sentences))
    )


def protein_sequence(rng: random.Random, length: int) -> str:
    """An amino-acid string in Swiss-Prot's blocked layout."""
    residues = "".join(rng.choice(AMINO_ACIDS) for _ in range(length))
    blocks = [residues[i : i + 10] for i in range(0, len(residues), 10)]
    return " ".join(blocks)


def person_name(rng: random.Random) -> str:
    return f"{rng.choice(FIRST_NAMES)} {rng.choice(LAST_NAMES)}"


def date_parts(rng: random.Random) -> tuple[str, str, str]:
    """(month, day, year) strings for Date elements."""
    return (
        str(rng.randint(1, 12)),
        str(rng.randint(1, 28)),
        str(rng.randint(1990, 2002)),
    )


def random_token(rng: random.Random, length: int = 8) -> str:
    """A random alphanumeric token (the paper's "random string" edits)."""
    alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
    return "".join(rng.choice(alphabet) for _ in range(length))
