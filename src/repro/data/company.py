"""The paper's running example: the company database of Figures 2-5.

Provides the key specification of Sec. 3 and the four versions of
Figure 2, used throughout the tests, examples and documentation.
"""

from __future__ import annotations

from ..keys.keyparser import parse_key_spec
from ..keys.spec import KeySpec
from ..xmltree.model import Element
from ..xmltree.parser import parse_document

COMPANY_KEY_TEXT = """
(/, (db, {}))
(/db, (dept, {name}))
(/db/dept, (emp, {fn, ln}))
(/db/dept/emp, (sal, {}))
(/db/dept/emp, (tel, {.}))
"""


def company_key_spec() -> KeySpec:
    """The key specification of the company database (Sec. 3)."""
    return parse_key_spec(COMPANY_KEY_TEXT)


_VERSION_1 = "<db><dept><name>finance</name></dept></db>"

_VERSION_2 = (
    "<db><dept><name>finance</name>"
    "<emp><fn>Jane</fn><ln>Smith</ln></emp>"
    "</dept></db>"
)

_VERSION_3 = (
    "<db>"
    "<dept><name>finance</name>"
    "<emp><fn>John</fn><ln>Doe</ln><sal>90K</sal><tel>123-4567</tel></emp>"
    "</dept>"
    "<dept><name>marketing</name>"
    "<emp><fn>John</fn><ln>Doe</ln></emp>"
    "</dept>"
    "</db>"
)

_VERSION_4 = (
    "<db><dept><name>finance</name>"
    "<emp><fn>John</fn><ln>Doe</ln><sal>95K</sal><tel>123-4567</tel></emp>"
    "<emp><fn>Jane</fn><ln>Smith</ln><sal>95K</sal>"
    "<tel>123-6789</tel><tel>112-3456</tel></emp>"
    "</dept></db>"
)

_VERSIONS = (_VERSION_1, _VERSION_2, _VERSION_3, _VERSION_4)


def company_version(number: int) -> Element:
    """Version ``number`` (1-4) of the company database (Fig. 2)."""
    if not 1 <= number <= len(_VERSIONS):
        raise ValueError(f"Company database has versions 1-4, not {number}")
    return parse_document(_VERSIONS[number - 1])


def company_versions() -> list[Element]:
    """All four versions of Figure 2, in order."""
    return [parse_document(source) for source in _VERSIONS]
