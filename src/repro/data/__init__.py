"""Synthetic workloads reproducing the paper's datasets (Appendix B).

The paper archives real OMIM and Swiss-Prot dumps plus XMark synthetic
data; those dumps are not redistributable, so generators reproduce the
schemas, key specifications and measured change mixes instead (see the
substitution notes in DESIGN.md).
"""

from .company import company_key_spec, company_version, company_versions
from .omim import OmimChangeRates, OmimGenerator, omim_key_spec
from .swissprot import SwissProtChangeRates, SwissProtGenerator, swissprot_key_spec
from .xmark import REGIONS, XMarkGenerator, xmark_key_spec

__all__ = [
    "OmimChangeRates",
    "OmimGenerator",
    "REGIONS",
    "SwissProtChangeRates",
    "SwissProtGenerator",
    "XMarkGenerator",
    "company_key_spec",
    "company_version",
    "company_versions",
    "omim_key_spec",
    "swissprot_key_spec",
    "xmark_key_spec",
]
