"""An OMIM-like synthetic dataset (Appendix B.1).

OMIM — On-line Mendelian Inheritance in Man — is the paper's archetype
of a *highly accretive* curated database: a new version almost daily,
changes overwhelmingly additions (the paper measures a
deletion/insertion/modification ratio of roughly 0.02%/0.2%/0.03%
between consecutive versions).  The generator reproduces the record
schema and key structure printed in Appendix B.1 and that change mix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..keys.keyparser import parse_key_spec
from ..keys.spec import KeySpec
from ..xmltree.model import Element, Text
from . import words

OMIM_KEY_TEXT = """
(/, (ROOT, {}))
(/ROOT, (Record, {Num}))
(/ROOT/Record, (Title, {}))
(/ROOT/Record, (AlternativeTitle, {\\e}))
(/ROOT/Record, (Text, {}))
(/ROOT/Record, (Contributors, {Name, CNtype, Date/Month, Date/Day, Date/Year}))
(/ROOT/Record/Contributors, (Date, {}))
(/ROOT/Record, (Creation_Date, {Name, Date/Month, Date/Day, Date/Year}))
(/ROOT/Record/Creation_Date, (Date, {}))
"""


def omim_key_spec() -> KeySpec:
    """The OMIM key specification (Appendix B.1, generated subset)."""
    return parse_key_spec(OMIM_KEY_TEXT)


@dataclass
class OmimChangeRates:
    """Per-version change mix; defaults follow Sec. 5.3's measurements."""

    delete_fraction: float = 0.0002
    insert_fraction: float = 0.002
    modify_fraction: float = 0.0003


class OmimGenerator:
    """Generates a sequence of OMIM-like versions.

    Usage::

        generator = OmimGenerator(seed=7, initial_records=80)
        versions = generator.generate_versions(20)
    """

    def __init__(
        self,
        seed: int = 2002,
        initial_records: int = 80,
        rates: OmimChangeRates | None = None,
        text_sentences: int = 6,
    ) -> None:
        self._rng = random.Random(seed)
        self.initial_records = initial_records
        self.rates = rates or OmimChangeRates()
        self.text_sentences = text_sentences
        self._next_num = 100000

    # -- record construction -------------------------------------------------

    def _allocate_num(self) -> str:
        self._next_num += self._rng.randint(1, 9)
        return str(self._next_num)

    def _date_element(self) -> Element:
        month, day, year = words.date_parts(self._rng)
        date = Element("Date")
        date.append(Element("Month")).append(Text(month))
        date.append(Element("Day")).append(Text(day))
        date.append(Element("Year")).append(Text(year))
        return date

    def _record(self) -> Element:
        record = Element("Record")
        num = self._allocate_num()
        record.append(Element("Num")).append(Text(num))
        title = f"*{num} {words.sentence(self._rng, 4).rstrip('.').upper()}"
        record.append(Element("Title")).append(Text(title))
        for _ in range(self._rng.randint(0, 2)):
            alternative = record.append(Element("AlternativeTitle"))
            alternative.append(Text(words.sentence(self._rng, 3).rstrip(".").upper()))
        record.append(Element("Text")).append(
            Text(words.paragraph(self._rng, self.text_sentences))
        )
        seen: set[tuple] = set()
        for _ in range(self._rng.randint(1, 3)):
            contributor = Element("Contributors")
            name = words.person_name(self._rng)
            cn_type = self._rng.choice(["updated", "edited", "created"])
            date = self._date_element()
            signature = (name, cn_type, date.text_content())
            if signature in seen:
                continue
            seen.add(signature)
            contributor.append(Element("Name")).append(Text(name))
            contributor.append(Element("CNtype")).append(Text(cn_type))
            contributor.append(date)
            record.append(contributor)
        creation = record.append(Element("Creation_Date"))
        creation.append(Element("Name")).append(Text(words.person_name(self._rng)))
        creation.append(self._date_element())
        return record

    # -- version generation -------------------------------------------------------

    def initial_version(self) -> Element:
        root = Element("ROOT")
        for _ in range(self.initial_records):
            root.append(self._record())
        return root

    def next_version(self, previous: Element) -> Element:
        """Apply the accretive change mix to produce the next version."""
        version = previous.copy()
        records = version.find_all("Record")
        count = len(records)

        deletions = self._sample(records, self.rates.delete_fraction)
        for record in deletions:
            version.children.remove(record)

        modifications = self._sample(
            [r for r in records if r not in deletions], self.rates.modify_fraction
        )
        for record in modifications:
            text = record.find("Text")
            if text is not None:
                text.children = [Text(words.paragraph(self._rng, self.text_sentences))]

        insert_count = max(1, round(count * self.rates.insert_fraction))
        for _ in range(insert_count):
            version.append(self._record())
        return version

    def generate_versions(self, count: int) -> list[Element]:
        """The first ``count`` versions, in order."""
        if count < 1:
            raise ValueError("Need at least one version")
        versions = [self.initial_version()]
        while len(versions) < count:
            versions.append(self.next_version(versions[-1]))
        return versions

    def _sample(self, items: list, fraction: float) -> list:
        if not items or fraction <= 0:
            return []
        count = round(len(items) * fraction)
        if count == 0:
            # Sub-one expected counts happen probabilistically.
            count = 1 if self._rng.random() < len(items) * fraction else 0
        return self._rng.sample(items, min(count, len(items)))
