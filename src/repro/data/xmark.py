"""An XMark-like auction dataset (Schmidt et al. 2002; Appendix B.3).

XMark is the paper's synthetic workload: auction-site data (regional
items, people, open auctions) whose change behaviour is driven by a
*change simulator* rather than curation.  This module reproduces the
schema subset and key specification of Appendix B.3, plus the two
simulators of Sec. 5.3:

* :meth:`XMarkGenerator.apply_random_changes` — delete n% of record
  elements, insert the same number of fresh ones, and modify string
  values of n% of elements to random strings (Figs. 13, C.1);
* :meth:`XMarkGenerator.apply_key_mutation` — the worst case for
  key-based archiving: mutate part of the *key value* of n% of
  elements, which the archiver must treat as a deletion plus an
  insertion of a highly similar element (Figs. 14, C.2).
"""

from __future__ import annotations

import random

from ..keys.keyparser import parse_key_spec
from ..keys.spec import KeySpec
from ..xmltree.model import Element, Text
from . import words

REGIONS = ["africa", "asia", "australia", "europe", "namerica", "samerica"]

XMARK_KEY_TEXT = """
(/, (site, {}))
(/site, (regions, {}))
(/site, (categories, {}))
(/site, (people, {}))
(/site, (open_auctions, {}))
(/site/regions, (africa, {}))
(/site/regions, (asia, {}))
(/site/regions, (australia, {}))
(/site/regions, (europe, {}))
(/site/regions, (namerica, {}))
(/site/regions, (samerica, {}))
(/site/regions/_, (item, {id}))
(/site/regions/_/item, (location, {}))
(/site/regions/_/item, (quantity, {}))
(/site/regions/_/item, (name, {}))
(/site/regions/_/item, (payment, {}))
(/site/regions/_/item, (description, {}))
(/site/regions/_/item, (shipping, {}))
(/site/regions/_/item, (incategory, {category}))
(/site/regions/_/item, (mailbox, {}))
(/site/regions/_/item/mailbox, (mail, {from, to, date}))
(/site/regions/_/item/mailbox/mail, (text, {}))
(/site/categories, (category, {id}))
(/site/categories/category, (name, {}))
(/site/categories/category, (description, {\\e}))
(/site/people, (person, {id}))
(/site/people/person, (name, {}))
(/site/people/person, (emailaddress, {\\e}))
(/site/people/person, (phone, {\\e}))
(/site/open_auctions, (open_auction, {id}))
(/site/open_auctions/open_auction, (initial, {}))
(/site/open_auctions/open_auction, (reserve, {\\e}))
(/site/open_auctions/open_auction, (bidder, {date, time, personref/person, increase}))
(/site/open_auctions/open_auction/bidder, (personref, {}))
(/site/open_auctions/open_auction, (current, {}))
(/site/open_auctions/open_auction, (itemref, {}))
(/site/open_auctions/open_auction/itemref, (item, {}))
(/site/open_auctions/open_auction, (seller, {}))
(/site/open_auctions/open_auction/seller, (person, {}))
(/site/open_auctions/open_auction, (annotation, {}))
(/site/open_auctions/open_auction/annotation, (author, {}))
(/site/open_auctions/open_auction/annotation/author, (person, {}))
(/site/open_auctions/open_auction/annotation, (description, {}))
(/site/open_auctions/open_auction/annotation, (happiness, {}))
(/site/open_auctions/open_auction, (quantity, {}))
(/site/open_auctions/open_auction, (type, {}))
"""


def xmark_key_spec() -> KeySpec:
    """The XMark key specification (Appendix B.3, generated subset)."""
    return parse_key_spec(XMARK_KEY_TEXT, wildcards={"_": REGIONS})


class XMarkGenerator:
    """Generates an XMark-like site document and simulated change."""

    def __init__(
        self,
        seed: int = 11,
        items: int = 120,
        people: int = 60,
        auctions: int = 40,
        categories: int = 12,
    ) -> None:
        self._rng = random.Random(seed)
        self.items = items
        self.people = people
        self.auctions = auctions
        self.categories = categories
        self._next_id = 0

    def _fresh(self, prefix: str) -> str:
        self._next_id += 1
        return f"{prefix}{self._next_id}"

    # -- record builders ------------------------------------------------------

    def _item(self) -> Element:
        item = Element("item")
        item.set_attribute("id", self._fresh("item"))
        item.append(Element("location")).append(
            Text(self._rng.choice(["United States", "Germany", "Japan", "Moldova, Republic Of"]))
        )
        item.append(Element("quantity")).append(Text(str(self._rng.randint(1, 9))))
        item.append(Element("name")).append(
            Text(words.sentence(self._rng, 2).rstrip("."))
        )
        item.append(Element("payment")).append(
            Text(self._rng.choice(["Money order, Creditcard, Cash", "Personal Check", "Cash"]))
        )
        description = item.append(Element("description"))
        description.append(Element("text")).append(
            Text(words.paragraph(self._rng, 3))
        )
        item.append(Element("shipping")).append(
            Text("Will ship only within country, Buyer pays fixed shipping charges")
        )
        used = set()
        for _ in range(self._rng.randint(1, 3)):
            category = f"category{self._rng.randint(1, self.categories)}"
            if category in used:
                continue
            used.add(category)
            incategory = item.append(Element("incategory"))
            incategory.set_attribute("category", category)
        if self._rng.random() < 0.5:
            mailbox = item.append(Element("mailbox"))
            seen = set()
            for _ in range(self._rng.randint(1, 2)):
                sender = words.person_name(self._rng)
                receiver = words.person_name(self._rng)
                month, day, year = words.date_parts(self._rng)
                date = f"{int(month):02d}/{int(day):02d}/{year}"
                if (sender, receiver, date) in seen:
                    continue
                seen.add((sender, receiver, date))
                mail = mailbox.append(Element("mail"))
                mail.append(Element("from")).append(Text(sender))
                mail.append(Element("to")).append(Text(receiver))
                mail.append(Element("date")).append(Text(date))
                mail.append(Element("text")).append(
                    Text(words.paragraph(self._rng, 2))
                )
        return item

    def _category(self) -> Element:
        category = Element("category")
        category.set_attribute("id", self._fresh("category"))
        category.append(Element("name")).append(
            Text(words.sentence(self._rng, 2).rstrip("."))
        )
        category.append(Element("description")).append(
            Text(words.paragraph(self._rng, 1))
        )
        return category

    def _person(self) -> Element:
        person = Element("person")
        person.set_attribute("id", self._fresh("person"))
        name = words.person_name(self._rng)
        person.append(Element("name")).append(Text(name))
        person.append(Element("emailaddress")).append(
            Text(f"mailto:{name.split()[1]}@{self._rng.choice(['gmu.edu', 'cohera.com', 'acm.org'])}")
        )
        if self._rng.random() < 0.6:
            person.append(Element("phone")).append(
                Text(f"+{self._rng.randint(1, 99)} ({self._rng.randint(100, 999)}) {self._rng.randint(1000000, 9999999)}")
            )
        return person

    def _open_auction(self, item_ids: list[str], person_ids: list[str]) -> Element:
        auction = Element("open_auction")
        auction.set_attribute("id", self._fresh("open_auction"))
        auction.append(Element("initial")).append(
            Text(f"{self._rng.randint(1, 300)}.{self._rng.randint(0, 99):02d}")
        )
        if self._rng.random() < 0.4:
            auction.append(Element("reserve")).append(
                Text(f"{self._rng.randint(50, 999)}.00")
            )
        seen = set()
        for _ in range(self._rng.randint(0, 3)):
            month, day, year = words.date_parts(self._rng)
            date = f"{int(month):02d}/{int(day):02d}/{year}"
            time = f"{self._rng.randint(0, 23):02d}:{self._rng.randint(0, 59):02d}:{self._rng.randint(0, 59):02d}"
            person = self._rng.choice(person_ids)
            increase = f"{self._rng.randint(1, 50)}.00"
            if (date, time, person, increase) in seen:
                continue
            seen.add((date, time, person, increase))
            bidder = auction.append(Element("bidder"))
            bidder.append(Element("date")).append(Text(date))
            bidder.append(Element("time")).append(Text(time))
            personref = bidder.append(Element("personref"))
            personref.set_attribute("person", person)
            bidder.append(Element("increase")).append(Text(increase))
        auction.append(Element("current")).append(
            Text(f"{self._rng.randint(1, 999)}.00")
        )
        itemref = auction.append(Element("itemref"))
        itemref.set_attribute("item", self._rng.choice(item_ids))
        seller = auction.append(Element("seller"))
        seller.set_attribute("person", self._rng.choice(person_ids))
        annotation = auction.append(Element("annotation"))
        author = annotation.append(Element("author"))
        author.set_attribute("person", self._rng.choice(person_ids))
        description = annotation.append(Element("description"))
        description.append(Text(words.paragraph(self._rng, 2)))
        annotation.append(Element("happiness")).append(
            Text(str(self._rng.randint(1, 10)))
        )
        auction.append(Element("quantity")).append(Text(str(self._rng.randint(1, 5))))
        auction.append(Element("type")).append(
            Text(self._rng.choice(["Regular", "Featured", "Dutch"]))
        )
        return auction

    # -- site construction ------------------------------------------------------------

    def initial_version(self) -> Element:
        site = Element("site")
        regions = site.append(Element("regions"))
        region_elements = {name: regions.append(Element(name)) for name in REGIONS}
        item_ids: list[str] = []
        for _ in range(self.items):
            item = self._item()
            item_ids.append(item.get_attribute("id"))
            region_elements[self._rng.choice(REGIONS)].append(item)
        categories = site.append(Element("categories"))
        for _ in range(self.categories):
            categories.append(self._category())
        people = site.append(Element("people"))
        person_ids: list[str] = []
        for _ in range(self.people):
            person = self._person()
            person_ids.append(person.get_attribute("id"))
            people.append(person)
        open_auctions = site.append(Element("open_auctions"))
        for _ in range(self.auctions):
            open_auctions.append(self._open_auction(item_ids, person_ids))
        return site

    # -- record plumbing shared by the simulators ---------------------------------------

    def _records(self, site: Element) -> list[tuple[Element, Element]]:
        """(container, record) pairs for every record-level element."""
        records: list[tuple[Element, Element]] = []
        regions = site.find("regions")
        if regions is not None:
            for region in regions.element_children():
                for item in region.find_all("item"):
                    records.append((region, item))
        people = site.find("people")
        if people is not None:
            for person in people.find_all("person"):
                records.append((people, person))
        open_auctions = site.find("open_auctions")
        if open_auctions is not None:
            for auction in open_auctions.find_all("open_auction"):
                records.append((open_auctions, auction))
        return records

    def _current_ids(self, site: Element, tag: str) -> list[str]:
        ids = [
            node.get_attribute("id")
            for node in site.iter_elements()
            if node.tag == tag and node.get_attribute("id")
        ]
        return ids or [f"{tag}0"]

    def _fresh_record(self, site: Element, container: Element) -> Element:
        if container.tag in REGIONS:
            return self._item()
        if container.tag == "people":
            return self._person()
        return self._open_auction(
            self._current_ids(site, "item"), self._current_ids(site, "person")
        )

    _MUTABLE_TEXT_TAGS = {
        "location",
        "name",
        "payment",
        "shipping",
        "text",
        "emailaddress",
        "phone",
        "current",
        "initial",
        "quantity",
        "happiness",
        "description",
    }

    def _mutable_text_nodes(self, record: Element) -> list[Element]:
        nodes = []
        for node in record.iter_elements():
            if node.tag in self._MUTABLE_TEXT_TAGS and node.children and all(
                isinstance(child, Text) for child in node.children
            ):
                nodes.append(node)
        return nodes

    # -- the two change simulators of Sec. 5.3 --------------------------------------------

    def apply_random_changes(self, site: Element, percent: float) -> Element:
        """n% deletions + n% insertions + n% string modifications."""
        version = site.copy()
        records = self._records(version)
        count = max(1, round(len(records) * percent / 100.0))

        for container, record in self._rng.sample(records, min(count, len(records))):
            container.children.remove(record)

        survivors = self._records(version)
        for _ in range(count):
            container, _ = self._rng.choice(survivors)
            container.append(self._fresh_record(version, container))

        for container, record in self._rng.sample(
            survivors, min(count, len(survivors))
        ):
            targets = self._mutable_text_nodes(record)
            if targets:
                target = self._rng.choice(targets)
                target.children = [Text(words.random_token(self._rng, 12))]
        return version

    def apply_key_mutation(self, site: Element, percent: float) -> Element:
        """Worst case: mutate the key (id) of n% of record elements.

        The record's content is otherwise untouched — to a line diff the
        change is one line; to the key-based archiver it is the death of
        one element and the birth of a highly similar one.
        """
        version = site.copy()
        records = self._records(version)
        count = max(1, round(len(records) * percent / 100.0))
        for _, record in self._rng.sample(records, min(count, len(records))):
            record.set_attribute("id", self._fresh(record.tag))
        return version

    # -- version sequences -------------------------------------------------------------------

    def versions_random(self, count: int, percent: float) -> list[Element]:
        """Fig. 13 workload: ``count`` versions at the given change ratio."""
        versions = [self.initial_version()]
        while len(versions) < count:
            versions.append(self.apply_random_changes(versions[-1], percent))
        return versions

    def versions_worst_case(self, count: int, percent: float) -> list[Element]:
        """Fig. 14 workload: key-mutation versions."""
        versions = [self.initial_version()]
        while len(versions) < count:
            versions.append(self.apply_key_mutation(versions[-1], percent))
        return versions
