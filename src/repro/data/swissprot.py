"""A Swiss-Prot-like synthetic dataset (Appendix B.2).

Swiss-Prot is the paper's *fast-growing* dataset: versions months
apart, each substantially larger than the last, with a measured
deletion/insertion/modification mix of roughly 14%/26%/1.2% between
consecutive versions (Sec. 5.3).  The generator reproduces the record
schema and keys of Appendix B.2 (protein entries keyed by primary
accession ``pac``) and that growth profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..keys.keyparser import parse_key_spec
from ..keys.spec import KeySpec
from ..xmltree.model import Element, Text
from . import words

SWISSPROT_KEY_TEXT = """
(/, (ROOT, {}))
(/ROOT, (Record, {pac}))
(/ROOT/Record, (id, {}))
(/ROOT/Record, (class, {}))
(/ROOT/Record, (type, {}))
(/ROOT/Record, (slen, {}))
(/ROOT/Record, (mod, {date, rel, comment}))
(/ROOT/Record, (protein, {name}))
(/ROOT/Record/protein, (from, {\\e}))
(/ROOT/Record/protein, (taxo, {\\e}))
(/ROOT/Record, (References, {}))
(/ROOT/Record/References, (Ref, {num}))
(/ROOT/Record/References/Ref, (pos, {}))
(/ROOT/Record/References/Ref, (comment, {\\e}))
(/ROOT/Record/References/Ref, (author, {\\e}))
(/ROOT/Record/References/Ref, (title, {}))
(/ROOT/Record/References/Ref, (in, {}))
(/ROOT/Record, (comment, {\\e}))
(/ROOT/Record, (keywords, {}))
(/ROOT/Record/keywords, (word, {\\e}))
(/ROOT/Record, (feature, {name, from, to}))
(/ROOT/Record/feature, (desc, {}))
(/ROOT/Record, (sequence, {}))
"""


def swissprot_key_spec() -> KeySpec:
    """The Swiss-Prot key specification (Appendix B.2, generated subset)."""
    return parse_key_spec(SWISSPROT_KEY_TEXT)


@dataclass
class SwissProtChangeRates:
    """Per-version change mix; defaults follow Sec. 5.3's measurements."""

    delete_fraction: float = 0.14
    insert_fraction: float = 0.26
    modify_fraction: float = 0.012


class SwissProtGenerator:
    """Generates a sequence of growing Swiss-Prot-like versions."""

    def __init__(
        self,
        seed: int = 1997,
        initial_records: int = 60,
        rates: SwissProtChangeRates | None = None,
        sequence_length: int = 120,
    ) -> None:
        self._rng = random.Random(seed)
        self.initial_records = initial_records
        self.rates = rates or SwissProtChangeRates()
        self.sequence_length = sequence_length
        self._next_accession = 60000

    # -- record construction ----------------------------------------------------

    def _accession(self) -> str:
        self._next_accession += self._rng.randint(1, 5)
        return f"Q{self._next_accession}"

    def _reference(self, number: int) -> Element:
        ref = Element("Ref")
        ref.append(Element("num")).append(Text(str(number)))
        ref.append(Element("pos")).append(
            Text(self._rng.choice(["SEQUENCE FROM N.A.", "REVISION", "STRUCTURE"]))
        )
        chosen_comments = {
            self._rng.choice(["STRAIN=WISTAR", "TISSUE=TESTIS", "PLASMID"])
            for _ in range(self._rng.randint(0, 2))
        }
        for comment in sorted(chosen_comments):
            ref.append(Element("comment")).append(Text(comment))
        authors = {words.person_name(self._rng) for _ in range(self._rng.randint(1, 3))}
        for author in sorted(authors):
            ref.append(Element("author")).append(Text(f"{author}."))
        ref.append(Element("title")).append(
            Text(f'"{words.sentence(self._rng, 7).rstrip(".")}"')
        )
        ref.append(Element("in")).append(
            Text(
                f"Nucleic Acids Res. {self._rng.randint(10, 30)}:"
                f"{self._rng.randint(100, 999)}-{self._rng.randint(1000, 1999)}"
                f"({self._rng.randint(1990, 2002)})"
            )
        )
        return ref

    def _feature(self, used: set) -> Element | None:
        start = self._rng.randint(1, 800)
        end = start + self._rng.randint(3, 60)
        name = self._rng.choice(["DOMAIN", "BINDING", "ACT_SITE", "REGION"])
        signature = (name, start, end)
        if signature in used:
            return None
        used.add(signature)
        feature = Element("feature")
        feature.append(Element("name")).append(Text(name))
        feature.append(Element("from")).append(Text(str(start)))
        feature.append(Element("to")).append(Text(str(end)))
        feature.append(Element("desc")).append(
            Text(words.sentence(self._rng, 4).rstrip(".").upper() + ".")
        )
        return feature

    def _record(self) -> Element:
        record = Element("Record")
        accession = self._accession()
        length = self.sequence_length + self._rng.randint(-40, 200)
        record.append(Element("pac")).append(Text(accession))
        record.append(Element("id")).append(
            Text(f"{words.random_token(self._rng, 4).upper()}_RAT")
        )
        record.append(Element("class")).append(Text("STANDARD"))
        record.append(Element("type")).append(Text("PRT"))
        record.append(Element("slen")).append(Text(str(length)))
        mod = record.append(Element("mod"))
        month, day, year = words.date_parts(self._rng)
        mod.append(Element("date")).append(
            Text(f"{int(day):02d}-{int(month):02d}-{year}")
        )
        mod.append(Element("rel")).append(Text(str(self._rng.randint(20, 45))))
        mod.append(Element("comment")).append(Text("Created"))
        protein = record.append(Element("protein"))
        protein.append(Element("name")).append(
            Text(f"{length} KDA PROTEIN (EC 6.3.2.-).")
        )
        protein.append(Element("from")).append(Text("Rattus norvegicus (Rat)."))
        protein.append(Element("taxo")).append(Text("Eukaryota"))
        references = record.append(Element("References"))
        for number in range(1, self._rng.randint(2, 4)):
            references.append(self._reference(number))
        for _ in range(self._rng.randint(0, 2)):
            record.append(Element("comment")).append(
                Text(words.paragraph(self._rng, 2).upper())
            )
        keywords = record.append(Element("keywords"))
        chosen = {
            self._rng.choice(
                ["Ubiquitin conjugation", "Ligase", "Kinase", "Membrane", "Repeat"]
            )
            for _ in range(self._rng.randint(1, 3))
        }
        for word in sorted(chosen):
            keywords.append(Element("word")).append(Text(word))
        used_features: set = set()
        for _ in range(self._rng.randint(1, 4)):
            feature = self._feature(used_features)
            if feature is not None:
                record.append(feature)
        sequence = record.append(Element("sequence"))
        sequence.append(Text(words.protein_sequence(self._rng, length)))
        return record

    # -- version generation -----------------------------------------------------------

    def initial_version(self) -> Element:
        root = Element("ROOT")
        for _ in range(self.initial_records):
            root.append(self._record())
        return root

    def next_version(self, previous: Element) -> Element:
        version = previous.copy()
        records = version.find_all("Record")
        count = len(records)

        deletions = self._sample(records, self.rates.delete_fraction)
        for record in deletions:
            version.children.remove(record)

        survivors = [r for r in records if r not in deletions]
        for record in self._sample(survivors, self.rates.modify_fraction):
            # Curated edits touch the free-text comment or a feature desc.
            comment = record.find("comment")
            if comment is not None:
                comment.children = [Text(words.paragraph(self._rng, 2).upper())]
            else:
                feature = record.find("feature")
                if feature is not None and feature.find("desc") is not None:
                    feature.find("desc").children = [
                        Text(words.sentence(self._rng, 4).rstrip(".").upper() + ".")
                    ]

        insert_count = max(1, round(count * self.rates.insert_fraction))
        for _ in range(insert_count):
            version.append(self._record())
        return version

    def generate_versions(self, count: int) -> list[Element]:
        if count < 1:
            raise ValueError("Need at least one version")
        versions = [self.initial_version()]
        while len(versions) < count:
            versions.append(self.next_version(versions[-1]))
        return versions

    def _sample(self, items: list, fraction: float) -> list:
        if not items or fraction <= 0:
            return []
        count = round(len(items) * fraction)
        if count == 0:
            count = 1 if self._rng.random() < len(items) * fraction else 0
        return self._rng.sample(items, min(count, len(items)))
