"""Value equality ``=v`` and value ordering ``<v`` (Appendix A.3, A.6).

Two nodes are *value equal* when the trees rooted at them are isomorphic
by an isomorphism that is the identity on string values: element children
are compared as an ordered list, attributes as a set (here: a
lexicographically sorted list, per Appendix A.6).

The total order ``<v`` extends equality and is the order Nested Merge
uses to sort keyed siblings (Sec. 4.2).  Kinds are ordered
T-node < A-node < E-node, and within each kind the paper's lexicographic
rules apply.
"""

from __future__ import annotations

from functools import cmp_to_key
from typing import Union

from .model import Attribute, Element, Text

Value = Union[Element, Text, Attribute]

_KIND_ORDER = {Text: 0, Attribute: 1, Element: 2}


def value_equal(a: Value, b: Value) -> bool:
    """Return ``True`` when ``a =v b``."""
    return compare_values(a, b) == 0


def value_less(a: Value, b: Value) -> bool:
    """Return ``True`` when ``a <v b``."""
    return compare_values(a, b) < 0


def compare_values(a: Value, b: Value) -> int:
    """Three-way comparison implementing the paper's total order on values.

    Returns a negative number when ``a <v b``, zero when ``a =v b`` and a
    positive number otherwise.
    """
    kind_a = _KIND_ORDER[type(a)]
    kind_b = _KIND_ORDER[type(b)]
    if kind_a != kind_b:
        return -1 if kind_a < kind_b else 1
    if isinstance(a, Text):
        assert isinstance(b, Text)
        return _cmp(a.text, b.text)
    if isinstance(a, Attribute):
        assert isinstance(b, Attribute)
        return _cmp((a.name, a.value), (b.name, b.value))
    assert isinstance(a, Element) and isinstance(b, Element)
    return _compare_elements(a, b)


def _compare_elements(a: Element, b: Element) -> int:
    if a.tag != b.tag:
        return _cmp(a.tag, b.tag)
    # Ordered list of E/T children (Appendix A.6, <=l).
    if len(a.children) != len(b.children):
        return _cmp(len(a.children), len(b.children))
    for child_a, child_b in zip(a.children, b.children):
        result = compare_values(child_a, child_b)
        if result != 0:
            return result
    # Set of attributes, compared as sorted name/value pairs (<=s).
    attrs_a = sorted((attr.name, attr.value) for attr in a.attributes)
    attrs_b = sorted((attr.name, attr.value) for attr in b.attributes)
    if len(attrs_a) != len(attrs_b):
        return _cmp(len(attrs_a), len(attrs_b))
    return _cmp(attrs_a, attrs_b)


def _cmp(a, b) -> int:
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def sort_by_value(nodes: list[Element]) -> list[Element]:
    """Return ``nodes`` sorted by the ``<v`` order (stable)."""
    return sorted(nodes, key=cmp_to_key(compare_values))


def value_list_equal(a: list, b: list) -> bool:
    """Value equality of two ordered node lists (``=l`` in Appendix A.6)."""
    if len(a) != len(b):
        return False
    return all(compare_values(x, y) == 0 for x, y in zip(a, b))
