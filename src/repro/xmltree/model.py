"""XML data model of the paper (Appendix A.1).

A document is a tree of three node kinds:

* **E-node** (:class:`Element`) — labeled with a tag name; the only kind of
  internal node.  Its value consists of an ordered list of E/T children and
  an unordered set of A-children (attributes).
* **A-node** (:class:`Attribute`) — a pair of attribute name and string
  value.
* **T-node** (:class:`Text`) — a text value.

The model deliberately ignores inter-element whitespace, comments,
processing instructions and namespaces other than the archive's ``T``
timestamp tag — the paper's model does the same (Sec. 4.3, footnote 3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union


class Node:
    """Base class for all tree nodes.

    Nodes carry a ``parent`` back-pointer maintained by
    :meth:`Element.append`; it is informational only and never serialized.
    """

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional["Element"] = None

    def copy(self) -> "Node":
        """Return a deep copy of the subtree rooted at this node."""
        raise NotImplementedError


class Text(Node):
    """A T-node: a run of character data."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__()
        if not isinstance(text, str):
            raise TypeError(f"Text content must be str, got {type(text).__name__}")
        if not text:
            # An empty T-node is indistinguishable from no node at all in
            # any serialization, which would break =v / canonical-form
            # agreement; the model therefore forbids it.
            raise ValueError("Text content must be non-empty")
        self.text = text

    def copy(self) -> "Text":
        return Text(self.text)

    def __repr__(self) -> str:
        preview = self.text if len(self.text) <= 24 else self.text[:21] + "..."
        return f"Text({preview!r})"


class Attribute:
    """An A-node: an (attribute name, string value) pair.

    Attributes are not :class:`Node` subclasses because they never appear
    in the ordered child list; they live in the owning element's attribute
    set, mirroring the paper's treatment (the value of an E-node is a list
    of E/T children plus a *set* of A-children).
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: str) -> None:
        if not name:
            raise ValueError("Attribute name must be non-empty")
        self.name = name
        self.value = value

    def copy(self) -> "Attribute":
        return Attribute(self.name, self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.name, self.value))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, {self.value!r})"


Child = Union["Element", Text]


class Element(Node):
    """An E-node: a tag name, ordered E/T children, unordered attributes."""

    __slots__ = ("tag", "children", "attributes")

    def __init__(
        self,
        tag: str,
        children: Optional[Iterable[Child]] = None,
        attributes: Optional[Iterable[Attribute]] = None,
    ) -> None:
        super().__init__()
        if not tag:
            raise ValueError("Element tag must be non-empty")
        self.tag = tag
        self.children: list[Child] = []
        self.attributes: list[Attribute] = []
        if attributes:
            for attr in attributes:
                self.set_attribute(attr.name, attr.value)
        if children:
            for child in children:
                self.append(child)

    # -- construction -----------------------------------------------------

    def append(self, child: Child) -> Child:
        """Attach ``child`` as the last E/T child and return it.

        Adjacent T-nodes are coalesced (as in the XPath data model): a
        pair of neighbouring text nodes has no distinguishable
        serialization, so keeping them separate would break the
        value-equality / canonical-form correspondence.
        """
        if not isinstance(child, (Element, Text)):
            raise TypeError(
                f"Element children must be Element or Text, got {type(child).__name__}"
            )
        if (
            isinstance(child, Text)
            and self.children
            and isinstance(self.children[-1], Text)
        ):
            merged = self.children[-1]
            merged.text += child.text
            return merged
        child.parent = self
        self.children.append(child)
        return child

    def extend(self, children: Iterable[Child]) -> None:
        for child in children:
            self.append(child)

    def set_attribute(self, name: str, value: str) -> None:
        """Set attribute ``name`` to ``value``, replacing any existing one."""
        for attr in self.attributes:
            if attr.name == name:
                attr.value = value
                return
        self.attributes.append(Attribute(name, value))

    def remove_attribute(self, name: str) -> None:
        self.attributes = [a for a in self.attributes if a.name != name]

    # -- access -----------------------------------------------------------

    def get_attribute(self, name: str, default: Optional[str] = None) -> Optional[str]:
        for attr in self.attributes:
            if attr.name == name:
                return attr.value
        return default

    def element_children(self) -> Iterator["Element"]:
        """Iterate over E-node children only, in document order."""
        for child in self.children:
            if isinstance(child, Element):
                yield child

    def find(self, tag: str) -> Optional["Element"]:
        """Return the first E-child with the given tag, or ``None``."""
        for child in self.element_children():
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["Element"]:
        """Return all E-children with the given tag, in document order."""
        return [c for c in self.element_children() if c.tag == tag]

    def text_content(self) -> str:
        """Concatenated text of all descendant T-nodes, in document order."""
        parts: list[str] = []
        for node in self.iter():
            if isinstance(node, Text):
                parts.append(node.text)
        return "".join(parts)

    def iter(self) -> Iterator[Node]:
        """Pre-order (document order) traversal of this subtree."""
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, Element):
                stack.extend(reversed(node.children))

    def iter_elements(self) -> Iterator["Element"]:
        """Pre-order traversal yielding E-nodes only."""
        for node in self.iter():
            if isinstance(node, Element):
                yield node

    # -- structural measures (used by Fig. 7 statistics) -------------------

    def node_count(self) -> int:
        """Number of E, T and A nodes in this subtree."""
        count = 0
        for node in self.iter():
            count += 1
            if isinstance(node, Element):
                count += len(node.attributes)
        return count

    def height(self) -> int:
        """Element height: a leaf element has height 1; T-nodes do not
        add a level (the paper's Fig. 7 counts OMIM's ROOT/Record/
        Contributors/Date/Month chain as height 5)."""
        best = 1
        for child in self.element_children():
            best = max(best, 1 + child.height())
        return best

    def max_degree(self) -> int:
        """Maximum number of E/T children of any element in this subtree."""
        best = len(self.children)
        for child in self.element_children():
            best = max(best, child.max_degree())
        return best

    # -- misc ---------------------------------------------------------------

    def copy(self) -> "Element":
        clone = Element(self.tag)
        clone.attributes = [attr.copy() for attr in self.attributes]
        for child in self.children:
            clone.append(child.copy())
        return clone

    def __repr__(self) -> str:
        return (
            f"Element({self.tag!r}, children={len(self.children)}, "
            f"attrs={len(self.attributes)})"
        )


def element(tag: str, *children: Union[Child, str], **attrs: str) -> Element:
    """Convenience builder: ``element('emp', element('fn', 'John'))``.

    String arguments become T-node children.  Keyword arguments become
    attributes.  Intended for tests and examples; library code builds
    trees explicitly.
    """
    node = Element(tag)
    for name, value in attrs.items():
        node.set_attribute(name, value)
    for child in children:
        if isinstance(child, str):
            node.append(Text(child))
        else:
            node.append(child)
    return node
