"""XML substrate: data model, parser, serializer, value semantics.

This package implements the paper's XML model (Appendix A): E/A/T nodes,
document order, value equality ``=v``, the total value order ``<v`` used
by Nested Merge, and the canonical string form used for fingerprinting.
"""

from .canonical import canonical_form, canonical_form_of_children
from .model import Attribute, Element, Node, Text, element
from .parser import XMLSyntaxError, parse_document, parse_file
from .serializer import (
    serialized_size,
    to_pretty_string,
    to_string,
    write_file,
)
from .xpath import XPathError, XPathResult, evaluate, xpath, xpath_first
from .value import (
    compare_values,
    sort_by_value,
    value_equal,
    value_less,
    value_list_equal,
)

__all__ = [
    "Attribute",
    "Element",
    "Node",
    "Text",
    "XMLSyntaxError",
    "XPathError",
    "XPathResult",
    "evaluate",
    "xpath",
    "xpath_first",
    "canonical_form",
    "canonical_form_of_children",
    "compare_values",
    "element",
    "parse_document",
    "parse_file",
    "serialized_size",
    "sort_by_value",
    "to_pretty_string",
    "to_string",
    "value_equal",
    "value_less",
    "value_list_equal",
    "write_file",
]
