"""A hand-written XML parser for the paper's data model.

The parser accepts the well-formed XML subset the paper's documents use:
elements, attributes (single- or double-quoted), character data, the five
predefined entities plus numeric character references, comments,
processing instructions and CDATA sections.  DTDs are tolerated at the
prolog and skipped.

Inter-element whitespace — text consisting entirely of whitespace that
appears next to element siblings — is dropped, matching the paper's model
(footnote 3 in Sec. 4.3: "our XML model ignores these whitespaces").
Whitespace inside mixed content where no element siblings exist is kept.
"""

from __future__ import annotations

from .model import Element, Text

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-")


class XMLSyntaxError(ValueError):
    """Raised on malformed input, with position information."""

    def __init__(self, message: str, position: int, line: int) -> None:
        super().__init__(f"{message} (at offset {position}, line {line})")
        self.position = position
        self.line = line


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Parser:
    """Recursive-descent parser over a source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.length = len(source)

    # -- error/position helpers -------------------------------------------

    def _line(self) -> int:
        return self.source.count("\n", 0, self.pos) + 1

    def _fail(self, message: str) -> "XMLSyntaxError":
        return XMLSyntaxError(message, self.pos, self._line())

    # -- low-level scanning -------------------------------------------------

    def _peek(self) -> str:
        if self.pos >= self.length:
            raise self._fail("Unexpected end of input")
        return self.source[self.pos]

    def _startswith(self, token: str) -> bool:
        return self.source.startswith(token, self.pos)

    def _expect(self, token: str) -> None:
        if not self._startswith(token):
            found = self.source[self.pos : self.pos + len(token)]
            raise self._fail(f"Expected {token!r}, found {found!r}")
        self.pos += len(token)

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.source[self.pos] in " \t\r\n":
            self.pos += 1

    def _read_name(self) -> str:
        start = self.pos
        if self.pos >= self.length or not _is_name_start(self.source[self.pos]):
            raise self._fail("Expected a name")
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.source[self.pos]):
            self.pos += 1
        return self.source[start : self.pos]

    # -- entity expansion ---------------------------------------------------

    def _expand_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        parts: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                parts.append(ch)
                i += 1
                continue
            end = raw.find(";", i + 1)
            if end == -1:
                raise self._fail("Unterminated entity reference")
            name = raw[i + 1 : end]
            if name.startswith("#x") or name.startswith("#X"):
                parts.append(chr(int(name[2:], 16)))
            elif name.startswith("#"):
                parts.append(chr(int(name[1:], 10)))
            elif name in _PREDEFINED_ENTITIES:
                parts.append(_PREDEFINED_ENTITIES[name])
            else:
                raise self._fail(f"Unknown entity &{name};")
            i = end + 1
        return "".join(parts)

    # -- grammar -------------------------------------------------------------

    def parse_document(self) -> Element:
        self._skip_prolog()
        root = self._parse_element()
        self._skip_misc()
        if self.pos != self.length:
            raise self._fail("Content after document root")
        return root

    def _skip_prolog(self) -> None:
        while True:
            self._skip_whitespace()
            if self._startswith("<?"):
                self._skip_processing_instruction()
            elif self._startswith("<!--"):
                self._skip_comment()
            elif self._startswith("<!DOCTYPE"):
                self._skip_doctype()
            else:
                return

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self._startswith("<?"):
                self._skip_processing_instruction()
            elif self._startswith("<!--"):
                self._skip_comment()
            else:
                return

    def _skip_processing_instruction(self) -> None:
        end = self.source.find("?>", self.pos)
        if end == -1:
            raise self._fail("Unterminated processing instruction")
        self.pos = end + 2

    def _skip_comment(self) -> None:
        end = self.source.find("-->", self.pos)
        if end == -1:
            raise self._fail("Unterminated comment")
        self.pos = end + 3

    def _skip_doctype(self) -> None:
        # Skip to the matching '>', allowing one bracketed internal subset.
        depth = 0
        while self.pos < self.length:
            ch = self.source[self.pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            elif ch == ">" and depth <= 0:
                self.pos += 1
                return
            self.pos += 1
        raise self._fail("Unterminated DOCTYPE")

    def _parse_element(self) -> Element:
        self._expect("<")
        tag = self._read_name()
        node = Element(tag)
        # Attributes.
        while True:
            self._skip_whitespace()
            if self._startswith("/>"):
                self.pos += 2
                return node
            if self._startswith(">"):
                self.pos += 1
                break
            name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            quote = self._peek()
            if quote not in "'\"":
                raise self._fail("Attribute value must be quoted")
            self.pos += 1
            end = self.source.find(quote, self.pos)
            if end == -1:
                raise self._fail("Unterminated attribute value")
            value = self._expand_entities(self.source[self.pos : end])
            self.pos = end + 1
            if node.get_attribute(name) is not None:
                raise self._fail(f"Duplicate attribute {name!r} on <{tag}>")
            node.set_attribute(name, value)
        self._parse_content(node, tag)
        return node

    def _parse_content(self, node: Element, tag: str) -> None:
        text_parts: list[str] = []

        def flush_text() -> None:
            if not text_parts:
                return
            text = "".join(text_parts)
            text_parts.clear()
            node.append(Text(text))

        while True:
            if self.pos >= self.length:
                raise self._fail(f"Unclosed element <{tag}>")
            if self._startswith("</"):
                self.pos += 2
                close_tag = self._read_name()
                if close_tag != tag:
                    raise self._fail(
                        f"Mismatched close tag </{close_tag}> for <{tag}>"
                    )
                self._skip_whitespace()
                self._expect(">")
                flush_text()
                self._strip_ignorable_whitespace(node)
                return
            if self._startswith("<!--"):
                self._skip_comment()
            elif self._startswith("<![CDATA["):
                end = self.source.find("]]>", self.pos)
                if end == -1:
                    raise self._fail("Unterminated CDATA section")
                text_parts.append(self.source[self.pos + 9 : end])
                self.pos = end + 3
            elif self._startswith("<?"):
                self._skip_processing_instruction()
            elif self._startswith("<"):
                flush_text()
                node.append(self._parse_element())
            else:
                next_tag = self.source.find("<", self.pos)
                if next_tag == -1:
                    raise self._fail(f"Unclosed element <{tag}>")
                raw = self.source[self.pos : next_tag]
                self.pos = next_tag
                text_parts.append(self._expand_entities(raw))

    @staticmethod
    def _strip_ignorable_whitespace(node: Element) -> None:
        """Drop whitespace-only T-children when element siblings exist."""
        has_element_child = any(isinstance(c, Element) for c in node.children)
        if not has_element_child:
            return
        node.children = [
            child
            for child in node.children
            if not (isinstance(child, Text) and not child.text.strip())
        ]


def parse_document(source: str) -> Element:
    """Parse an XML document string into an :class:`Element` tree."""
    return _Parser(source).parse_document()


def parse_file(path: str) -> Element:
    """Parse the XML document stored at ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_document(handle.read())
