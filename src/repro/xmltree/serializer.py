"""Serialization of the XML data model back to text.

Two formats are provided:

* :func:`to_string` — compact, no inserted whitespace; the inverse of
  :func:`repro.xmltree.parser.parse_document` on our model.
* :func:`to_pretty_string` — the line-oriented layout used throughout the
  paper's experiments: "each element is represented by one or more
  consecutive lines separate from other elements" (Sec. 5), which is what
  makes line diff a competitive delta encoding.
"""

from __future__ import annotations

from .model import Attribute, Element, Text


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(value: str) -> str:
    """Escape an attribute value for inclusion in double quotes."""
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _attribute_text(attributes: list[Attribute]) -> str:
    if not attributes:
        return ""
    parts = [f' {attr.name}="{escape_attribute(attr.value)}"' for attr in attributes]
    return "".join(parts)


def to_string(node: Element) -> str:
    """Serialize compactly (no indentation, no added newlines)."""
    parts: list[str] = []
    _write_compact(node, parts)
    return "".join(parts)


def _write_compact(node: Element, parts: list[str]) -> None:
    attrs = _attribute_text(node.attributes)
    if not node.children:
        parts.append(f"<{node.tag}{attrs}/>")
        return
    parts.append(f"<{node.tag}{attrs}>")
    for child in node.children:
        if isinstance(child, Text):
            parts.append(escape_text(child.text))
        else:
            _write_compact(child, parts)
    parts.append(f"</{node.tag}>")


def to_pretty_string(node: Element, indent: str = "") -> str:
    """Serialize with one element per line (or per line-group).

    Elements whose content is a single T-node are emitted on one line
    (``<fn>John</fn>``); elements with element children open and close on
    their own lines.  This is the paper's experimental layout ("each
    element is represented by one or more consecutive lines"), which is
    what makes line diff a compact delta encoding.  The default of no
    indentation keeps byte counts free of depth artifacts — the archive
    nests a few levels deeper than a version and must not be penalized
    for whitespace; pass ``indent='  '`` for human-readable output.
    """
    lines: list[str] = []
    _write_pretty(node, lines, 0, indent)
    return "\n".join(lines) + "\n"


def _escape_line_text(value: str) -> str:
    """Escape text for one-line emission: newlines become ``&#10;`` so
    the line-oriented form reparses to the exact original value."""
    return escape_text(value).replace("\n", "&#10;")


def _write_pretty(node: Element, lines: list[str], depth: int, indent: str) -> None:
    pad = indent * depth
    attrs = _attribute_text(node.attributes)
    if not node.children:
        lines.append(f"{pad}<{node.tag}{attrs}/>")
        return
    if any(isinstance(child, Text) for child in node.children):
        # Text-bearing content (text-only or mixed) stays on one line;
        # splitting it would inject whitespace that does not reparse to
        # the same value.
        parts: list[str] = []
        for child in node.children:
            if isinstance(child, Text):
                parts.append(_escape_line_text(child.text))
            else:
                parts.append(to_string(child))
        lines.append(f"{pad}<{node.tag}{attrs}>{''.join(parts)}</{node.tag}>")
        return
    lines.append(f"{pad}<{node.tag}{attrs}>")
    for child in node.children:
        _write_pretty(child, lines, depth + 1, indent)
    lines.append(f"{pad}</{node.tag}>")


def write_file(node: Element, path: str, pretty: bool = True) -> int:
    """Write ``node`` to ``path``; return the number of bytes written."""
    text = to_pretty_string(node) if pretty else to_string(node)
    data = text.encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)


def serialized_size(node: Element, pretty: bool = True) -> int:
    """Byte size of the serialized document (UTF-8)."""
    text = to_pretty_string(node) if pretty else to_string(node)
    return len(text.encode("utf-8"))
