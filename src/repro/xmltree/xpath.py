"""A small XPath evaluator for the paper's data model.

The paper's Sec. 8 argument for the XML archive representation is that
"existing XML query languages such as XQuery can be used to query such
documents".  This module makes that concrete at XPath scale: a query
engine over our Element trees — which include archives, since an
archive *is* an XML document — supporting the fragment scientific
users actually write:

* ``/db/dept/emp``         — child steps from the root;
* ``//tel``                — descendant-or-self anywhere;
* ``/db/*/emp``            — wildcard steps;
* ``/db/dept[name='x']``   — child-value predicates;
* ``//T[@t='3']``          — attribute predicates (timestamp elements!);
* ``/db/dept[2]``          — positional predicates (1-based);
* ``text()`` final step    — string values instead of nodes.

Predicates may be chained (``emp[fn='John'][ln='Doe']``).

Expressions parse into structured :class:`Step` and :class:`Predicate`
values rather than opaque closures, so other evaluators — notably the
query planner of :mod:`repro.query.plan`, which pushes key-equality
predicates down into the archive tree — can inspect what a step tests
without re-parsing.  :func:`evaluate` is the primary entry point and
returns a typed :class:`XPathResult`; :func:`xpath` is the original
callable, kept as a shim returning the bare list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

from .model import Element

#: Predicate kinds (the supported XPath fragment).
POSITION = "position"  # [2] — 1-based position among the step's candidates
ATTRIBUTE = "attribute"  # [@id='x'] — attribute equality
CHILD_VALUE = "child"  # [name='x'] — child element text equality
TEXT_VALUE = "text"  # [text()='x'] — own text equality


class XPathError(ValueError):
    """Raised on unsupported or malformed expressions."""


@dataclass(frozen=True)
class Predicate:
    """One structured predicate of a step.

    ``kind`` is one of :data:`POSITION`, :data:`ATTRIBUTE`,
    :data:`CHILD_VALUE`, :data:`TEXT_VALUE`; ``name`` carries the
    attribute or child tag being tested (``None`` otherwise);
    ``position``/``value`` carry the compared constant.
    """

    kind: str
    name: str | None = None
    value: str = ""
    position: int = 0

    def matches(self, node: Element, index: int) -> bool:
        if self.kind == POSITION:
            return index == self.position
        if self.kind == ATTRIBUTE:
            assert self.name is not None
            return node.get_attribute(self.name) == self.value
        if self.kind == TEXT_VALUE:
            return node.text_content() == self.value
        assert self.kind == CHILD_VALUE and self.name is not None
        return any(
            child.text_content() == self.value
            for child in node.find_all(self.name)
        )

    def __str__(self) -> str:
        if self.kind == POSITION:
            return f"[{self.position}]"
        if self.kind == ATTRIBUTE:
            return f"[@{self.name}={self.value!r}]"
        if self.kind == TEXT_VALUE:
            return f"[text()={self.value!r}]"
        return f"[{self.name}={self.value!r}]"


@dataclass(frozen=True)
class Step:
    """One location step: an axis, a name test and its predicates."""

    axis: str  # 'child' or 'descendant'
    name: str  # tag name, '*' or 'text()'
    predicates: tuple[Predicate, ...] = field(default=())

    def __str__(self) -> str:
        prefix = "//" if self.axis == "descendant" else "/"
        return prefix + self.name + "".join(str(p) for p in self.predicates)


def _parse_predicate(text: str) -> Predicate:
    body = text.strip()
    if body.isdigit():
        position = int(body)
        if position < 1:
            raise XPathError(f"Positional predicate must be >= 1: [{body}]")
        return Predicate(kind=POSITION, position=position)
    if "=" not in body:
        raise XPathError(f"Unsupported predicate [{body}]")
    left, right = body.split("=", 1)
    left = left.strip()
    right = right.strip()
    if not (
        (right.startswith("'") and right.endswith("'"))
        or (right.startswith('"') and right.endswith('"'))
    ):
        raise XPathError(f"Predicate value must be quoted: [{body}]")
    value = right[1:-1]
    if left.startswith("@"):
        return Predicate(kind=ATTRIBUTE, name=left[1:], value=value)
    if left == "text()":
        return Predicate(kind=TEXT_VALUE, value=value)
    return Predicate(kind=CHILD_VALUE, name=left, value=value)


def _split_predicates(step_text: str) -> tuple[str, tuple[Predicate, ...]]:
    name_end = step_text.find("[")
    if name_end == -1:
        return step_text, ()
    name = step_text[:name_end]
    predicates: list[Predicate] = []
    rest = step_text[name_end:]
    while rest:
        if not rest.startswith("["):
            raise XPathError(f"Malformed predicates in step {step_text!r}")
        depth = 0
        for position, char in enumerate(rest):
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth == 0:
                    predicates.append(_parse_predicate(rest[1:position]))
                    rest = rest[position + 1 :]
                    break
        else:
            raise XPathError(f"Unbalanced predicate in step {step_text!r}")
    return name, tuple(predicates)


def parse_steps(expression: str) -> list[Step]:
    """Parse an expression into its location steps.

    Shared by :func:`evaluate` and the query planner; raises
    :class:`XPathError` on relative paths or malformed steps.
    """
    text = expression.strip()
    if not text.startswith("/"):
        raise XPathError(f"Only absolute paths are supported: {expression!r}")
    steps: list[Step] = []
    index = 0
    length = len(text)
    while index < length:
        if text.startswith("//", index):
            axis = "descendant"
            index += 2
        elif text.startswith("/", index):
            axis = "child"
            index += 1
        else:
            raise XPathError(f"Expected '/' at offset {index} in {expression!r}")
        depth = 0
        start = index
        while index < length:
            char = text[index]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == "/" and depth == 0:
                break
            index += 1
        step_text = text[start:index]
        if not step_text:
            raise XPathError(f"Empty step in {expression!r}")
        name, predicates = _split_predicates(step_text)
        steps.append(Step(axis=axis, name=name, predicates=predicates))
    return steps


def match_name(node: Element, name: str) -> bool:
    """The name test of a step (``*`` matches every element)."""
    return name == "*" or node.tag == name


def apply_steps(contexts: list[Element], steps: Sequence[Step]) -> list[Element]:
    """Apply location steps to a list of context elements.

    The building block of :func:`evaluate`, exposed so the archive
    query executor can delegate sub-expressions to the element world
    (e.g. below the frontier, where the archive stores plain content).
    Results are deduplicated in first-occurrence order, as descendant
    axes over nested contexts can reach the same node twice.
    """
    current = contexts
    for step in steps:
        current = _apply_step(current, step)
    return current


def _apply_step(nodes: list[Element], step: Step) -> list[Element]:
    # Gather candidates per context node so positional predicates see
    # sibling-relative positions, then filter.
    results: list[Element] = []
    seen: set[int] = set()
    for context in nodes:
        if step.axis == "child":
            candidates = [
                child
                for child in context.element_children()
                if match_name(child, step.name)
            ]
        else:
            candidates = [
                node
                for node in context.iter_elements()
                if match_name(node, step.name)
            ]
        position = 0
        for candidate in candidates:
            position += 1
            if all(pred.matches(candidate, position) for pred in step.predicates):
                if id(candidate) not in seen:
                    seen.add(id(candidate))
                    results.append(candidate)
    return results


class XPathResult(Sequence):
    """A typed, sequence-shaped query result.

    ``kind`` is ``'elements'`` or ``'strings'`` (the latter for
    expressions ending in ``text()``).  The class fixes the old
    ``list[Element] | list[str]`` mixed return type: callers that need
    one kind ask for :attr:`elements` or :attr:`strings` and get a
    clear :class:`XPathError` instead of an ``AttributeError`` deep in
    their own code when the expression returned the other kind.
    """

    __slots__ = ("items", "kind")

    ELEMENTS = "elements"
    STRINGS = "strings"

    def __init__(
        self, items: Union[list[Element], list[str]], kind: str
    ) -> None:
        if kind not in (self.ELEMENTS, self.STRINGS):
            raise XPathError(f"Unknown result kind {kind!r}")
        self.items = items
        self.kind = kind

    @property
    def elements(self) -> list[Element]:
        """The matched elements; raises unless ``kind == 'elements'``."""
        if self.kind != self.ELEMENTS:
            raise XPathError(
                "Query returned strings (text() step), not elements"
            )
        return self.items  # type: ignore[return-value]

    @property
    def strings(self) -> list[str]:
        """The matched string values; raises unless ``kind == 'strings'``."""
        if self.kind != self.STRINGS:
            raise XPathError("Query returned elements, not strings")
        return self.items  # type: ignore[return-value]

    def first(self):
        """The first item, or ``None`` when the result is empty."""
        return self.items[0] if self.items else None

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def __iter__(self) -> Iterator:
        return iter(self.items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, XPathResult):
            return self.kind == other.kind and self.items == other.items
        if isinstance(other, list):
            return self.items == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"XPathResult(kind={self.kind!r}, items={self.items!r})"


def split_text_step(steps: list[Step]) -> tuple[list[Step], bool]:
    """Strip a final ``text()`` step, validating its shape.

    Returns ``(element_steps, want_text)``; shared with the planner so
    both evaluators agree on what a trailing ``text()`` may look like.
    """
    if not steps:
        raise XPathError("Empty expression")
    want_text = steps[-1].name == "text()"
    if not want_text:
        return steps, False
    text_step = steps[-1]
    if text_step.predicates:
        raise XPathError("text() takes no predicates")
    if text_step.axis != "child":
        raise XPathError("text() must be a child step")
    remaining = steps[:-1]
    if not remaining:
        raise XPathError("text() needs a preceding element step")
    return remaining, True


def evaluate_steps(root: Element, steps: Sequence[Step]) -> list[Element]:
    """Evaluate parsed element steps against a document root.

    The first step must match the document root (as in XPath, where the
    root element is the single child of the document node); the
    planner's snapshot fallback uses this to run a compiled plan's raw
    steps over a materialized snapshot.
    """
    if not steps:
        raise XPathError("Empty expression")
    first = steps[0]
    if first.axis == "child":
        current = (
            [root]
            if match_name(root, first.name)
            and all(pred.matches(root, 1) for pred in first.predicates)
            else []
        )
    else:
        current = _apply_step([virtual_shell(root)], first)
    return apply_steps(current, steps[1:])


def evaluate(root: Element, expression: str) -> XPathResult:
    """Evaluate an XPath expression against a document.

    The first step must match the document root (as in XPath, where the
    root element is the single child of the document node).  A final
    ``text()`` step yields a string result; otherwise elements.
    """
    steps, want_text = split_text_step(parse_steps(expression))
    current = evaluate_steps(root, steps)
    if want_text:
        return XPathResult([node.text_content() for node in current], XPathResult.STRINGS)
    return XPathResult(current, XPathResult.ELEMENTS)


def virtual_shell(root: Element) -> Element:
    """A throwaway document node above ``root``.

    Makes descendant-or-self axes include the root itself without
    re-parenting it (the shell bypasses :meth:`Element.append`).
    """
    shell = Element("#document")
    shell.children = [root]  # no re-parenting; shell is throwaway
    return shell


def xpath(root: Element, expression: str) -> Union[list[Element], list[str]]:
    """Backward-compatible shim over :func:`evaluate`.

    Returns the bare item list with the historical mixed
    ``list[Element] | list[str]`` type; new code should call
    :func:`evaluate` and use the typed :class:`XPathResult`.
    """
    return evaluate(root, expression).items


def xpath_first(root: Element, expression: str):
    """First result of :func:`xpath`, or ``None``."""
    return evaluate(root, expression).first()
