"""A small XPath evaluator for the paper's data model.

The paper's Sec. 8 argument for the XML archive representation is that
"existing XML query languages such as XQuery can be used to query such
documents".  This module makes that concrete at XPath scale: a query
engine over our Element trees — which include archives, since an
archive *is* an XML document — supporting the fragment scientific
users actually write:

* ``/db/dept/emp``         — child steps from the root;
* ``//tel``                — descendant-or-self anywhere;
* ``/db/*/emp``            — wildcard steps;
* ``/db/dept[name='x']``   — child-value predicates;
* ``//T[@t='3']``          — attribute predicates (timestamp elements!);
* ``/db/dept[2]``          — positional predicates (1-based);
* ``text()`` final step    — string values instead of nodes.

Predicates may be chained (``emp[fn='John'][ln='Doe']``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from .model import Element


class XPathError(ValueError):
    """Raised on unsupported or malformed expressions."""


Predicate = Callable[[Element, int], bool]


@dataclass
class _Step:
    axis: str  # 'child' or 'descendant'
    name: str  # tag name, '*' or 'text()'
    predicates: list[Predicate]


def _parse_predicate(text: str) -> Predicate:
    body = text.strip()
    if body.isdigit():
        position = int(body)
        if position < 1:
            raise XPathError(f"Positional predicate must be >= 1: [{body}]")
        return lambda node, index: index == position
    if "=" not in body:
        raise XPathError(f"Unsupported predicate [{body}]")
    left, right = body.split("=", 1)
    left = left.strip()
    right = right.strip()
    if not (
        (right.startswith("'") and right.endswith("'"))
        or (right.startswith('"') and right.endswith('"'))
    ):
        raise XPathError(f"Predicate value must be quoted: [{body}]")
    value = right[1:-1]
    if left.startswith("@"):
        name = left[1:]
        return lambda node, index: node.get_attribute(name) == value
    if left == "text()":
        return lambda node, index: node.text_content() == value
    return lambda node, index: any(
        child.text_content() == value for child in node.find_all(left)
    )


def _split_predicates(step_text: str) -> tuple[str, list[Predicate]]:
    name_end = step_text.find("[")
    if name_end == -1:
        return step_text, []
    name = step_text[:name_end]
    predicates: list[Predicate] = []
    rest = step_text[name_end:]
    while rest:
        if not rest.startswith("["):
            raise XPathError(f"Malformed predicates in step {step_text!r}")
        depth = 0
        for position, char in enumerate(rest):
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
                if depth == 0:
                    predicates.append(_parse_predicate(rest[1:position]))
                    rest = rest[position + 1 :]
                    break
        else:
            raise XPathError(f"Unbalanced predicate in step {step_text!r}")
    return name, predicates


def _parse(expression: str) -> list[_Step]:
    text = expression.strip()
    if not text.startswith("/"):
        raise XPathError(f"Only absolute paths are supported: {expression!r}")
    steps: list[_Step] = []
    index = 0
    length = len(text)
    while index < length:
        if text.startswith("//", index):
            axis = "descendant"
            index += 2
        elif text.startswith("/", index):
            axis = "child"
            index += 1
        else:
            raise XPathError(f"Expected '/' at offset {index} in {expression!r}")
        depth = 0
        start = index
        while index < length:
            char = text[index]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == "/" and depth == 0:
                break
            index += 1
        step_text = text[start:index]
        if not step_text:
            raise XPathError(f"Empty step in {expression!r}")
        name, predicates = _split_predicates(step_text)
        steps.append(_Step(axis=axis, name=name, predicates=predicates))
    return steps


def _match_name(node: Element, name: str) -> bool:
    return name == "*" or node.tag == name


def _apply_step(nodes: list[Element], step: _Step) -> list[Element]:
    # Gather candidates per context node so positional predicates see
    # sibling-relative positions, then filter.
    results: list[Element] = []
    seen: set[int] = set()
    for context in nodes:
        if step.axis == "child":
            candidates = [
                child
                for child in context.element_children()
                if _match_name(child, step.name)
            ]
        else:
            candidates = [
                node
                for node in context.iter_elements()
                if _match_name(node, step.name)
            ]
        position = 0
        for candidate in candidates:
            position += 1
            if all(pred(candidate, position) for pred in step.predicates):
                if id(candidate) not in seen:
                    seen.add(id(candidate))
                    results.append(candidate)
    return results


def xpath(root: Element, expression: str) -> Union[list[Element], list[str]]:
    """Evaluate an XPath expression against a document.

    The first step must match the document root (as in XPath, where the
    root element is the single child of the document node).  A final
    ``text()`` step returns string values; otherwise elements.
    """
    steps = _parse(expression)
    if not steps:
        raise XPathError("Empty expression")
    want_text = steps and steps[-1].name == "text()"
    if want_text:
        text_step = steps.pop()
        if text_step.predicates:
            raise XPathError("text() takes no predicates")
        if text_step.axis != "child":
            raise XPathError("text() must be a child step")
    if not steps:
        raise XPathError("text() needs a preceding element step")

    first = steps[0]
    if first.axis == "child":
        current = (
            [root]
            if _match_name(root, first.name)
            and all(pred(root, 1) for pred in first.predicates)
            else []
        )
    else:
        current = _apply_step([_virtual_root(root)], first)
    for step in steps[1:]:
        current = _apply_step(current, step)
    if want_text:
        return [node.text_content() for node in current]
    return current


def _virtual_root(root: Element) -> Element:
    shell = Element("#document")
    shell.children = [root]  # no re-parenting; shell is throwaway
    return shell


def xpath_first(root: Element, expression: str):
    """First result of :func:`xpath`, or ``None``."""
    results = xpath(root, expression)
    return results[0] if results else None
