"""Canonical form of an XML value (Sec. 4.3).

The canonical form is a deterministic string such that two values are
value equal exactly when their canonical strings are equal:

    ``V =v V'  ⟺  C_V = C_V'``

Following W3C Canonical XML in spirit (and the paper's use of it), the
canonicalizer sorts attributes by name, uses explicit open/close tags
(never the empty-element form), escapes a fixed character set, and emits
no inter-element whitespace (the paper's model ignores it; footnote 3).
"""

from __future__ import annotations

from typing import Union

from .model import Attribute, Element, Text
from .serializer import escape_attribute, escape_text

Value = Union[Element, Text, Attribute]


def canonical_form(value: Value) -> str:
    """Return the canonical string of an XML value."""
    parts: list[str] = []
    _write(value, parts)
    return "".join(parts)


def canonical_form_of_children(node: Element) -> str:
    """Canonical string of a node's *content* (its ordered E/T children).

    Key path values and frontier-node contents are XML values rooted
    *under* a node, so equality must ignore the enclosing tag.
    """
    parts: list[str] = []
    for child in node.children:
        _write(child, parts)
    return "".join(parts)


def _write(value: Value, parts: list[str]) -> None:
    if isinstance(value, Text):
        parts.append(escape_text(value.text))
        return
    if isinstance(value, Attribute):
        parts.append(f'@{value.name}="{escape_attribute(value.value)}"')
        return
    attrs = sorted(value.attributes, key=lambda attr: attr.name)
    attr_text = "".join(
        f' {attr.name}="{escape_attribute(attr.value)}"' for attr in attrs
    )
    parts.append(f"<{value.tag}{attr_text}>")
    for child in value.children:
        _write(child, parts)
    parts.append(f"</{value.tag}>")
