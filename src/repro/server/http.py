"""The ``xarchd`` wire layer: stdlib HTTP, streaming NDJSON responses.

Routes (all answers are ``application/x-ndjson`` unless noted)::

    GET  /healthz                                     liveness (plain JSON)
    GET  /archives                                    listing (plain JSON)
    GET  /archives/{name}/stats
    GET  /archives/{name}/versions
    GET  /archives/{name}/history?path=KEYPATH
    GET  /archives/{name}/at/{v}/select?xpath=EXPR    v: integer or 'latest'
    GET  /archives/{name}/between/{a}/{b}/changes[?prefix=KEYPATH]
    POST /archives/{name}/ingest                      NDJSON {"xml": ...} lines

Streaming responses are chunked-transfer NDJSON: zero or more
``{"item": ...}`` lines followed by exactly one ``{"done": {...}}``
line carrying the result count, the pinned generation, the query's
work accounting, and a ``cache`` record (whether the snapshot reused
an open pin, plus pin-cache and decoded-chunk-cache hit/miss/eviction
counters).  Two response headers make the snapshot observable
before the body streams: ``X-Archive-Generation`` (the pinned
generation every item was answered from) and ``X-Result-Kind``
(``elements`` / ``strings`` / ``changes`` — the
:class:`~repro.query.result.QueryResult` kind, so clients type items
without sniffing).

Failures never tear a stream: the service layer materializes the whole
answer under its snapshot pin *before* the status line is sent, so
every error — unknown archive, bad version, detected corruption —
arrives as a proper status code with the structured
:mod:`repro.server.errors` body.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from ..storage.cache import chunk_cache
from ..xmltree.parser import parse_document
from ..xmltree.serializer import to_string
from .errors import ApiError, error_body
from .service import ArchiveService, Snapshot

#: Cap on ingest request bodies (64 MiB): a runaway upload should fail
#: fast, not exhaust the server.
MAX_INGEST_BYTES = 64 * 1024 * 1024

NDJSON = "application/x-ndjson"


class XarchdServer(ThreadingHTTPServer):
    """One thread per request; the service carries the shared state
    (writer locks), so handler threads stay stateless."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: ArchiveService, *, quiet: bool = True):
        super().__init__(address, XarchdHandler)
        self.service = service
        self.quiet = quiet


class XarchdHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "xarchd/1.0"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> ArchiveService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, *, extra_headers: Optional[dict] = None
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_body(self, error: BaseException, archive: Optional[str]) -> None:
        payload = error_body(error, archive=archive)
        self._send_json(payload["error"]["status"], payload)

    def _stream_ndjson(
        self, snapshot: Snapshot, kind: str, items: list, done: dict
    ) -> None:
        """Chunked NDJSON: one chunk per item line, one for the done line."""
        self.send_response(200)
        self.send_header("Content-Type", NDJSON)
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("X-Archive-Generation", str(snapshot.generation))
        self.send_header("X-Result-Kind", kind)
        self.end_headers()
        for item in items:
            self._write_chunk(
                json.dumps({"item": item}, ensure_ascii=False).encode("utf-8")
                + b"\n"
            )
        done_record = dict(done)
        done_record.setdefault("count", len(items))
        done_record.setdefault("generation", snapshot.generation)
        done_record.setdefault("last_version", snapshot.last_version)
        cache = chunk_cache()
        done_record.setdefault(
            "cache",
            {
                # Whether this request's snapshot reused an open pin,
                # plus the server-lifetime pin/chunk cache counters.
                "snapshot_reused": snapshot.cached,
                "pin_hits": self.service.pins.hits,
                "pin_misses": self.service.pins.misses,
                "pin_evictions": self.service.pins.evictions,
                "chunk_hits": cache.hits,
                "chunk_misses": cache.misses,
                "chunk_evictions": cache.evictions,
            },
        )
        self._write_chunk(
            json.dumps({"done": done_record}).encode("utf-8") + b"\n"
        )
        self.wfile.write(b"0\r\n\r\n")

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")

    def _query_param(self, query: dict, key: str) -> Optional[str]:
        values = query.get(key)
        return values[0] if values else None

    # -- routing -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler convention)
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        query = parse_qs(url.query)
        archive: Optional[str] = None
        try:
            if parts == ["healthz"]:
                self._send_json(
                    200,
                    {
                        "status": "ok",
                        "archives": len(self.service.list_archives()),
                    },
                )
                return
            if parts == ["archives"]:
                self._send_json(200, {"archives": self.service.list_archives()})
                return
            if len(parts) >= 2 and parts[0] == "archives":
                archive = parts[1]
                rest = parts[2:]
                if rest == ["stats"]:
                    self._get_stats(archive)
                    return
                if rest == ["versions"]:
                    self._get_versions(archive)
                    return
                if rest == ["history"]:
                    self._get_history(archive, self._query_param(query, "path"))
                    return
                if len(rest) == 3 and rest[0] == "at" and rest[2] == "select":
                    self._get_select(
                        archive, rest[1], self._query_param(query, "xpath")
                    )
                    return
                if (
                    len(rest) == 4
                    and rest[0] == "between"
                    and rest[3] == "changes"
                ):
                    self._get_changes(
                        archive,
                        rest[1],
                        rest[2],
                        self._query_param(query, "prefix"),
                    )
                    return
                if rest == ["ingest"]:
                    raise ApiError(
                        "method-not-allowed", "ingest requires POST"
                    )
            raise ApiError("not-found", f"No route for GET {url.path!r}")
        except BrokenPipeError:
            pass  # client went away mid-stream; nothing to answer
        except BaseException as error:
            self._send_error_body(error, archive)

    def do_POST(self) -> None:  # noqa: N802
        url = urlsplit(self.path)
        parts = [part for part in url.path.split("/") if part]
        archive: Optional[str] = None
        try:
            if len(parts) == 3 and parts[0] == "archives" and parts[2] == "ingest":
                archive = parts[1]
                self._post_ingest(archive)
                return
            raise ApiError("not-found", f"No route for POST {url.path!r}")
        except BrokenPipeError:
            pass
        except BaseException as error:
            self._send_error_body(error, archive)

    # -- endpoints ---------------------------------------------------------

    def _get_select(
        self, archive: str, version_token: str, xpath: Optional[str]
    ) -> None:
        if not xpath:
            raise ApiError("bad-request", "select requires ?xpath=EXPR")

        def run(snapshot: Snapshot):
            version = snapshot.resolve_version(version_token)
            result = snapshot.db.at(version).select(xpath)
            items = [
                item if isinstance(item, str) else to_string(item)
                for item in result
            ]
            return version, result.kind, items, asdict(result.stats)

        snapshot, (version, kind, items, stats) = self.service.read(
            archive, run
        )
        self._stream_ndjson(
            snapshot, kind, items, {"version": version, "stats": stats}
        )

    def _get_changes(
        self,
        archive: str,
        from_token: str,
        to_token: str,
        prefix: Optional[str],
    ) -> None:
        def run(snapshot: Snapshot):
            from_version = snapshot.resolve_version(from_token)
            to_version = snapshot.resolve_version(to_token)
            changes = snapshot.db.between(from_version, to_version).changes(
                prefix
            )
            items = [
                {
                    "kind": change.kind,
                    "path": change.path,
                    "old_content": change.old_content,
                    "new_content": change.new_content,
                }
                for change in changes
            ]
            return from_version, to_version, items

        snapshot, (from_version, to_version, items) = self.service.read(
            archive, run
        )
        self._stream_ndjson(
            snapshot,
            "changes",
            items,
            {"from_version": from_version, "to_version": to_version},
        )

    def _get_history(self, archive: str, path: Optional[str]) -> None:
        if not path:
            raise ApiError("bad-request", "history requires ?path=KEYPATH")

        def run(snapshot: Snapshot):
            history = snapshot.db.history(path)
            return {
                "path": history.path,
                "existence": history.existence.to_text(),
                "changes": (
                    [
                        [timestamps.to_text(), content]
                        for timestamps, content in history.changes
                    ]
                    if history.changes is not None
                    else None
                ),
            }

        snapshot, item = self.service.read(archive, run)
        self._stream_ndjson(snapshot, "elements", [item], {})

    def _get_versions(self, archive: str) -> None:
        def run(snapshot: Snapshot):
            return {
                "versions": snapshot.db.versions().to_text(),
                "last_version": snapshot.last_version,
            }

        snapshot, item = self.service.read(archive, run)
        self._stream_ndjson(snapshot, "elements", [item], {})

    def _get_stats(self, archive: str) -> None:
        def run(snapshot: Snapshot):
            stats = snapshot.backend.stats()
            record = asdict(stats)
            record["compression_ratio"] = stats.compression_ratio
            record["backend"] = snapshot.backend.kind
            record["codec"] = snapshot.backend.codec.name
            return record

        snapshot, item = self.service.read(archive, run)
        self._stream_ndjson(snapshot, "elements", [item], {})

    def _post_ingest(self, archive: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError(
                "bad-request", "ingest requires a Content-Length body"
            )
        if length > MAX_INGEST_BYTES:
            raise ApiError(
                "bad-request",
                f"Ingest body of {length} bytes exceeds the "
                f"{MAX_INGEST_BYTES}-byte cap",
            )
        body = self.rfile.read(length)
        documents = []
        for line_number, raw in enumerate(body.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ApiError(
                    "bad-payload",
                    f"Ingest line {line_number} is not JSON: {error}",
                )
            if not isinstance(record, dict) or "xml" not in record:
                raise ApiError(
                    "bad-payload",
                    f'Ingest line {line_number} must be {{"xml": "..."}}',
                )
            # XMLSyntaxError propagates and classifies as bad-payload.
            documents.append(parse_document(record["xml"]))
        report = self.service.ingest(archive, documents)
        self._send_json(
            200,
            report,
            extra_headers={"X-Archive-Generation": report["generation"]},
        )


def make_server(
    root: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    quiet: bool = True,
) -> XarchdServer:
    """A ready-to-run server (``port=0`` binds an ephemeral port —
    the tests' and benchmarks' entry point)."""
    service = ArchiveService(root, workers=workers)
    return XarchdServer((host, port), service, quiet=quiet)


def serve(
    root: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8400,
    workers: int = 1,
    quiet: bool = False,
) -> None:
    """Run the server until interrupted (the ``xarchd serve`` command)."""
    server = make_server(
        root, host=host, port=port, workers=workers, quiet=quiet
    )
    address = server.server_address
    print(f"xarchd: serving {root} on http://{address[0]}:{address[1]}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()


def run_in_thread(server: XarchdServer) -> threading.Thread:
    """Start ``server`` on a daemon thread (tests and benchmarks)."""
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread
