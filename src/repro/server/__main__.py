"""``python -m repro.server`` — the ``xarchd`` entry point."""

from .cli import main

raise SystemExit(main())
