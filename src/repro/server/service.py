"""Snapshot-pinned reads and serialized writes over a directory of archives.

The concurrency model ``xarchd`` promises:

* **Single writer.**  Every ingest against one archive serializes
  through a per-archive :class:`threading.Lock` and publishes through
  the backend's existing WAL commit point, so at most one generation is
  ever in flight.

* **Snapshot-isolated readers.**  A read request *pins* the archive by
  opening a private, recovery-free backend (``open_archive(...,
  recover=False)``): the manifest read at open fixes the generation and
  version count, and the checksum sidecar read at open fixes the byte
  view every subsequent payload read is verified against.  The store is
  append-mostly — a published generation only extends timestamps and
  appends content — so an answer at any version the pin covers is
  byte-identical in every later generation.  Torn *logical* reads are
  therefore impossible; the only cross-generation race left is
  physical: a payload republished between the pin and a read no longer
  hashes to the pinned checksum view and surfaces as
  :class:`~repro.storage.integrity.IntegrityError` although nothing is
  corrupt.  :meth:`ArchiveService.read` reconciles that race by
  re-pinning and retrying the whole (idempotent, generation-invariant)
  read a bounded number of times, then — last resort, since a writer
  publishing continuously can outrun lock-free retries — once more
  while holding the writer lock, where no publish can race it.  What
  still fails there is real corruption and propagates to the error
  taxonomy.

* **No reader-side recovery.**  A plain ``open_archive`` replays WAL
  recovery, which from a reader thread could roll back the writer's
  in-flight staged commit; the ``recover=False`` snapshot path skips it
  (the writer, which holds the lock, recovers on its own opens).

* **Shared pins.**  Requests that land on the same published
  generation share one open backend through a refcounted
  ``(archive, generation)`` LRU (:class:`_PinCache`) instead of
  re-opening per request; snapshot opens also share decoded chunks
  through the process-wide cache of :mod:`repro.storage.cache`.  A
  publish moves the generation, so new requests stop acquiring the old
  pin immediately; eviction waits for in-flight readers, then drops
  the backend's caches and closes it.

Read callbacks must *fully materialize* their answer before returning
— the pin is released when the callback does, and laziness would leak
reads past it.  The HTTP layer streams the materialized answer to the
client afterwards; serialization cannot fail mid-stream.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, TypeVar

from ..query.db import ArchiveDB
from ..storage.backend import (
    StorageBackend,
    keys_location,
    manifest_location,
    open_archive,
    read_manifest,
)
from ..storage.integrity import IntegrityError, ManifestInconsistent
from ..xmltree.model import Element
from .errors import ApiError

T = TypeVar("T")

#: Sidecar suffixes that make a plain file *part of* an archive rather
#: than an archive itself, so the listing skips them.
_SIDECAR_SUFFIXES = (".manifest.json", ".keys", ".wal", ".tmp")

#: How many times a read re-pins before an IntegrityError is believed.
_RECONCILE_ATTEMPTS = 4


@dataclass
class Snapshot:
    """One pinned, read-only view of an archive.

    ``generation`` and ``last_version`` come from the manifest the
    backend read at open; every payload read through ``db`` verifies
    against the checksum view of the same open.  The attributes stay
    readable after :meth:`close` — only the backend is released.
    """

    name: str
    path: str
    generation: int
    last_version: int
    backend: StorageBackend
    db: ArchiveDB
    #: Set for snapshots served from the service's pin cache: releases
    #: the cache reference instead of closing the (shared) backend.
    release: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )
    #: Whether this pin was served from an already-open cached backend.
    cached: bool = field(default=False, compare=False)

    def resolve_version(self, token: str) -> int:
        """A concrete version number for a request operand.

        ``"latest"`` resolves against the *pin*, so the answer stays on
        this snapshot's generation even if the writer publishes more
        versions mid-request.
        """
        if token == "latest":
            if self.last_version == 0:
                raise ApiError(
                    "version-not-archived",
                    f"Archive {self.name!r} is empty (no versions yet)",
                )
            return self.last_version
        try:
            return int(token)
        except ValueError:
            raise ApiError(
                "bad-request",
                f"Version operand {token!r} is neither an integer nor 'latest'",
            )

    def close(self) -> None:
        if self.release is not None:
            self.release()
        else:
            self.backend.close()


class _PinCache:
    """Refcounted LRU of open snapshot backends, one per
    ``(archive, generation)``.

    PR 9's reader path re-opened the archive — manifest, checksum
    sidecar, WAL probe — on *every* request, even when the pinned
    generation had not moved.  Concurrent readers at one generation now
    share a single open backend (safe: snapshot backends are read-only,
    and their decoded state is idempotent under the GIL), so repeat
    reads skip the open cost entirely and share decoded chunks through
    the process-wide cache.

    A new generation gets a new key, so stale entries stop being
    acquired the moment a publish lands; they are closed once their
    in-flight readers release them and the LRU trims past ``capacity``.
    Eviction calls the backend's ``drop_caches()`` before ``close()``
    so reader memory stays bounded by ``capacity`` live generations
    plus whatever the byte-budgeted decoded-chunk cache holds.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(0, int(capacity))
        self._lock = threading.Lock()
        #: ``(name, generation) -> [backend, db, refs]``
        self._entries: "OrderedDict[tuple[str, int], list]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _close(entry: list) -> None:
        entry[0].drop_caches()
        entry[0].close()

    def _trim(self) -> None:
        # Close least-recently-used idle entries beyond capacity; busy
        # entries (refs > 0) cannot close and are skipped — the map may
        # briefly exceed capacity while every entry is in flight.
        while len(self._entries) > self.capacity:
            victim = None
            for key, entry in self._entries.items():
                if entry[2] == 0:
                    victim = key
                    break
            if victim is None:
                return
            entry = self._entries.pop(victim)
            self.evictions += 1
            self._close(entry)

    def acquire(self, key: tuple[str, int]) -> Optional[list]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            entry[2] += 1
            self.hits += 1
            return entry

    def install(self, key: tuple[str, int], backend: StorageBackend) -> list:
        """Adopt a freshly-opened backend (or join a racing install)."""
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                # Another thread installed the same pin while this one
                # was opening; join theirs and drop the duplicate open.
                existing[2] += 1
                self._entries.move_to_end(key)
                backend.close()
                return existing
            entry = [backend, ArchiveDB(backend), 1]
            self._entries[key] = entry
            self._trim()
            return entry

    def release(self, key: tuple[str, int], entry: list) -> None:
        with self._lock:
            entry[2] -= 1
            if self._entries.get(key) is not entry:
                # Evicted (or superseded) while in use: close once the
                # last in-flight reader lets go.
                if entry[2] == 0:
                    self._close(entry)
                return
            self._trim()

    def evict(self, name: str) -> None:
        """Drop every cached pin of one archive (reconcile path)."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == name]
            for key in doomed:
                entry = self._entries.pop(key)
                self.evictions += 1
                if entry[2] == 0:
                    self._close(entry)
                # else: release() closes it when the refcount drains.

    def clear(self) -> None:
        with self._lock:
            for entry in self._entries.values():
                if entry[2] == 0:
                    self._close(entry)
            self._entries.clear()


class ArchiveService:
    """Every served archive under one root directory, by name.

    An archive's *name* is its literal entry name under ``root`` — a
    file for the whole-file backend (``swissprot.xml``), a directory
    for the chunked/external backends (``omim-store``).  Names never
    contain path separators; anything resembling traversal is refused
    before it touches the filesystem.
    """

    def __init__(
        self,
        root: "str | os.PathLike",
        *,
        workers: int = 1,
        pin_cache_size: int = 8,
    ) -> None:
        root = os.path.abspath(os.fspath(root))
        if not os.path.isdir(root):
            raise ApiError(
                "bad-request", f"Server root {root!r} is not a directory"
            )
        self.root = root
        #: Chunk-loop parallelism handed to *writer* opens.  Snapshot
        #: opens always run ``workers=1``: a per-request process pool
        #: would cost more than any read it could speed up.
        self.workers = max(1, int(workers))
        self._locks_guard = threading.Lock()
        self._writer_locks: dict[str, threading.Lock] = {}
        #: Open snapshot backends shared across reader requests at one
        #: ``(archive, generation)``; ``pin_cache_size=0`` restores the
        #: open-per-request behaviour.
        self.pins = _PinCache(pin_cache_size)

    # -- naming ------------------------------------------------------------

    def _resolve(self, name: str) -> str:
        if (
            not name
            or name != os.path.basename(name)
            or name in (".", "..")
            or name.startswith(".")
        ):
            raise ApiError("bad-request", f"Invalid archive name {name!r}")
        path = os.path.join(self.root, name)
        if not self._is_archive(path):
            raise ApiError(
                "archive-not-found",
                f"No archive named {name!r} on this server",
            )
        return path

    @staticmethod
    def _is_archive(path: str) -> bool:
        if os.path.isdir(path):
            from ..storage.backend import detect_backend_kind
            from ..core.archive import ArchiveError

            try:
                detect_backend_kind(path)
            except ArchiveError:
                return False
            return True
        if os.path.isfile(path):
            if path.endswith(_SIDECAR_SUFFIXES):
                return False
            # A served whole-file archive carries its manifest or keys
            # sidecar (create_archive writes both); a bare stray file
            # under the root is not an archive.
            return os.path.exists(manifest_location(path)) or os.path.exists(
                keys_location(path)
            )
        return False

    def list_archives(self) -> list[dict]:
        """Name, kind and published generation of every served archive."""
        from ..storage.backend import detect_backend_kind, read_manifest

        records = []
        for entry in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, entry)
            if not self._is_archive(path):
                continue
            manifest = read_manifest(path)
            record = {"name": entry}
            if manifest is not None:
                record["kind"] = manifest.kind
                record["generation"] = manifest.generation
                record["versions"] = manifest.version_count
                record["codec"] = manifest.codec
            else:
                record["kind"] = detect_backend_kind(path)
                record["generation"] = 0
            records.append(record)
        return records

    # -- the reader path ---------------------------------------------------

    def pin(self, name: str) -> Snapshot:
        """Pin a recovery-free snapshot of one archive.

        A cheap manifest read names the published generation; when the
        pin cache already holds an open backend for ``(name,
        generation)``, the request shares it (refcounted) instead of
        re-opening the archive.  Misses — and manifest-less archives,
        whose generation cannot be pinned by key — open privately, the
        opened backend joining the cache on the miss path.
        """
        path = self._resolve(name)
        if self.pins.capacity > 0:
            try:
                manifest = read_manifest(path)
            except ManifestInconsistent:
                manifest = None
            if manifest is not None:
                key = (name, manifest.generation)
                entry = self.pins.acquire(key)
                cached = entry is not None
                if entry is None:
                    backend = open_archive(path, workers=1, recover=False)
                    # The writer may have published between the manifest
                    # read and the open; key by what the open saw.
                    key = (name, backend.generation)
                    entry = self.pins.install(key, backend)
                backend, db, _ = entry
                return Snapshot(
                    name=name,
                    path=path,
                    generation=backend.generation,
                    last_version=backend.last_version,
                    backend=backend,
                    db=db,
                    release=lambda: self.pins.release(key, entry),
                    cached=cached,
                )
        backend = open_archive(path, workers=1, recover=False)
        return Snapshot(
            name=name,
            path=path,
            generation=backend.generation,
            last_version=backend.last_version,
            backend=backend,
            db=ArchiveDB(backend),
        )

    def read(
        self, name: str, fn: Callable[[Snapshot], T]
    ) -> tuple[Snapshot, T]:
        """Run one fully-materializing read callback against a pin.

        Returns the snapshot (already closed) alongside the value, so
        the caller can report the generation the answer came from.  On
        :class:`IntegrityError` the read re-pins and retries — the
        checksum-reconcile loop described in the module docstring —
        because reads are generation-invariant for any version their
        pin covers.  After ``_RECONCILE_ATTEMPTS`` lock-free tries the
        final attempt runs under the writer lock, which separates real
        corruption (still fails, propagates) from a relentless writer
        (cannot race a locked read).
        """
        for attempt in range(_RECONCILE_ATTEMPTS):
            try:
                # The pin itself can race a publish too (sidecar read,
                # then a payload verified during open), so it sits
                # inside the retried block alongside the callback.
                snapshot = self.pin(name)
                try:
                    return snapshot, fn(snapshot)
                finally:
                    snapshot.close()
            except IntegrityError:
                # A cached pin whose byte view went stale must not be
                # handed to the retry (or any other reader) again.
                self.pins.evict(name)
                # Let an in-flight publish finish renaming before the
                # next pin re-reads manifest + checksums + payloads.
                time.sleep(0.005 * (attempt + 1))
        # A writer publishing continuously can outrun every lock-free
        # retry.  The last resort holds the writer lock across the pin
        # and the read, so no publish can race it — what fails here is
        # corruption, not a race, and propagates to the taxonomy.
        with self._writer_lock(name):
            snapshot = self.pin(name)
            try:
                return snapshot, fn(snapshot)
            finally:
                snapshot.close()

    # -- the writer path ---------------------------------------------------

    def _writer_lock(self, name: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._writer_locks.get(name)
            if lock is None:
                lock = self._writer_locks[name] = threading.Lock()
            return lock

    def ingest(
        self, name: str, documents: Iterable[Optional[Element]]
    ) -> dict:
        """Merge a sequence of version documents under the writer lock.

        The backend opens with recovery enabled (the lock guarantees no
        other writer's commit can be in flight) and publishes the whole
        batch through one WAL commit, so concurrent readers observe the
        generation either entirely before or entirely after it.
        """
        documents = list(documents)
        if not documents:
            raise ApiError(
                "bad-request", "Ingest payload contained no versions"
            )
        path = self._resolve(name)
        with self._writer_lock(name):
            backend = open_archive(path, workers=self.workers)
            try:
                base = backend.last_version
                stats = backend.ingest_batch(iter(documents))
                return {
                    "ingested": stats.versions,
                    "base_version": base,
                    "last_version": backend.last_version,
                    "generation": backend.generation,
                    "merge": {
                        "nodes_matched": stats.nodes_matched,
                        "nodes_inserted": stats.nodes_inserted,
                        "frontier_content_changes": stats.frontier_content_changes,
                        "subtrees_skipped": stats.subtrees_skipped,
                        "nodes_skipped": stats.nodes_skipped,
                        "frontier_skips": stats.frontier_skips,
                    },
                }
            finally:
                backend.close()
