"""Snapshot-pinned reads and serialized writes over a directory of archives.

The concurrency model ``xarchd`` promises:

* **Single writer.**  Every ingest against one archive serializes
  through a per-archive :class:`threading.Lock` and publishes through
  the backend's existing WAL commit point, so at most one generation is
  ever in flight.

* **Snapshot-isolated readers.**  A read request *pins* the archive by
  opening a private, recovery-free backend (``open_archive(...,
  recover=False)``): the manifest read at open fixes the generation and
  version count, and the checksum sidecar read at open fixes the byte
  view every subsequent payload read is verified against.  The store is
  append-mostly — a published generation only extends timestamps and
  appends content — so an answer at any version the pin covers is
  byte-identical in every later generation.  Torn *logical* reads are
  therefore impossible; the only cross-generation race left is
  physical: a payload republished between the pin and a read no longer
  hashes to the pinned checksum view and surfaces as
  :class:`~repro.storage.integrity.IntegrityError` although nothing is
  corrupt.  :meth:`ArchiveService.read` reconciles that race by
  re-pinning and retrying the whole (idempotent, generation-invariant)
  read a bounded number of times, then — last resort, since a writer
  publishing continuously can outrun lock-free retries — once more
  while holding the writer lock, where no publish can race it.  What
  still fails there is real corruption and propagates to the error
  taxonomy.

* **No reader-side recovery.**  A plain ``open_archive`` replays WAL
  recovery, which from a reader thread could roll back the writer's
  in-flight staged commit; the ``recover=False`` snapshot path skips it
  (the writer, which holds the lock, recovers on its own opens).

Read callbacks must *fully materialize* their answer before returning
— the pin is released when the callback does, and laziness would leak
reads past it.  The HTTP layer streams the materialized answer to the
client afterwards; serialization cannot fail mid-stream.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, TypeVar

from ..query.db import ArchiveDB
from ..storage.backend import (
    StorageBackend,
    keys_location,
    manifest_location,
    open_archive,
)
from ..storage.integrity import IntegrityError
from ..xmltree.model import Element
from .errors import ApiError

T = TypeVar("T")

#: Sidecar suffixes that make a plain file *part of* an archive rather
#: than an archive itself, so the listing skips them.
_SIDECAR_SUFFIXES = (".manifest.json", ".keys", ".wal", ".tmp")

#: How many times a read re-pins before an IntegrityError is believed.
_RECONCILE_ATTEMPTS = 4


@dataclass
class Snapshot:
    """One pinned, read-only view of an archive.

    ``generation`` and ``last_version`` come from the manifest the
    backend read at open; every payload read through ``db`` verifies
    against the checksum view of the same open.  The attributes stay
    readable after :meth:`close` — only the backend is released.
    """

    name: str
    path: str
    generation: int
    last_version: int
    backend: StorageBackend
    db: ArchiveDB

    def resolve_version(self, token: str) -> int:
        """A concrete version number for a request operand.

        ``"latest"`` resolves against the *pin*, so the answer stays on
        this snapshot's generation even if the writer publishes more
        versions mid-request.
        """
        if token == "latest":
            if self.last_version == 0:
                raise ApiError(
                    "version-not-archived",
                    f"Archive {self.name!r} is empty (no versions yet)",
                )
            return self.last_version
        try:
            return int(token)
        except ValueError:
            raise ApiError(
                "bad-request",
                f"Version operand {token!r} is neither an integer nor 'latest'",
            )

    def close(self) -> None:
        self.backend.close()


class ArchiveService:
    """Every served archive under one root directory, by name.

    An archive's *name* is its literal entry name under ``root`` — a
    file for the whole-file backend (``swissprot.xml``), a directory
    for the chunked/external backends (``omim-store``).  Names never
    contain path separators; anything resembling traversal is refused
    before it touches the filesystem.
    """

    def __init__(self, root: "str | os.PathLike", *, workers: int = 1) -> None:
        root = os.path.abspath(os.fspath(root))
        if not os.path.isdir(root):
            raise ApiError(
                "bad-request", f"Server root {root!r} is not a directory"
            )
        self.root = root
        #: Chunk-loop parallelism handed to *writer* opens.  Snapshot
        #: opens always run ``workers=1``: a per-request process pool
        #: would cost more than any read it could speed up.
        self.workers = max(1, int(workers))
        self._locks_guard = threading.Lock()
        self._writer_locks: dict[str, threading.Lock] = {}

    # -- naming ------------------------------------------------------------

    def _resolve(self, name: str) -> str:
        if (
            not name
            or name != os.path.basename(name)
            or name in (".", "..")
            or name.startswith(".")
        ):
            raise ApiError("bad-request", f"Invalid archive name {name!r}")
        path = os.path.join(self.root, name)
        if not self._is_archive(path):
            raise ApiError(
                "archive-not-found",
                f"No archive named {name!r} on this server",
            )
        return path

    @staticmethod
    def _is_archive(path: str) -> bool:
        if os.path.isdir(path):
            from ..storage.backend import detect_backend_kind
            from ..core.archive import ArchiveError

            try:
                detect_backend_kind(path)
            except ArchiveError:
                return False
            return True
        if os.path.isfile(path):
            if path.endswith(_SIDECAR_SUFFIXES):
                return False
            # A served whole-file archive carries its manifest or keys
            # sidecar (create_archive writes both); a bare stray file
            # under the root is not an archive.
            return os.path.exists(manifest_location(path)) or os.path.exists(
                keys_location(path)
            )
        return False

    def list_archives(self) -> list[dict]:
        """Name, kind and published generation of every served archive."""
        from ..storage.backend import detect_backend_kind, read_manifest

        records = []
        for entry in sorted(os.listdir(self.root)):
            path = os.path.join(self.root, entry)
            if not self._is_archive(path):
                continue
            manifest = read_manifest(path)
            record = {"name": entry}
            if manifest is not None:
                record["kind"] = manifest.kind
                record["generation"] = manifest.generation
                record["versions"] = manifest.version_count
                record["codec"] = manifest.codec
            else:
                record["kind"] = detect_backend_kind(path)
                record["generation"] = 0
            records.append(record)
        return records

    # -- the reader path ---------------------------------------------------

    def pin(self, name: str) -> Snapshot:
        """Open a private, recovery-free snapshot of one archive."""
        path = self._resolve(name)
        backend = open_archive(path, workers=1, recover=False)
        return Snapshot(
            name=name,
            path=path,
            generation=backend.generation,
            last_version=backend.last_version,
            backend=backend,
            db=ArchiveDB(backend),
        )

    def read(
        self, name: str, fn: Callable[[Snapshot], T]
    ) -> tuple[Snapshot, T]:
        """Run one fully-materializing read callback against a pin.

        Returns the snapshot (already closed) alongside the value, so
        the caller can report the generation the answer came from.  On
        :class:`IntegrityError` the read re-pins and retries — the
        checksum-reconcile loop described in the module docstring —
        because reads are generation-invariant for any version their
        pin covers.  After ``_RECONCILE_ATTEMPTS`` lock-free tries the
        final attempt runs under the writer lock, which separates real
        corruption (still fails, propagates) from a relentless writer
        (cannot race a locked read).
        """
        for attempt in range(_RECONCILE_ATTEMPTS):
            try:
                # The pin itself can race a publish too (sidecar read,
                # then a payload verified during open), so it sits
                # inside the retried block alongside the callback.
                snapshot = self.pin(name)
                try:
                    return snapshot, fn(snapshot)
                finally:
                    snapshot.close()
            except IntegrityError:
                # Let an in-flight publish finish renaming before the
                # next pin re-reads manifest + checksums + payloads.
                time.sleep(0.005 * (attempt + 1))
        # A writer publishing continuously can outrun every lock-free
        # retry.  The last resort holds the writer lock across the pin
        # and the read, so no publish can race it — what fails here is
        # corruption, not a race, and propagates to the taxonomy.
        with self._writer_lock(name):
            snapshot = self.pin(name)
            try:
                return snapshot, fn(snapshot)
            finally:
                snapshot.close()

    # -- the writer path ---------------------------------------------------

    def _writer_lock(self, name: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._writer_locks.get(name)
            if lock is None:
                lock = self._writer_locks[name] = threading.Lock()
            return lock

    def ingest(
        self, name: str, documents: Iterable[Optional[Element]]
    ) -> dict:
        """Merge a sequence of version documents under the writer lock.

        The backend opens with recovery enabled (the lock guarantees no
        other writer's commit can be in flight) and publishes the whole
        batch through one WAL commit, so concurrent readers observe the
        generation either entirely before or entirely after it.
        """
        documents = list(documents)
        if not documents:
            raise ApiError(
                "bad-request", "Ingest payload contained no versions"
            )
        path = self._resolve(name)
        with self._writer_lock(name):
            backend = open_archive(path, workers=self.workers)
            try:
                base = backend.last_version
                stats = backend.ingest_batch(iter(documents))
                return {
                    "ingested": stats.versions,
                    "base_version": base,
                    "last_version": backend.last_version,
                    "generation": backend.generation,
                    "merge": {
                        "nodes_matched": stats.nodes_matched,
                        "nodes_inserted": stats.nodes_inserted,
                        "frontier_content_changes": stats.frontier_content_changes,
                        "subtrees_skipped": stats.subtrees_skipped,
                        "nodes_skipped": stats.nodes_skipped,
                        "frontier_skips": stats.frontier_skips,
                    },
                }
            finally:
                backend.close()
