"""The server's error taxonomy: typed exceptions → structured HTTP.

Mirrors the CLI's exit-code discipline (``EXIT_CORRUPT`` for detected
corruption vs 1 for usage errors) on the wire: every failure maps to a
machine-readable code from :data:`ERROR_CODES` — the same style as the
fsck ``FINDING_CODES`` registry — carried in a JSON body::

    {"error": {"code": "corruption-detected", "status": 500,
               "detail": "...", "type": "IntegrityError",
               "hint": "run 'xarch fsck <archive>'"}}

so clients branch on ``code``, never on prose.  Corruption classes
(checksum mismatches, torn WAL records, undecodable payloads) answer
500 with an fsck hint; bad requests (unknown archive, version out of
range, malformed XPath or payload) answer 404/400.
"""

from __future__ import annotations

from typing import Optional

from ..compress.xmill import XMillFormatError
from ..core.archive import ArchiveError
from ..storage.codec import CodecError
from ..storage.integrity import IntegrityError
from ..storage.wal import WalError
from ..xmltree.parser import XMLSyntaxError

#: Every machine-readable error code the server can answer with, in the
#: style of the fsck ``FINDING_CODES`` registry: code → (HTTP status,
#: one-line meaning).  Contract-tested; extend, never repurpose.
ERROR_CODES: dict[str, tuple[int, str]] = {
    "archive-not-found": (404, "No archive under that name on this server"),
    "version-not-archived": (404, "Requested version outside the archived range"),
    "not-found": (404, "No such route"),
    "method-not-allowed": (405, "Route exists but not under this HTTP method"),
    "bad-request": (400, "Malformed query, parameter or path operand"),
    "bad-payload": (400, "Ingest payload failed to parse"),
    "corruption-detected": (500, "Stored payload failed its integrity check"),
    "wal-corrupt": (500, "Write-ahead log is torn or malformed"),
    "codec-corrupt": (500, "Stored payload failed to decode"),
    "internal-error": (500, "Unclassified server-side failure"),
}

#: Codes whose response carries the scrub hint (the CLI's exit-2 class).
CORRUPTION_CODES = frozenset(
    {"corruption-detected", "wal-corrupt", "codec-corrupt"}
)

_VERSION_RANGE_MARKER = "is not in the archive"


class ApiError(Exception):
    """A failure already classified against :data:`ERROR_CODES`.

    Raised by the service layer for conditions HTTP knows about before
    any backend is touched (unknown archive, malformed operands); the
    handler converts storage-layer exceptions through
    :func:`classify_exception` instead.
    """

    def __init__(self, code: str, detail: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"Unknown error code {code!r}")
        super().__init__(detail)
        self.code = code
        self.status = ERROR_CODES[code][0]
        self.detail = detail


def classify_exception(error: BaseException) -> tuple[str, int]:
    """``(code, status)`` for an exception escaping a request.

    Order matters: the corruption classes subclass :class:`ValueError`,
    so they are tested before the generic bad-request bucket — the same
    ordering the CLI's exit-code handler uses.
    """
    if isinstance(error, ApiError):
        return error.code, error.status
    if isinstance(error, IntegrityError):
        return "corruption-detected", 500
    if isinstance(error, WalError):
        return "wal-corrupt", 500
    if isinstance(error, (CodecError, XMillFormatError)):
        return "codec-corrupt", 500
    if isinstance(error, XMLSyntaxError):
        return "bad-payload", 400
    if isinstance(error, ArchiveError) and _VERSION_RANGE_MARKER in str(error):
        return "version-not-archived", 404
    if isinstance(error, (ArchiveError, ValueError, KeyError)):
        return "bad-request", 400
    return "internal-error", 500


def error_body(
    error: BaseException, *, archive: Optional[str] = None
) -> dict:
    """The JSON-serializable ``{"error": ...}`` body for a failure."""
    code, status = classify_exception(error)
    record = {
        "code": code,
        "status": status,
        "detail": str(error),
        "type": type(error).__name__,
    }
    if code in CORRUPTION_CODES:
        target = archive if archive else "<archive>"
        record["hint"] = f"run 'xarch fsck {target}' on the server"
    return {"error": record}
