"""``xarchd`` — the archive server.

Serves every :class:`~repro.query.db.ArchiveDB` operation over
streaming NDJSON with a multi-reader / single-writer concurrency
model: each read request pins the archive's published *generation* (the
monotonic counter every WAL commit advances in the manifest) and
answers entirely from that consistent view, while ingests serialize
through a per-archive writer lock around the existing WAL commit
point.  See :mod:`repro.server.service` for the snapshot protocol and
:mod:`repro.server.http` for the wire format.
"""

from .errors import ApiError, ERROR_CODES, classify_exception
from .http import make_server, serve
from .service import ArchiveService, Snapshot

__all__ = [
    "ApiError",
    "ArchiveService",
    "ERROR_CODES",
    "Snapshot",
    "classify_exception",
    "make_server",
    "serve",
]
