"""``xarchd`` — the archive server's command line.

::

    xarchd serve STORE_DIR --port 8400 --workers 4
    python -m repro.server serve STORE_DIR --port 8400

``STORE_DIR`` is a directory whose entries are archives (any backend;
the manifest decides).  Create them with ``xarch init``/``xarch
ingest`` first — the server serves what exists, it does not create.
"""

from __future__ import annotations

import argparse


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xarchd",
        description="Archive server: snapshot-isolated reads, single writer",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_serve = sub.add_parser("serve", help="serve a directory of archives")
    p_serve.add_argument("root", help="directory whose entries are archives")
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8400, help="bind port (default 8400)"
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="process-pool width for ingest work on chunked archives "
        "(reads always snapshot-open serially)",
    )
    p_serve.add_argument(
        "--verbose",
        action="store_true",
        help="log one line per request to stderr",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    from .http import serve

    serve(
        args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        quiet=not args.verbose,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
