"""Compression substrate: gzip-equivalent DEFLATE and an XMill simulator.

The paper compresses delta repositories with ``gzip -9`` and archives
with XMill; both are reproduced here on stdlib zlib, with XMill's
structure/container separation implemented in full (round-tripping).
"""

from .gzipper import (
    GZIP_FRAMING_BYTES,
    GZIP_MAGIC,
    deflate,
    gzip_compress,
    gzip_concatenated_size,
    gzip_decompress,
    gzip_pieces_size,
    gzip_size,
    inflate,
)
from .xmill import (
    XMILL_MAGIC,
    XMillFormatError,
    XMillResult,
    compress,
    compressed_size,
    compressed_text_size,
    decompress,
    from_bytes,
    to_bytes,
)

__all__ = [
    "GZIP_FRAMING_BYTES",
    "GZIP_MAGIC",
    "XMILL_MAGIC",
    "XMillFormatError",
    "XMillResult",
    "compress",
    "compressed_size",
    "compressed_text_size",
    "decompress",
    "deflate",
    "from_bytes",
    "gzip_compress",
    "gzip_concatenated_size",
    "gzip_decompress",
    "gzip_pieces_size",
    "gzip_size",
    "inflate",
    "to_bytes",
]
