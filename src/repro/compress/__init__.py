"""Compression substrate: gzip-equivalent DEFLATE and an XMill simulator.

The paper compresses delta repositories with ``gzip -9`` and archives
with XMill; both are reproduced here on stdlib zlib, with XMill's
structure/container separation implemented in full (round-tripping).
"""

from .gzipper import (
    GZIP_FRAMING_BYTES,
    deflate,
    gzip_concatenated_size,
    gzip_pieces_size,
    gzip_size,
    inflate,
)
from .xmill import (
    XMillResult,
    compress,
    compressed_size,
    compressed_text_size,
    decompress,
)

__all__ = [
    "GZIP_FRAMING_BYTES",
    "XMillResult",
    "compress",
    "compressed_size",
    "compressed_text_size",
    "decompress",
    "deflate",
    "gzip_concatenated_size",
    "gzip_pieces_size",
    "gzip_size",
    "inflate",
]
