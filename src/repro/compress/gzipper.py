"""gzip-equivalent compression: measurement and real byte streams.

The paper compresses diff repositories with ``gzip -9``.  gzip is the
DEFLATE algorithm plus an 18-byte header/trailer; the *size* helpers use
zlib's deflate at level 9 and add the gzip framing overhead so byte
counts match what ``gzip -9`` would report on the same input.

:func:`gzip_compress`/:func:`gzip_decompress` produce and consume actual
gzip byte streams (deterministic: zeroed mtime, no filename) — the
storage-grade pair the codec layer (:mod:`repro.storage.codec`) keeps
archives at rest with.
"""

from __future__ import annotations

import gzip
import io
import zlib

#: gzip framing: 10-byte header + 8-byte trailer (CRC32 + ISIZE).
GZIP_FRAMING_BYTES = 18


def deflate(data: bytes, level: int = 9) -> bytes:
    """Raw DEFLATE at the given level (zlib container)."""
    return zlib.compress(data, level)


def inflate(data: bytes) -> bytes:
    """Inverse of :func:`deflate`."""
    return zlib.decompress(data)


#: Magic prefix of every gzip member (RFC 1952).
GZIP_MAGIC = b"\x1f\x8b"


def gzip_compress(data: bytes, level: int = 9) -> bytes:
    """A real gzip stream (deterministic: mtime 0, no filename)."""
    buffer = io.BytesIO()
    with gzip.GzipFile(
        filename="", mode="wb", fileobj=buffer, compresslevel=level, mtime=0
    ) as handle:
        handle.write(data)
    return buffer.getvalue()


def gzip_decompress(data: bytes) -> bytes:
    """Inverse of :func:`gzip_compress` (any gzip stream accepted)."""
    return gzip.decompress(data)


def gzip_size(text: str, level: int = 9) -> int:
    """Size in bytes of ``gzip -<level>`` applied to the text."""
    raw = text.encode("utf-8")
    return len(zlib.compress(raw, level)) - 2 - 4 + GZIP_FRAMING_BYTES
    # zlib container = 2-byte header + 4-byte Adler32; swap for gzip framing.


def gzip_pieces_size(pieces: list[str], level: int = 9) -> int:
    """Total size of gzipping each piece separately.

    The paper's diff repositories hold many small files (one per delta);
    gzip compresses each on its own, so per-piece framing and reset
    dictionaries are part of the honest cost.
    """
    return sum(gzip_size(piece, level) for piece in pieces)


def gzip_concatenated_size(pieces: list[str], level: int = 9) -> int:
    """Size of gzipping the concatenation of all pieces as one stream."""
    return gzip_size("\n".join(pieces), level)
