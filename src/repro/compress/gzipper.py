"""gzip-equivalent compression measurement.

The paper compresses diff repositories with ``gzip -9``.  gzip is the
DEFLATE algorithm plus an 18-byte header/trailer; we use zlib's deflate
at level 9 and add the gzip framing overhead so byte counts match what
``gzip -9`` would report on the same input.
"""

from __future__ import annotations

import zlib

#: gzip framing: 10-byte header + 8-byte trailer (CRC32 + ISIZE).
GZIP_FRAMING_BYTES = 18


def deflate(data: bytes, level: int = 9) -> bytes:
    """Raw DEFLATE at the given level (zlib container)."""
    return zlib.compress(data, level)


def inflate(data: bytes) -> bytes:
    """Inverse of :func:`deflate`."""
    return zlib.decompress(data)


def gzip_size(text: str, level: int = 9) -> int:
    """Size in bytes of ``gzip -<level>`` applied to the text."""
    raw = text.encode("utf-8")
    return len(zlib.compress(raw, level)) - 2 - 4 + GZIP_FRAMING_BYTES
    # zlib container = 2-byte header + 4-byte Adler32; swap for gzip framing.


def gzip_pieces_size(pieces: list[str], level: int = 9) -> int:
    """Total size of gzipping each piece separately.

    The paper's diff repositories hold many small files (one per delta);
    gzip compresses each on its own, so per-piece framing and reset
    dictionaries are part of the honest cost.
    """
    return sum(gzip_size(piece, level) for piece in pieces)


def gzip_concatenated_size(pieces: list[str], level: int = 9) -> int:
    """Size of gzipping the concatenation of all pieces as one stream."""
    return gzip_size("\n".join(pieces), level)
