"""An XMill-style XML compressor (Liefke & Suciu 2000).

XMill's central idea — the one the paper credits for the archive's
compression win (Sec. 5.4) — is to *separate structure from content and
group content by meaning*:

1. the element structure becomes a token stream over a tag dictionary;
2. character data and attribute values are routed into *containers*,
   one per root-to-node tag path, so values of like elements (all
   ``<sal>`` figures, all ``<tel>`` numbers, all timestamp attributes)
   sit together;
3. containers are compressed with DEFLATE — large ones individually,
   small ones bundled into one stream in path order (XMill likewise
   avoids paying a compressor reset per tiny container), along with the
   structure stream.

This implementation round-trips: :func:`decompress` restores a document
value-equal to the input.  Sizes are therefore honest — nothing is
dropped to cheat the byte counts.

Beyond the in-memory :class:`XMillResult` the experiments measure,
:func:`to_bytes`/:func:`from_bytes` define a *storage-grade container
format* — a magic header plus length-framed sections — so the archive
backends can keep XMill-compressed documents at rest and reopen them
later (see :mod:`repro.storage.codec`).  The container accounts for
every byte it needs to round-trip, container path names included, so
on-disk sizes are honest too.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..xmltree.model import Element, Text

#: Magic prefix of the on-disk container format (version 1).  XML text
#: can never start with these bytes, so codecs sniff them safely.
XMILL_MAGIC = b"XM\x01\x00"

# Structure-stream opcodes.  Tag tokens start at _FIRST_TAG.
_END = 0          # close current element
_TEXT = 1         # text child; value in the current path's container
_ATTRS = 2        # attribute block follows: count, then (name, value) refs
_FIRST_TAG = 3

# Container framing characters (disallowed in XML 1.0 character data).
_VALUE_SEP = "\x00"
_SECTION_SEP = "\x01"
_HEADER_SEP = "\x02"

#: Containers smaller than this (raw bytes) are bundled together.
SMALL_CONTAINER_THRESHOLD = 4096


@dataclass
class XMillResult:
    """Compressed output plus a size breakdown."""

    structure: bytes
    tag_dictionary: bytes
    containers: dict[str, bytes]  # large containers, one stream each
    bundle: bytes                 # all small containers, one stream

    def total_bytes(self) -> int:
        return (
            len(self.structure)
            + len(self.tag_dictionary)
            + len(self.bundle)
            + sum(len(blob) for blob in self.containers.values())
        )


class _Encoder:
    def __init__(self) -> None:
        self.tags: dict[str, int] = {}
        self.structure: list[int] = []
        self.containers: dict[str, list[str]] = {}

    def tag_token(self, tag: str) -> int:
        token = self.tags.get(tag)
        if token is None:
            token = len(self.tags) + _FIRST_TAG
            self.tags[tag] = token
        return token

    def put_value(self, path: str, value: str) -> None:
        self.containers.setdefault(path, []).append(value)

    def encode(self, node: Element, path: str) -> None:
        here = f"{path}/{node.tag}"
        self.structure.append(self.tag_token(node.tag))
        if node.attributes:
            self.structure.append(_ATTRS)
            self.structure.append(len(node.attributes))
            for attr in node.attributes:
                self.structure.append(self.tag_token(attr.name))
                self.put_value(f"{here}/@{attr.name}", attr.value)
        for child in node.children:
            if isinstance(child, Text):
                self.structure.append(_TEXT)
                self.put_value(f"{here}/#text", child.text)
            else:
                self.encode(child, here)
        self.structure.append(_END)


def _pack_varints(values: list[int]) -> bytes:
    out = bytearray()
    for value in values:
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def _unpack_varints(blob: bytes) -> list[int]:
    values: list[int] = []
    current = 0
    shift = 0
    for byte in blob:
        current |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(current)
            current = 0
            shift = 0
    return values


def compress(document: Element, level: int = 9) -> XMillResult:
    """Compress a document into structure + per-path containers."""
    encoder = _Encoder()
    encoder.encode(document, "")
    structure = zlib.compress(_pack_varints(encoder.structure), level)
    dictionary_text = _VALUE_SEP.join(
        name for name, _ in sorted(encoder.tags.items(), key=lambda item: item[1])
    )
    tag_dictionary = zlib.compress(dictionary_text.encode("utf-8"), level)

    large: dict[str, bytes] = {}
    small_sections: list[str] = []
    for path in sorted(encoder.containers):
        values = encoder.containers[path]
        raw = _VALUE_SEP.join(values)
        if len(raw.encode("utf-8")) >= SMALL_CONTAINER_THRESHOLD:
            large[path] = zlib.compress(raw.encode("utf-8"), level)
        else:
            small_sections.append(f"{path}{_HEADER_SEP}{raw}")
    bundle = (
        zlib.compress(_SECTION_SEP.join(small_sections).encode("utf-8"), level)
        if small_sections
        else b""
    )
    return XMillResult(
        structure=structure,
        tag_dictionary=tag_dictionary,
        containers=large,
        bundle=bundle,
    )


def compressed_size(document: Element, level: int = 9) -> int:
    """Total XMill-compressed size in bytes."""
    return compress(document, level).total_bytes()


def compressed_text_size(text: str, level: int = 9) -> int:
    """XMill size of an XML string (parses, then compresses)."""
    from ..xmltree.parser import parse_document

    return compressed_size(parse_document(text), level)


class XMillFormatError(ValueError):
    """Raised when bytes do not hold a valid XMill container."""


def _write_varint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            break


def _read_varint(data: bytes, position: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if position >= len(data):
            raise XMillFormatError("Truncated XMill container (varint)")
        byte = data[position]
        position += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, position
        shift += 7


def _write_section(out: bytearray, blob: bytes) -> None:
    _write_varint(out, len(blob))
    out.extend(blob)


def _read_section(data: bytes, position: int) -> tuple[bytes, int]:
    length, position = _read_varint(data, position)
    if position + length > len(data):
        raise XMillFormatError("Truncated XMill container (section)")
    return data[position : position + length], position + length


def to_bytes(result: XMillResult) -> bytes:
    """Serialize a compression result to the on-disk container format.

    Layout: :data:`XMILL_MAGIC`, then length-framed sections —
    structure, tag dictionary, small-container bundle, a large-container
    count and per large container its path (UTF-8) and blob.  Unlike
    :meth:`XMillResult.total_bytes` (the experiments' idealized sum),
    the container pays for its own framing and container path names, so
    ``len(to_bytes(r))`` is the honest at-rest cost.
    """
    out = bytearray(XMILL_MAGIC)
    _write_section(out, result.structure)
    _write_section(out, result.tag_dictionary)
    _write_section(out, result.bundle)
    _write_varint(out, len(result.containers))
    for path in sorted(result.containers):
        _write_section(out, path.encode("utf-8"))
        _write_section(out, result.containers[path])
    return bytes(out)


def from_bytes(data: bytes) -> XMillResult:
    """Parse the container format back into an :class:`XMillResult`."""
    if not data.startswith(XMILL_MAGIC):
        raise XMillFormatError("Not an XMill container (bad magic)")
    position = len(XMILL_MAGIC)
    structure, position = _read_section(data, position)
    tag_dictionary, position = _read_section(data, position)
    bundle, position = _read_section(data, position)
    count, position = _read_varint(data, position)
    containers: dict[str, bytes] = {}
    for _ in range(count):
        path_bytes, position = _read_section(data, position)
        blob, position = _read_section(data, position)
        containers[path_bytes.decode("utf-8")] = blob
    if position != len(data):
        raise XMillFormatError("Trailing bytes after XMill container")
    return XMillResult(
        structure=structure,
        tag_dictionary=tag_dictionary,
        containers=containers,
        bundle=bundle,
    )


def decompress(result: XMillResult) -> Element:
    """Rebuild the document (value-equal to the original)."""
    structure = _unpack_varints(zlib.decompress(result.structure))
    dictionary_text = zlib.decompress(result.tag_dictionary).decode("utf-8")
    tags = dictionary_text.split(_VALUE_SEP) if dictionary_text else []

    containers: dict[str, list[str]] = {
        path: zlib.decompress(blob).decode("utf-8").split(_VALUE_SEP)
        for path, blob in result.containers.items()
    }
    if result.bundle:
        for section in zlib.decompress(result.bundle).decode("utf-8").split(
            _SECTION_SEP
        ):
            path, _, raw = section.partition(_HEADER_SEP)
            containers[path] = raw.split(_VALUE_SEP)
    cursors = {path: 0 for path in containers}

    def take(path: str) -> str:
        index = cursors[path]
        cursors[path] = index + 1
        return containers[path][index]

    position = 0

    def read_element(path: str) -> Element:
        nonlocal position
        token = structure[position]
        position += 1
        tag = tags[token - _FIRST_TAG]
        here = f"{path}/{tag}"
        node = Element(tag)
        if position < len(structure) and structure[position] == _ATTRS:
            position += 1
            count = structure[position]
            position += 1
            for _ in range(count):
                name = tags[structure[position] - _FIRST_TAG]
                position += 1
                node.set_attribute(name, take(f"{here}/@{name}"))
        while structure[position] != _END:
            if structure[position] == _TEXT:
                position += 1
                text = take(f"{here}/#text")
                if text:
                    node.append(Text(text))
            else:
                node.append(read_element(here))
        position += 1  # consume _END
        return node

    return read_element("")
