"""repro — a reproduction of Buneman, Khanna, Tajima & Tan,
"Archiving Scientific Data" (SIGMOD 2002 / ACM TODS 29(1), 2004).

A key-based XML archiver: all versions of a hierarchical, keyed
database merged into one XML document with interval timestamps,
supporting constant-pass version retrieval and element-level temporal
history — plus every substrate the paper's evaluation depends on
(XML model/parser, key system, Myers line diff, delta repositories,
SCCS weave, gzip/XMill-style compression, external-memory archiving,
retrieval indexes, and the synthetic OMIM/Swiss-Prot/XMark workloads).

Quickstart::

    import repro
    from repro import Archive, parse_key_spec, parse_document

    spec = parse_key_spec("(/, (db, {}))\\n(/db, (rec, {id}))\\n(/db/rec, (val, {}))")
    archive = Archive(spec)
    archive.add_version(parse_document("<db><rec><id>1</id><val>x</val></rec></db>"))
    archive.add_version(parse_document("<db><rec><id>1</id><val>y</val></rec></db>"))

    db = repro.open(archive)          # works on paths and backends too
    db.history("/db/rec[id=1]/val").changes
    # [(VersionSet('1'), 'x'), (VersionSet('2'), 'y')]
    db.at(2).select("/db/rec[id='1']/val/text()").all()   # ['y']
    db.between(1, 2).changes().all()  # [changed /db/rec[id=1]/val: 'x' -> 'y']
"""

from .core import (
    Archive,
    ArchiveError,
    ArchiveOptions,
    ElementHistory,
    Fingerprinter,
    IngestSession,
    VersionSet,
    documents_equivalent,
    normalize_document,
)
from .keys import Key, KeySpec, annotate_keys, key, parse_key_spec, satisfies
from .query import ArchiveDB, QueryResult, QueryStats, open_db
from .storage import StorageBackend, create_archive, open_archive
from .xmltree import Element, Text, parse_document, to_pretty_string, to_string

#: ``repro.open(path)`` — the facade entry point: an :class:`ArchiveDB`
#: over any archive path, open backend or in-memory archive.
open = open_db

__version__ = "1.0.0"

__all__ = [
    "Archive",
    "ArchiveDB",
    "ArchiveError",
    "ArchiveOptions",
    "Element",
    "ElementHistory",
    "Fingerprinter",
    "IngestSession",
    "Key",
    "KeySpec",
    "QueryResult",
    "QueryStats",
    "StorageBackend",
    "Text",
    "VersionSet",
    "create_archive",
    "open",
    "open_archive",
    "open_db",
    "annotate_keys",
    "documents_equivalent",
    "key",
    "normalize_document",
    "parse_document",
    "parse_key_spec",
    "satisfies",
    "to_pretty_string",
    "to_string",
]
