"""Deterministic fault injection over the storage I/O seam.

Every durable byte the backends write crosses a small set of
operations in :mod:`repro.storage.wal` — payload writes, file fsyncs,
directory fsyncs, renames, record removals.  This module is the
injectable shim over that seam: tests install a :class:`FaultInjector`
(via :func:`inject`) and the seam consults it before each operation, so
a drill can

* **crash** the process (raise :class:`CrashPoint`) at the *N*-th
  crashable operation — enumerating *N* over a whole ``ingest`` or
  ``recode`` visits every intermediate on-disk state the real operation
  can be killed in;
* **truncate** a payload write at byte *k* or **flip a bit** in it,
  simulating torn writes and silent media corruption;
* **fail transiently** with ``EIO``/``ENOSPC`` for the first *t*
  attempts, exercising the seam's bounded retry-with-backoff.

Without an active injector every hook is a no-op, so production code
pays one ``is None`` check per durable operation.

:class:`CrashPoint` subclasses :class:`BaseException` on purpose: the
commit machinery's cleanup handlers re-raise it, and ordinary
``except Exception`` recovery code cannot accidentally swallow a
simulated death.
"""

from __future__ import annotations

import errno
import os
import re
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, TypeVar

#: Operation kinds the seam reports (and a crash can target).
OP_KINDS = ("write", "fsync", "dirsync", "replace", "remove")

#: Errnos the seam treats as transient and retries with backoff.
TRANSIENT_ERRNOS = (errno.EIO, errno.ENOSPC)

#: Bounded retry schedule for transient I/O errors: attempts and the
#: base of the exponential backoff (seconds).  Kept tiny — the seam
#: must never hide a persistent fault behind a long stall.
RETRY_ATTEMPTS = 4
RETRY_BASE_DELAY = 0.002

_T = TypeVar("_T")


class CrashPoint(BaseException):
    """Simulated process death at an injected point."""


class FaultInjector:
    """One drill's fault plan plus its operation log.

    The injector is deterministic: operations are counted in the order
    the seam performs them, so ``crash_at_op(n)`` after a counting dry
    run (``crash_at = None``) reproduces the exact same intermediate
    state every time.
    """

    def __init__(self) -> None:
        #: Crashable operations seen so far (the enumeration axis).
        self.op_count = 0
        #: Raise :class:`CrashPoint` *before* executing this op index.
        self.crash_at: Optional[int] = None
        #: Restrict crashes to these op kinds (default: all).
        self.crash_kinds = frozenset(OP_KINDS)
        #: ``(kind, path)`` log of every seam operation, for debugging
        #: and for sizing the enumeration.
        self.log: list[tuple[str, str]] = []
        self._truncates: list[tuple[re.Pattern, int]] = []
        self._flips: list[tuple[re.Pattern, int]] = []
        # (kind, pattern, errno, remaining-failures)
        self._transients: list[list] = []

    # -- plan construction -------------------------------------------------

    def crash_at_op(self, index: int, kinds: Optional[tuple] = None) -> "FaultInjector":
        """Die immediately before the ``index``-th counted operation."""
        self.crash_at = index
        if kinds is not None:
            self.crash_kinds = frozenset(kinds)
        return self

    def truncate_write(self, pattern: str, at_byte: int) -> "FaultInjector":
        """Cut payload writes to matching paths off at byte ``at_byte``."""
        self._truncates.append((re.compile(pattern), at_byte))
        return self

    def flip_bit(self, pattern: str, bit: int) -> "FaultInjector":
        """Flip one bit (global bit index) in writes to matching paths."""
        self._flips.append((re.compile(pattern), bit))
        return self

    def fail_transient(
        self, kind: str, pattern: str, err: int, times: int
    ) -> "FaultInjector":
        """Fail the first ``times`` matching operations with ``err``."""
        if kind not in OP_KINDS:
            raise ValueError(f"Unknown op kind {kind!r}")
        self._transients.append([kind, re.compile(pattern), err, times])
        return self

    # -- seam hooks --------------------------------------------------------

    def before_op(self, kind: str, path: str) -> None:
        """Count one crashable operation; maybe die or fail it."""
        self.log.append((kind, path))
        index = self.op_count
        self.op_count += 1
        if (
            self.crash_at is not None
            and index == self.crash_at
            and kind in self.crash_kinds
        ):
            raise CrashPoint(f"crashed before op {index}: {kind} {path}")
        for rule in self._transients:
            rule_kind, pattern, err, remaining = rule
            if rule_kind == kind and remaining > 0 and pattern.search(path):
                rule[3] -= 1
                raise OSError(err, os.strerror(err), path)

    def filter_payload(self, path: str, data: bytes) -> bytes:
        """Corrupt a payload about to be written (torn write / bit rot)."""
        for pattern, at_byte in self._truncates:
            if pattern.search(path):
                data = data[:at_byte]
        for pattern, bit in self._flips:
            if pattern.search(path) and data:
                index = (bit // 8) % len(data)
                mutated = bytearray(data)
                mutated[index] ^= 1 << (bit % 8)
                data = bytes(mutated)
        return data


_ACTIVE: Optional[FaultInjector] = None


def active() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` outside a drill."""
    return _ACTIVE


@contextmanager
def inject(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` over the storage seam for the block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def before_op(kind: str, path: str) -> None:
    """Seam-side hook: announce a crashable operation."""
    if _ACTIVE is not None:
        _ACTIVE.before_op(kind, path)


def filter_payload(path: str, data: bytes) -> bytes:
    """Seam-side hook: let the drill corrupt an outgoing payload."""
    if _ACTIVE is not None:
        return _ACTIVE.filter_payload(path, data)
    return data


def retry_transient(
    operation: Callable[[], _T],
    attempts: int = RETRY_ATTEMPTS,
    base_delay: float = RETRY_BASE_DELAY,
) -> _T:
    """Run ``operation``, retrying transient ``EIO``/``ENOSPC`` failures.

    The backend I/O seam wraps its durable writes in this: a flaky
    device costs a few bounded retries instead of a failed commit,
    while persistent faults (or any other errno) propagate unchanged
    after the last attempt.
    """
    for attempt in range(attempts):
        try:
            return operation()
        except OSError as error:
            if error.errno not in TRANSIENT_ERRNOS or attempt + 1 >= attempts:
                raise
            time.sleep(base_delay * (2**attempt))
    raise AssertionError("unreachable")  # pragma: no cover
