"""External sorting of a version into a key-sorted event stream (Sec. 6.2).

A version is written out as *sorted runs*: partial trees of at most
``budget`` nodes, each internally sorted, with the root-to-node stem
duplicated across runs exactly as the paper describes (its Sec. 6.2
figure).  The runs are then k-way merged — ``(M/B) - 1`` at a time —
into a single sorted stream.
"""

from __future__ import annotations

import os

from ..keys.annotate import AnnotatedDocument
from ..xmltree.model import Element
from .events import (
    Event,
    EventWriter,
    ExitEvent,
    FrontierEvent,
    IOStats,
    NodeEvent,
    PeekableEvents,
    read_events,
)


class _RunWriter:
    """Writes runs, re-opening the current stem at each run boundary."""

    def __init__(
        self, directory: str, prefix: str, stats: IOStats, codec=None
    ) -> None:
        self.directory = directory
        self.prefix = prefix
        self.stats = stats
        self.codec = codec
        self.paths: list[str] = []
        self._writer: EventWriter | None = None
        self._stem: list[NodeEvent] = []
        self._nodes_in_run = 0

    def _open_run(self) -> None:
        path = os.path.join(self.directory, f"{self.prefix}-run{len(self.paths)}.jsonl")
        self.paths.append(path)
        self._writer = EventWriter(path, self.stats, self.codec)
        self._nodes_in_run = len(self._stem)
        for event in self._stem:
            self._writer.write(event)

    def enter(self, event: NodeEvent) -> None:
        if self._writer is None:
            self._open_run()
        assert self._writer is not None
        self._writer.write(event)
        self._stem.append(event)
        self._nodes_in_run += 1

    def exit(self) -> None:
        # When the run was just rolled, its exits were already written;
        # only the logical stem needs popping.
        if self._writer is not None:
            self._writer.write(ExitEvent())
        self._stem.pop()

    def frontier(self, event: FrontierEvent) -> None:
        if self._writer is None:
            self._open_run()
        assert self._writer is not None
        self._writer.write(event)
        self._nodes_in_run += 1

    def maybe_roll(self, budget: int) -> None:
        """Close the current run at a subtree boundary when over budget."""
        if self._writer is not None and self._nodes_in_run >= budget:
            for _ in range(len(self._stem)):
                self._writer.write(ExitEvent())
            self._writer.close()
            self._writer = None

    def close(self) -> None:
        if self._writer is not None:
            for _ in range(len(self._stem)):
                self._writer.write(ExitEvent())
            self._writer.close()
            self._writer = None


def write_sorted_runs(
    document: AnnotatedDocument,
    directory: str,
    budget: int,
    stats: IOStats,
    prefix: str = "version",
    codec=None,
) -> list[str]:
    """Write the annotated version as sorted runs of ≤ ``budget`` nodes."""
    if budget < 2:
        raise ValueError("Run budget must allow at least a stem and one node")
    runs = _RunWriter(directory, prefix, stats, codec)

    def walk(node: Element) -> None:
        label = document.label(node)
        assert label is not None
        attributes = tuple(sorted((a.name, a.value) for a in node.attributes))
        if document.is_frontier(node):
            from ..core.nodes import Alternative

            runs.frontier(
                FrontierEvent(
                    label=label,
                    attributes=attributes,
                    timestamp=None,
                    alternatives=[
                        Alternative(
                            timestamp=None,
                            content=[c.copy() for c in node.children],
                        )
                    ],
                )
            )
            runs.maybe_roll(budget)
            return
        runs.enter(NodeEvent(label=label, attributes=attributes, timestamp=None))
        ordered = sorted(
            node.element_children(),
            key=lambda child: document.label(child).sort_token(),
        )
        for child in ordered:
            walk(child)
        runs.exit()

    walk(document.root)
    runs.close()
    return runs.paths


def merge_event_streams(readers: list[PeekableEvents], writer: EventWriter) -> None:
    """K-way merge of sorted streams sharing a common root stem.

    Streams carrying the same internal node (a duplicated stem) have
    their child lists merged recursively; frontier nodes are atomic to
    one stream, so they are copied through.
    """
    # All streams must open with the same root node.
    roots = [reader.peek() for reader in readers]
    live = [reader for reader, root in zip(readers, roots) if root is not None]
    if not live:
        return
    first = live[0].peek()
    assert isinstance(first, (NodeEvent, FrontierEvent))
    if isinstance(first, FrontierEvent):
        assert len(live) == 1, "frontier root duplicated across runs"
        writer.write(live[0].next())
        return
    for reader in live:
        event = reader.next()
        assert isinstance(event, NodeEvent) and event.token() == first.token()
    writer.write(first)
    _merge_children(live, writer)
    for reader in live:
        exit_event = reader.next()
        assert isinstance(exit_event, ExitEvent)
    writer.write(ExitEvent())


def _merge_children(readers: list[PeekableEvents], writer: EventWriter) -> None:
    while True:
        heads: list[tuple[PeekableEvents, Event]] = []
        for reader in readers:
            event = reader.peek()
            if isinstance(event, (NodeEvent, FrontierEvent)):
                heads.append((reader, event))
        if not heads:
            return
        minimum = min(event.token() for _, event in heads)
        group = [
            reader for reader, event in heads if event.token() == minimum
        ]
        sample = next(event for _, event in heads if event.token() == minimum)
        if isinstance(sample, FrontierEvent):
            assert len(group) == 1, "frontier node duplicated across runs"
            writer.write(group[0].next())
            continue
        for reader in group:
            reader.next()
        writer.write(sample)
        _merge_children(group, writer)
        for reader in group:
            exit_event = reader.next()
            assert isinstance(exit_event, ExitEvent)
        writer.write(ExitEvent())


def sort_version(
    document: AnnotatedDocument,
    directory: str,
    budget: int,
    stats: IOStats,
    fan_in: int = 8,
    prefix: str = "version",
    codec=None,
) -> str:
    """Sorted runs + repeated ``fan_in``-way merges → one sorted stream.

    ``fan_in`` models the paper's ``(M/B) - 1`` merge arity; runs are
    merged in phases until one remains.  ``codec`` encodes every run and
    merge file at rest; the streaming readers/writers keep the merge's
    memory bound independent of it.
    """
    if fan_in < 2:
        raise ValueError("Merge fan-in must be at least 2")
    paths = write_sorted_runs(document, directory, budget, stats, prefix, codec)
    phase = 0
    while len(paths) > 1:
        merged_paths: list[str] = []
        for start in range(0, len(paths), fan_in):
            batch = paths[start : start + fan_in]
            out_path = os.path.join(
                directory, f"{prefix}-merge{phase}-{start // fan_in}.jsonl"
            )
            try:
                with EventWriter(out_path, stats, codec) as writer:
                    merge_event_streams(
                        [
                            PeekableEvents(read_events(path, stats, codec))
                            for path in batch
                        ],
                        writer,
                    )
            except StopIteration:
                from .integrity import TruncatedPayload

                # A run that ends mid-structure was cut short on disk;
                # classify it instead of leaking a bare StopIteration.
                raise TruncatedPayload(
                    f"Sorted run ends mid-structure merging {batch!r}"
                ) from None
            merged_paths.append(out_path)
            for path in batch:
                os.remove(path)
        paths = merged_paths
        phase += 1
    return paths[0]
