"""The decoded-chunk cache: never re-decode what the working set holds.

Every repeat read of a chunk used to pay the full decode (XML parse or
record decode) again, even moments after the last one — under the
server's per-request snapshot opens and the query fan-out that decode
dominates the read path.  :class:`DecodedChunkCache` is a process-wide,
size-bounded LRU of decoded :class:`~repro.core.archive.Archive` chunk
trees shared by every backend handle that opens for reading.

**Keying and invalidation.**  Entries are keyed by ``(archive root
path, chunk id, staleness token)``.  The token is the chunk's recorded
payload checksum from the integrity sidecar — the generation-keyed
staleness pattern of ``KeyIndex``/PR 9 sharpened to its fixpoint: a WAL
commit that republishes a chunk gives it a new checksum (new key, old
entry ages out of the LRU), while commits that *don't* touch the chunk
keep its token — so readers across generations share one decode and a
publish invalidates exactly the republished chunks.  A crashed commit
never poisons the cache: tokens come from the sidecar state the reader
verified its bytes against, so an entry can only ever be installed for
payload bytes that actually decoded.  Chunks without a recorded
checksum (legacy layouts, ``verify="never"`` handles without a sidecar)
fall back to the manifest generation as token — and are simply not
cached when there is no generation either.

**Sharing discipline.**  Cached archives are shared read-only across
handles and threads; writers never consult the cache (a writer mutates
its archive in place, which must not leak into other readers' views).
Backends opt in per handle via ``cache_reads=True`` — set by snapshot
opens (``open_archive(..., recover=False)``) — and bypass the cache on
their write paths even then.

Knobs: ``REPRO_CHUNK_CACHE_BYTES`` caps the budget (approximate, costed
by each entry's at-rest payload size; default 256 MiB), ``0`` disables
caching entirely.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Hashable, Optional

from ..core.archive import Archive

#: Default cache budget when ``REPRO_CHUNK_CACHE_BYTES`` is unset.
DEFAULT_CACHE_BYTES = 256 * 1024 * 1024

CacheKey = tuple[str, Hashable, Hashable]


class DecodedChunkCache:
    """A thread-safe, size-bounded LRU of decoded chunk archives.

    ``cost`` is the entry's at-rest payload size — a stable, already
    known proxy for the decoded tree's footprint (the decoded form is
    larger by a roughly constant factor, so relative budgeting is
    preserved without walking trees to measure them).
    """

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self.max_bytes = max(0, int(max_bytes))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, tuple[Archive, int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def get(self, key: CacheKey) -> Optional[Archive]:
        """The cached archive for ``key``, freshened to most-recent."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: CacheKey, archive: Archive, cost: int) -> None:
        """Install a decoded chunk; evicts LRU entries past the budget."""
        if not self.enabled:
            return
        cost = max(1, int(cost))
        if cost > self.max_bytes:
            return  # larger than the whole budget: not worth evicting for
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (archive, cost)
            self._bytes += cost
            while self._bytes > self.max_bytes and self._entries:
                _, (_, evicted_cost) = self._entries.popitem(last=False)
                self._bytes -= evicted_cost
                self.evictions += 1

    def invalidate(self, root: str) -> int:
        """Drop every entry of one archive (by its root path).

        Correctness never requires this — stale tokens age out of the
        LRU on their own — but explicit writers call it after mutating
        through a read-caching handle so the budget is not spent on
        entries no future read can hit.
        """
        with self._lock:
            doomed = [key for key in self._entries if key[0] == root]
            for key in doomed:
                _, cost = self._entries.pop(key)
                self._bytes -= cost
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"DecodedChunkCache(entries={len(self._entries)}, "
            f"bytes={self._bytes}/{self.max_bytes}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


_cache: Optional[DecodedChunkCache] = None
_cache_guard = threading.Lock()


def _budget_from_env() -> int:
    raw = os.environ.get("REPRO_CHUNK_CACHE_BYTES")
    if raw is None:
        return DEFAULT_CACHE_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_CACHE_BYTES


def chunk_cache() -> DecodedChunkCache:
    """The process-wide decoded-chunk cache (created on first use)."""
    global _cache
    with _cache_guard:
        if _cache is None:
            _cache = DecodedChunkCache(_budget_from_env())
        return _cache


def reset_chunk_cache(max_bytes: Optional[int] = None) -> DecodedChunkCache:
    """Swap in a fresh cache (tests; ``max_bytes=None`` re-reads the env)."""
    global _cache
    with _cache_guard:
        _cache = DecodedChunkCache(
            _budget_from_env() if max_bytes is None else max_bytes
        )
        return _cache
