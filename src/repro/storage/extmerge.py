"""Streaming nested merge of a sorted archive with a sorted version
(Sec. 6.3).

Both inputs are key-sorted event streams on disk; the merge makes a
single pass through each, writing the new archive stream.  Memory use is
bounded by tree height plus one frontier node's content — the paper's
assumption that a root-to-leaf path fits in a page.

The logic is the paper's: compare labels of the current nodes; smaller
archive label → the element is absent from the new version, copy it out
with its timestamp terminated; smaller version label → a new element,
copy it out stamped with the new version number; equal labels → merge,
augmenting the timestamp and recursing.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.merge import MergeStats, merge_alternatives
from ..core.nodes import Alternative
from ..core.versionset import VersionSet
from .events import (
    EventWriter,
    ExitEvent,
    FrontierEvent,
    IOStats,
    NodeEvent,
    PeekableEvents,
    read_events,
)


class StreamMergeError(ValueError):
    """Raised on malformed or incompatible event streams."""


def merge_archive_stream(
    archive_path: str,
    version_path: str,
    out_path: str,
    version_number: int,
    stats: IOStats,
    codec=None,
) -> MergeStats:
    """Merge a sorted version stream into a sorted archive stream.

    ``codec`` decodes both inputs and encodes the output; the one-pass
    bounded-memory shape is unchanged (framed gzip streams decode
    incrementally).
    """
    from .integrity import TruncatedPayload

    merge_stats = MergeStats()
    archive = PeekableEvents(read_events(archive_path, stats, codec))
    version = PeekableEvents(read_events(version_path, stats, codec))
    try:
        with EventWriter(out_path, stats, codec) as writer:
            root = archive.next()
            if not isinstance(root, NodeEvent) or root.timestamp is None:
                raise StreamMergeError(
                    "Archive stream must open with a timestamped root"
                )
            timestamp = root.timestamp.copy()
            timestamp.add(version_number)
            writer.write(replace(root, timestamp=timestamp))
            _merge_children(
                archive, version, timestamp, version_number, writer, merge_stats
            )
            exit_event = archive.next()
            if not isinstance(exit_event, ExitEvent):
                raise StreamMergeError("Archive root not closed")
            writer.write(ExitEvent())
    except StopIteration:
        # A stream that ends mid-structure (events missing their exits)
        # is a truncated payload, not a programming error.
        raise TruncatedPayload(
            f"Event stream ends mid-structure merging {archive_path!r} "
            f"with {version_path!r}"
        ) from None
    return merge_stats


def _merge_children(
    archive: PeekableEvents,
    version: PeekableEvents,
    inherited: VersionSet,
    number: int,
    writer: EventWriter,
    stats: MergeStats,
) -> None:
    while True:
        archive_head = archive.peek()
        version_head = version.peek()
        archive_live = isinstance(archive_head, (NodeEvent, FrontierEvent))
        version_live = isinstance(version_head, (NodeEvent, FrontierEvent))
        if not archive_live and not version_live:
            return
        if archive_live and (
            not version_live or archive_head.token() < version_head.token()
        ):
            _copy_terminated(archive, inherited, number, writer, stats)
        elif version_live and (
            not archive_live or version_head.token() < archive_head.token()
        ):
            _copy_inserted(version, number, writer, stats)
        else:
            _merge_node(archive, version, inherited, number, writer, stats)


def _copy_terminated(
    archive: PeekableEvents,
    inherited: VersionSet,
    number: int,
    writer: EventWriter,
    stats: MergeStats,
) -> None:
    """Archive-only subtree: terminate its timestamp, copy verbatim."""
    first = archive.next()
    assert isinstance(first, (NodeEvent, FrontierEvent))
    if first.timestamp is None:
        stats.nodes_terminated += 1
        first = replace(first, timestamp=inherited.without(number))
    writer.write(first)
    if isinstance(first, NodeEvent):
        depth = 1
        while depth:
            event = archive.next()
            if isinstance(event, NodeEvent):
                depth += 1
            elif isinstance(event, ExitEvent):
                depth -= 1
            writer.write(event)


def _copy_inserted(
    version: PeekableEvents,
    number: int,
    writer: EventWriter,
    stats: MergeStats,
) -> None:
    """Version-only subtree: stamp the root with {number}, copy."""
    stats.nodes_inserted += 1
    first = version.next()
    assert isinstance(first, (NodeEvent, FrontierEvent))
    writer.write(replace(first, timestamp=VersionSet([number])))
    if isinstance(first, NodeEvent):
        depth = 1
        while depth:
            event = version.next()
            if isinstance(event, NodeEvent):
                depth += 1
            elif isinstance(event, ExitEvent):
                depth -= 1
            writer.write(event)


def _merge_node(
    archive: PeekableEvents,
    version: PeekableEvents,
    inherited: VersionSet,
    number: int,
    writer: EventWriter,
    stats: MergeStats,
) -> None:
    archive_event = archive.next()
    version_event = version.next()
    stats.nodes_matched += 1
    if archive_event.attributes != version_event.attributes:
        from ..core.merge import AttributeChangeError

        raise AttributeChangeError(
            f"Attributes of <{archive_event.label}> changed between versions"
        )
    if archive_event.timestamp is not None:
        current = archive_event.timestamp.copy()
        current.add(number)
        merged_timestamp: VersionSet | None = current
    else:
        current = inherited
        merged_timestamp = None

    if isinstance(archive_event, FrontierEvent):
        if not isinstance(version_event, FrontierEvent):
            raise StreamMergeError(
                f"<{archive_event.label}> is a frontier in the archive but "
                f"not in the version"
            )
        (version_alternative,) = version_event.alternatives
        alternatives = [
            Alternative(timestamp=alt.timestamp, content=alt.content)
            for alt in archive_event.alternatives
        ]
        if merge_alternatives(
            alternatives, version_alternative.content, number, current
        ):
            stats.frontier_content_changes += 1
        writer.write(
            FrontierEvent(
                label=archive_event.label,
                attributes=archive_event.attributes,
                timestamp=merged_timestamp,
                alternatives=alternatives,
            )
        )
        return

    if not isinstance(version_event, NodeEvent):
        raise StreamMergeError(
            f"<{archive_event.label}> is internal in the archive but a "
            f"frontier in the version"
        )
    writer.write(replace(archive_event, timestamp=merged_timestamp))
    _merge_children(archive, version, current, number, writer, stats)
    archive_exit = archive.next()
    version_exit = version.next()
    if not isinstance(archive_exit, ExitEvent) or not isinstance(
        version_exit, ExitEvent
    ):
        raise StreamMergeError("Mismatched element nesting during stream merge")
    writer.write(ExitEvent())
