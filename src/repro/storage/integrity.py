"""The integrity plane: payload checksums and the typed error taxonomy.

The storage engine is WAL-atomic but — before this module — trusted
every byte it read back: bit rot or a truncated publish surfaced as a
confusing :class:`~repro.storage.codec.CodecError`, an XML parse error,
or (worst) a silently wrong answer from a stale sidecar.  The integrity
plane closes that gap:

* every payload written through a backend gets a recorded SHA-256 —
  in the manifest for whole-file archives, in a per-backend
  ``checksums.json`` sidecar (:class:`ChecksumSidecar`) for directory
  backends — published through the same WAL commit as the payload
  itself, so checksums and bytes are never torn apart;
* reads verify under a configurable policy (``verify="always"``:
  every read, the default; ``"open"``: once per file per backend
  instance; ``"never"``: trust the disk);
* failures raise a *typed* :class:`IntegrityError` — readers can tell
  a short file (:class:`TruncatedPayload`) from flipped bits
  (:class:`ChecksumMismatch`) from metadata that contradicts the data
  (:class:`ManifestInconsistent`) — instead of leaking whatever the
  codec or parser happened to hit first.

All three errors subclass :class:`~repro.core.archive.ArchiveError`,
so pre-integrity error handling stays safe (it just gets more
specific); the CLI maps the family to exit code 2.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from ..core.archive import ArchiveError

#: Read-verification policies accepted by every backend.
VERIFY_POLICIES = ("always", "open", "never")

#: On-disk format tag of the ``checksums.json`` sidecar.
CHECKSUMS_FORMAT = 1

#: Conventional name of the sidecar inside directory archives.
CHECKSUMS_NAME = "checksums.json"

#: Subdirectory fsck's ``--repair`` moves undecodable payloads into.
QUARANTINE_DIR = "quarantine"


class IntegrityError(ArchiveError):
    """A stored payload or its metadata failed verification."""


class ChecksumMismatch(IntegrityError):
    """Payload bytes do not hash to their recorded SHA-256."""


class TruncatedPayload(IntegrityError):
    """A payload is shorter than its recorded size (torn/partial write)."""


class ManifestInconsistent(IntegrityError):
    """Archive metadata contradicts itself or the files on disk."""


def validate_policy(verify: str) -> str:
    if verify not in VERIFY_POLICIES:
        raise ArchiveError(
            f"Unknown verify policy {verify!r} "
            f"(choose from {', '.join(VERIFY_POLICIES)})"
        )
    return verify


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def hash_file(path: str, chunk_size: int = 1 << 20) -> tuple[str, int]:
    """Stream a file's SHA-256 without holding it in memory."""
    digest = hashlib.sha256()
    size = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            digest.update(chunk)
            size += len(chunk)
    return digest.hexdigest(), size


def checksum_entry(data: bytes) -> dict:
    """The recorded form of one payload's checksum."""
    return {"sha256": sha256_hex(data), "bytes": len(data)}


def verify_bytes(name: str, data: bytes, expected: Optional[dict]) -> None:
    """Check payload bytes against a recorded entry.

    ``expected`` of ``None`` (an uncovered/legacy payload) passes —
    absence of a checksum is a scrub finding, not a read error.  A
    short payload classifies as :class:`TruncatedPayload`; any other
    difference as :class:`ChecksumMismatch`.
    """
    if expected is None:
        return
    recorded = expected.get("sha256")
    if recorded and sha256_hex(data) == recorded:
        return
    size = expected.get("bytes")
    if isinstance(size, int) and len(data) < size:
        raise TruncatedPayload(
            f"Payload {name!r} is truncated: {len(data)} of {size} "
            f"recorded bytes on disk"
        )
    raise ChecksumMismatch(
        f"Payload {name!r} does not match its recorded checksum "
        f"(expected sha256 {recorded}, have {sha256_hex(data)})"
    )


def verify_file(name: str, path: str, expected: Optional[dict]) -> None:
    """Like :func:`verify_bytes` but streaming from disk.

    A covered file that is *missing* raises
    :class:`ManifestInconsistent` — the metadata names bytes the disk
    does not have.
    """
    if expected is None:
        return
    try:
        digest, size = hash_file(path)
    except FileNotFoundError:
        raise ManifestInconsistent(
            f"Payload {name!r} is recorded in the checksum sidecar but "
            f"missing on disk"
        )
    recorded = expected.get("sha256")
    if recorded and digest == recorded:
        return
    expected_size = expected.get("bytes")
    if isinstance(expected_size, int) and size < expected_size:
        raise TruncatedPayload(
            f"Payload {name!r} is truncated: {size} of {expected_size} "
            f"recorded bytes on disk"
        )
    raise ChecksumMismatch(
        f"Payload {name!r} does not match its recorded checksum "
        f"(expected sha256 {recorded}, have {digest})"
    )


def _self_digest(body: dict) -> str:
    """Deterministic hash of a sidecar/WAL record body (sans its hash)."""
    return sha256_hex(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


class ChecksumSidecar:
    """``checksums.json``: one directory archive's payload checksums.

    Maps payload name (relative to the archive root) to
    ``{"sha256", "bytes"}`` and carries the names fsck has quarantined.
    The sidecar is self-checksummed — a flipped bit in the sidecar
    itself is detected, not silently trusted — and is staged through
    the same WAL commit as the payloads it describes, so the two are
    never torn apart by a crash.

    A missing sidecar (``present`` is ``False``) means a pre-integrity
    archive: verification is skipped for every file and ``fsck``
    reports the archive as unchecksummed (repairable).
    """

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        self.entries: dict[str, dict] = {}
        self.quarantined: set[str] = set()
        self.present = False

    @classmethod
    def load(cls, path: str) -> "ChecksumSidecar":
        """Read and self-verify the sidecar (missing → empty/legacy)."""
        sidecar = cls(path)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return sidecar
        sidecar.present = True
        try:
            record = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise ManifestInconsistent(
                f"Checksum sidecar {path!r} is unreadable: {error}"
            )
        if not isinstance(record, dict) or "entries" not in record:
            raise ManifestInconsistent(
                f"Checksum sidecar {path!r} is malformed (no entries)"
            )
        recorded = record.pop("sha256", None)
        if recorded is not None and _self_digest(record) != recorded:
            raise ChecksumMismatch(
                f"Checksum sidecar {path!r} fails its own checksum "
                f"(corrupt sidecar)"
            )
        sidecar.entries = dict(record["entries"])
        sidecar.quarantined = set(record.get("quarantined", ()))
        return sidecar

    def copy(self) -> "ChecksumSidecar":
        duplicate = ChecksumSidecar(self.path)
        duplicate.entries = dict(self.entries)
        duplicate.quarantined = set(self.quarantined)
        duplicate.present = self.present
        return duplicate

    def to_json(self) -> str:
        body = {
            "format": CHECKSUMS_FORMAT,
            "entries": {name: self.entries[name] for name in sorted(self.entries)},
            "quarantined": sorted(self.quarantined),
        }
        body["sha256"] = _self_digest(
            {key: body[key] for key in body if key != "sha256"}
        )
        return json.dumps(body, sort_keys=True, indent=2) + "\n"

    # -- bookkeeping -------------------------------------------------------

    def record(self, name: str, data: bytes) -> None:
        self.entries[name] = checksum_entry(data)
        self.quarantined.discard(name)

    def forget(self, name: str) -> None:
        self.entries.pop(name, None)

    def quarantine(self, name: str) -> None:
        self.entries.pop(name, None)
        self.quarantined.add(name)

    def entry(self, name: str) -> Optional[dict]:
        return self.entries.get(name)

    def covers(self, name: str) -> bool:
        return name in self.entries

    # -- verification ------------------------------------------------------

    def verify(
        self, name: str, data: bytes, policy: str, verified: set
    ) -> None:
        """Verify payload bytes under a read policy.

        ``verified`` is the caller's per-instance memo for the
        ``"open"`` policy (verify once per file, then trust the
        instance's view).  Quarantined payloads always raise — fsck
        moved the bytes aside because they were undecodable.
        """
        if name in self.quarantined:
            raise IntegrityError(
                f"Payload {name!r} was quarantined by fsck --repair; "
                f"restore it from {QUARANTINE_DIR}/ or re-ingest"
            )
        if policy == "never":
            return
        if policy == "open" and name in verified:
            return
        verify_bytes(name, data, self.entries.get(name))
        verified.add(name)
