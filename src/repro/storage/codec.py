"""Compressed-at-rest codecs: the one seam every on-disk payload crosses.

The paper's Sec. 5.4 claim — a merged archive compresses *better* than
independently compressed snapshots because XMill groups like content
across versions — is a claim about the storage format, not about a
post-processing step.  This module makes compression a storage-format
concern: a :class:`Codec` sits between every backend and the bytes it
publishes, so archive files (:class:`~repro.storage.backend.FileBackend`),
chunk files (:class:`~repro.storage.chunked.ChunkedArchiver`) and the
external event stream (:class:`~repro.storage.archiver.ExternalArchiver`)
can all be kept compressed on disk and reopened transparently.

Four codecs ship:

``raw``
    Identity UTF-8 — the pre-codec format, still the default.
``gzip``
    Deterministic gzip (zeroed mtime, no filename) over the whole
    payload; streams are framed gzip whose DEFLATE blocks are flushed
    at :data:`STREAM_FLUSH_BYTES` boundaries, so readers and writers
    stay bounded-memory.
``xmill``
    Documents go through the storage-grade XMill container of
    :mod:`repro.compress.xmill` — structure/content separation with
    per-path value grouping, the compressor the paper credits for the
    archive's win.  Non-document text (the external event stream)
    takes the framed-gzip path: XMill is a *document* compressor.
``xbin``
    The parse-free binary archive-node container of
    :mod:`repro.storage.xbin`: length-prefixed node records with
    interned names and interval-list timestamps, so the hot read path
    (:meth:`Codec.decode_archive`) rebuilds the archive tree by direct
    record decoding instead of an XML parse.  Like ``xmill``, its
    *text* payloads take the framed-gzip stream path.

Backends read and write whole archives through the **archive seam** —
:meth:`Codec.encode_archive` / :meth:`Codec.decode_archive`.  For the
text codecs these default to serializing/parsing Fig. 5 XML (exactly
the pre-seam behaviour, byte for byte); ``xbin`` overrides them with
the record codec, which is where the repeat-read win comes from.

Payloads that must stay greppable/plain stay plain regardless of codec:
``manifest.json``, key-spec sidecars, ``versions.txt``, ``.presence``
sidecars and the WAL record itself.

Every codec's encoded form starts with a distinctive magic
(:data:`~repro.compress.gzipper.GZIP_MAGIC`,
:data:`~repro.compress.xmill.XMILL_MAGIC`; XML/JSONL text starts with
neither), so :func:`detect_codec` can route manifest-less legacy
layouts; manifests record the codec explicitly (``codec`` field).

The contract of ``decode_document(encode_document(text))`` is
*parse-equivalence*: the result parses to a document value-equal to
``parse(text)``.  For text in serializer-normal form — everything the
backends write — the ``raw``/``gzip`` round-trip is byte-identical and
the ``xmill`` round-trip re-serializes through the same
:func:`~repro.xmltree.serializer.to_pretty_string` the backends use, so
it is byte-identical there too.
"""

from __future__ import annotations

import abc
import io
import os
import zlib
from typing import IO, Iterator, Union

from ..compress import gzipper, xmill
from . import xbin

#: Logical bytes between full DEFLATE flushes in streamed gzip writes —
#: each frame is independently decodable, so a reader never has to
#: buffer more than one frame's worth of compressed history.
STREAM_FLUSH_BYTES = 64 * 1024


class CodecError(ValueError):
    """Raised when bytes cannot be decoded by the expected codec."""


class _LayeredTextIO:
    """A text handle over stacked binary layers, closed innermost-out.

    :class:`gzip.GzipFile` does not close the file object beneath it and
    :class:`io.TextIOWrapper` closes only its direct buffer, so streamed
    codec handles stack three layers that must all be released.  Also
    carries the periodic full-flush that frames streamed gzip writes.
    """

    def __init__(
        self,
        text: IO[str],
        layers: tuple,
        frame_flush=None,
        flush_every: int = 0,
    ) -> None:
        self._text = text
        self._layers = layers
        self._frame_flush = frame_flush
        self._flush_every = flush_every
        self._since_flush = 0

    def write(self, data: str) -> int:
        written = self._text.write(data)
        if self._frame_flush is not None:
            self._since_flush += len(data)
            if self._since_flush >= self._flush_every:
                self._text.flush()  # drain the text buffer into the gzip layer
                self._frame_flush()  # close the DEFLATE frame
                self._since_flush = 0
        return written

    def __iter__(self) -> Iterator[str]:
        return iter(self._text)

    def read(self, size: int = -1) -> str:
        return self._text.read(size)

    def close(self) -> None:
        self._text.close()
        for layer in self._layers:
            try:
                layer.close()
            except ValueError:
                pass  # already closed by the layer above

    def __enter__(self) -> "_LayeredTextIO":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Codec(abc.ABC):
    """One at-rest encoding of the archive's payload files."""

    #: Manifest tag and ``--codec`` name.
    name: str = "abstract"
    #: Leading bytes of every encoded payload (empty: no signature).
    magic: bytes = b""

    # -- whole documents (archive XML, chunk XML) -------------------------

    @abc.abstractmethod
    def encode_document(self, text: str) -> bytes:
        """Encode one XML document string for disk."""

    @abc.abstractmethod
    def decode_document(self, data: bytes) -> str:
        """Decode bytes written by :meth:`encode_document`."""

    # -- whole archives (the backend read/write seam) ----------------------

    def encode_archive(self, archive) -> bytes:
        """Encode one in-memory :class:`~repro.core.archive.Archive`.

        The default serializes the Fig. 5 XML and encodes that — byte
        for byte what backends wrote before the archive seam existed.
        Binary codecs override this to skip the text entirely.
        """
        return self.encode_document(archive.to_xml_string())

    def decode_archive(self, data: bytes, spec, options=None):
        """Decode bytes written by :meth:`encode_archive` into an
        :class:`~repro.core.archive.Archive` under ``spec``/``options``.

        The default parses the decoded document text; binary codecs
        override it with direct record decoding (no parse).
        """
        from ..core.archive import Archive  # local: archive sits above codecs

        return Archive.from_xml_string(
            self.decode_document(data), spec, options
        )

    # -- opaque text payloads ---------------------------------------------

    @abc.abstractmethod
    def encode_text(self, text: str) -> bytes:
        """Encode a non-document text payload (e.g. one event line)."""

    @abc.abstractmethod
    def decode_text(self, data: bytes) -> str:
        """Decode bytes written by :meth:`encode_text`."""

    # -- streamed text (the external event stream) ------------------------

    def open_text_write(self, path: str) -> _LayeredTextIO:
        """A bounded-memory text writer for a streamed payload file."""
        return _LayeredTextIO(open(path, "w", encoding="utf-8", newline="\n"), ())

    def open_text_read(self, path: str) -> _LayeredTextIO:
        """A bounded-memory text reader matching :meth:`open_text_write`."""
        return _LayeredTextIO(open(path, "r", encoding="utf-8"), ())

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<Codec {self.name}>"


class RawCodec(Codec):
    """Identity UTF-8 — what every backend wrote before the codec layer."""

    name = "raw"
    magic = b""

    def encode_document(self, text: str) -> bytes:
        return text.encode("utf-8")

    def decode_document(self, data: bytes) -> str:
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as error:
            raise CodecError(f"Not raw UTF-8 text: {error}")

    encode_text = encode_document
    decode_text = decode_document


def _gzip_open_write(path: str) -> _LayeredTextIO:
    import gzip

    binary = open(path, "wb")
    compressed = gzip.GzipFile(
        filename="", mode="wb", fileobj=binary, compresslevel=9, mtime=0
    )
    text = io.TextIOWrapper(compressed, encoding="utf-8", newline="\n")
    return _LayeredTextIO(
        text,
        (compressed, binary),
        frame_flush=lambda: compressed.flush(zlib.Z_FULL_FLUSH),
        flush_every=STREAM_FLUSH_BYTES,
    )


def _gzip_open_read(path: str) -> _LayeredTextIO:
    import gzip

    binary = open(path, "rb")
    compressed = gzip.GzipFile(fileobj=binary, mode="rb")
    text = io.TextIOWrapper(compressed, encoding="utf-8")
    return _LayeredTextIO(text, (compressed, binary))


class GzipCodec(Codec):
    """Deterministic gzip over documents and framed gzip over streams."""

    name = "gzip"
    magic = gzipper.GZIP_MAGIC

    def encode_document(self, text: str) -> bytes:
        return gzipper.gzip_compress(text.encode("utf-8"))

    def decode_document(self, data: bytes) -> str:
        if not data.startswith(self.magic):
            raise CodecError("Not a gzip payload (bad magic)")
        try:
            return gzipper.gzip_decompress(data).decode("utf-8")
        except (OSError, EOFError, UnicodeDecodeError, zlib.error) as error:
            raise CodecError(f"Corrupt gzip payload: {error}")

    encode_text = encode_document
    decode_text = decode_document

    def open_text_write(self, path: str) -> _LayeredTextIO:
        return _gzip_open_write(path)

    def open_text_read(self, path: str) -> _LayeredTextIO:
        return _gzip_open_read(path)


class XMillCodec(Codec):
    """The storage-grade XMill container for documents.

    ``encode_document`` parses the XML text, separates structure from
    content with per-path containers and serializes the result to the
    length-framed container of :func:`repro.compress.xmill.to_bytes`.
    ``decode_document`` re-serializes through the same pretty-printer
    the backends write with, so backend-written files round-trip to the
    identical text.  Timestamp (``<T t="...">``) and provenance
    attributes are ordinary attribute containers — full archive trees
    round-trip, which is what promotes :mod:`repro.compress.xmill` from
    experiment code to a storage serializer.

    XMill is a document compressor; the codec's *text* payloads (the
    external event stream) take the same framed-gzip path as the
    ``gzip`` codec.
    """

    name = "xmill"
    magic = xmill.XMILL_MAGIC

    def encode_document(self, text: str) -> bytes:
        from ..xmltree.parser import parse_document

        return xmill.to_bytes(xmill.compress(parse_document(text)))

    def decode_document(self, data: bytes) -> str:
        from ..xmltree.serializer import to_pretty_string

        if not data.startswith(self.magic):
            raise CodecError("Not an XMill container (bad magic)")
        try:
            document = xmill.decompress(xmill.from_bytes(data))
        except (
            xmill.XMillFormatError,
            zlib.error,
            IndexError,
            UnicodeDecodeError,
        ) as error:
            raise CodecError(f"Corrupt XMill container: {error}")
        return to_pretty_string(document)

    def encode_text(self, text: str) -> bytes:
        return gzipper.gzip_compress(text.encode("utf-8"))

    def decode_text(self, data: bytes) -> str:
        try:
            return gzipper.gzip_decompress(data).decode("utf-8")
        except (OSError, EOFError, UnicodeDecodeError, zlib.error) as error:
            raise CodecError(f"Corrupt gzip payload: {error}")

    def open_text_write(self, path: str) -> _LayeredTextIO:
        return _gzip_open_write(path)

    def open_text_read(self, path: str) -> _LayeredTextIO:
        return _gzip_open_read(path)


class XbinCodec(Codec):
    """The parse-free binary archive-node container (:mod:`.xbin`).

    ``encode_archive``/``decode_archive`` move whole node trees as
    length-prefixed records — no XML text on either side — which is the
    seam every backend's chunk reads and writes cross.  The *document*
    methods stay fully interoperable: ``decode_document`` re-emits the
    Fig. 5 XML (byte-identical to what the text codecs store, so fsck's
    deep scrub and recode verification treat xbin payloads like any
    other), and ``encode_document`` wraps bare text in a text-mode
    container for callers that hold no key spec to build records from.

    Like XMill, xbin is a *document* container; its text payloads (the
    external event stream) take the shared framed-gzip path.
    """

    name = "xbin"
    magic = xbin.XBIN_MAGIC

    def encode_archive(self, archive) -> bytes:
        return xbin.encode_archive(archive)

    def decode_archive(self, data: bytes, spec, options=None):
        return xbin.decode_archive(data, spec, options)

    def encode_document(self, text: str) -> bytes:
        return xbin.encode_text_blob(text)

    def decode_document(self, data: bytes) -> str:
        return xbin.decode_document_text(data)

    def encode_text(self, text: str) -> bytes:
        return gzipper.gzip_compress(text.encode("utf-8"))

    def decode_text(self, data: bytes) -> str:
        try:
            return gzipper.gzip_decompress(data).decode("utf-8")
        except (OSError, EOFError, UnicodeDecodeError, zlib.error) as error:
            raise CodecError(f"Corrupt gzip payload: {error}")

    def open_text_write(self, path: str) -> _LayeredTextIO:
        return _gzip_open_write(path)

    def open_text_read(self, path: str) -> _LayeredTextIO:
        return _gzip_open_read(path)


RAW = RawCodec()
GZIP = GzipCodec()
XMILL = XMillCodec()
XBIN = XbinCodec()

#: Registry backing manifests, ``--codec`` flags and magic sniffing.
CODECS: dict[str, Codec] = {
    codec.name: codec for codec in (RAW, GZIP, XMILL, XBIN)
}
CODEC_NAMES = tuple(CODECS)

CodecLike = Union[str, Codec, None]


def get_codec(codec: CodecLike) -> Codec:
    """Resolve a codec name (or pass a codec through); ``None`` → raw."""
    if codec is None:
        return RAW
    if isinstance(codec, Codec):
        return codec
    try:
        return CODECS[codec]
    except KeyError:
        raise CodecError(
            f"Unknown codec {codec!r} (choose from {', '.join(CODEC_NAMES)})"
        )


def detect_codec(prefix: bytes) -> Codec:
    """The codec whose magic opens ``prefix`` (raw when none matches).

    Used for manifest-less legacy layouts.  A gzip-framed *stream*
    written by the ``xmill`` or ``xbin`` codec sniffs as ``gzip`` —
    harmless, since all three share the framed-gzip text path;
    documents carry the unambiguous XMill/xbin magic.
    """
    for codec in (XBIN, XMILL, GZIP):
        if codec.magic and prefix.startswith(codec.magic):
            return codec
    return RAW


def sniff_codec(path: str) -> Codec:
    """Detect the codec of an existing payload file by its leading bytes."""
    try:
        with open(os.fspath(path), "rb") as handle:
            return detect_codec(handle.read(8))
    except (FileNotFoundError, IsADirectoryError):
        return RAW
