"""The process-pool execution plane for chunk-parallel work.

Chunks are independent by construction — hash-routed keys never share
records across chunk files, every chunk carries the global version
numbering, and all chunk payloads publish through one WAL commit point
— so the hot chunk loops (batch ingest, recode, per-chunk query
evaluation) are embarrassingly parallel.  :class:`ExecutionPool` is the
one place that parallelism lives: an ordered ``map`` over a
``concurrent.futures.ProcessPoolExecutor`` with a deterministic serial
fallback at ``workers=1``.

Design rules, enforced here so callers cannot get them wrong:

* **Workers see plain data.**  Task payloads are bytes, codec *names*,
  key specs and document slices — never live backends, WAL handles or
  open files.  Tasks are pickled eagerly in the parent, so an
  unpicklable payload fails fast as :class:`TaskNotPicklable` instead
  of dying opaquely inside the executor machinery.
* **Results gather before anything publishes.**  Callers run
  ``pool.map`` to completion *before* ``wal.begin()``; a worker failure
  therefore stages nothing and the archive is untouched — the single
  WAL commit point (and with it crash atomicity and byte-identity with
  serial runs) is preserved unchanged.
* **Worker failures come back typed.**  A task that raises inside a
  worker is captured (type name, message, traceback text) and
  re-raised in the parent as :class:`WorkerError`; a worker process
  that dies outright (``BrokenProcessPool``) surfaces the same way.
  At ``workers=1`` tasks run inline and exceptions propagate with
  their original types — the serial fallback is byte-for-byte the
  code path every existing caller already ran.

The module-level ``_*_chunk_task`` functions are the worker entry
points for the three hot loops.  They run identically inline (serial)
and in a forked worker (parallel): same decode → work → encode
sequence on the same plain inputs, which is what makes parallel output
byte-identical to serial by construction.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Any, Callable, Iterable, Optional

#: Test seam: set to an operation name ("ingest" / "recode" / "query")
#: to make the matching worker task raise mid-flight.  Forked workers
#: inherit the setting, so fault drills can kill a real child process
#: and assert that nothing was published.  Never set in production.
_WORKER_FAULT: Optional[str] = None


class TaskNotPicklable(TypeError):
    """A task payload cannot cross the process boundary.

    Raised in the parent, eagerly, with the offending task's position —
    worker payloads must be plain data (bytes, names, specs), never
    live handles.
    """


class WorkerError(RuntimeError):
    """A task failed inside a worker process.

    Carries what the child could report about the original exception:
    ``cause_type`` (the exception class name), ``cause_message`` and
    ``cause_traceback`` (its formatted traceback text), plus the
    ``task_index`` of the failing task in the submitted batch.
    """

    def __init__(
        self,
        message: str,
        *,
        task_index: Optional[int] = None,
        cause_type: Optional[str] = None,
        cause_message: Optional[str] = None,
        cause_traceback: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.cause_type = cause_type
        self.cause_message = cause_message
        self.cause_traceback = cause_traceback


def _check_fault(kind: str) -> None:
    """Raise when the test seam armed a fault for this operation."""
    if _WORKER_FAULT == kind:
        raise RuntimeError(f"injected {kind} worker fault")


def _run_task(blob: bytes) -> tuple:
    """Worker entry: unpickle ``(fn, task)``, run it, report the outcome.

    Every exception — including ``BaseException`` subclasses like the
    fault seam's crash signals — is captured into a plain tuple so the
    parent can re-raise it typed; only a worker that dies outright
    escapes this net (and surfaces as ``BrokenProcessPool``).
    """
    try:
        fn, task = pickle.loads(blob)
        return ("ok", fn(task))
    except BaseException as error:  # noqa: BLE001 - report, don't kill the pool
        return (
            "err",
            type(error).__name__,
            str(error),
            traceback.format_exc(),
        )


class ExecutionPool:
    """Ordered parallel ``map`` with a deterministic serial fallback.

    ``workers=1`` (the default everywhere) runs tasks inline in
    submission order — no processes, no pickling, exceptions propagate
    unchanged.  ``workers>1`` fans tasks out to a process pool and
    gathers results *in submission order*, so callers see the same
    result sequence either way.
    """

    def __init__(self, workers: int = 1) -> None:
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"Need at least one worker (got {workers})")
        self.workers = workers

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list:
        """Apply ``fn`` to every task; results in submission order.

        ``fn`` must be a module-level function (workers import it by
        qualified name).  Tasks are pickled up front when dispatching
        to processes — :class:`TaskNotPicklable` names the first task
        that cannot cross the boundary.  A task that raises in a worker
        re-raises here as :class:`WorkerError`.
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            # The deterministic serial path: inline, original
            # exception types, zero serialization.
            return [fn(task) for task in tasks]
        blobs = []
        for position, task in enumerate(tasks):
            try:
                blobs.append(
                    pickle.dumps((fn, task), protocol=pickle.HIGHEST_PROTOCOL)
                )
            except Exception as error:
                raise TaskNotPicklable(
                    f"Task {position} for {getattr(fn, '__name__', fn)!r} "
                    f"cannot be pickled for worker dispatch — worker "
                    f"payloads must be plain data (bytes, codec names, "
                    f"specs), not live handles: {error}"
                ) from error
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        results = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(blobs))
        ) as executor:
            futures = [executor.submit(_run_task, blob) for blob in blobs]
            for position, future in enumerate(futures):
                try:
                    outcome = future.result()
                except BrokenProcessPool as error:
                    raise WorkerError(
                        f"Worker process died while running task {position} "
                        f"of {getattr(fn, '__name__', fn)!r}: {error}",
                        task_index=position,
                    ) from error
                if outcome[0] == "err":
                    _, cause_type, cause_message, cause_tb = outcome
                    raise WorkerError(
                        f"Task {position} of "
                        f"{getattr(fn, '__name__', fn)!r} failed in a "
                        f"worker: {cause_type}: {cause_message}",
                        task_index=position,
                        cause_type=cause_type,
                        cause_message=cause_message,
                        cause_traceback=cause_tb,
                    )
                results.append(outcome[1])
        return results


# -- worker task functions for the three hot chunk loops ----------------------
#
# Imports stay inside the functions: the chunked backend imports this
# module, so pulling ``chunked``/``query`` symbols at module scope
# would cycle.  Each function takes one plain-data task tuple and
# returns plain data; checksum verification happened in the parent
# (the bytes handed over are already trusted).


def _ingest_chunk_task(task: tuple) -> tuple:
    """Nested-Merge one chunk's slice of every batch version.

    Task: ``(index, payload, codec_name, spec, options, version_count,
    slices)`` where ``payload`` is the chunk's verified at-rest bytes
    (``None`` for a fresh chunk), ``version_count`` the archive-global
    version counter a fresh chunk must catch up to, and ``slices`` one
    partition shell (or ``None``) per batch version.

    Returns ``(index, encoded_bytes, presence_text, merge_stats)``.
    """
    index, payload, codec_name, spec, options, version_count, slices = task
    from ..core.archive import Archive
    from ..core.ingest import IngestSession
    from .chunked import _chunk_presence_of
    from .codec import get_codec

    _check_fault("ingest")
    codec = get_codec(codec_name)
    if payload is None:
        archive = Archive(spec, options)
        # Bring the fresh chunk up to the current version count so
        # chunk timestamps stay globally aligned.
        for _ in range(version_count):
            archive.add_version(None)
    else:
        archive = codec.decode_archive(payload, spec, options)
    session = IngestSession(archive)
    for part in slices:
        # Versions without records for this chunk are empty versions
        # locally, keeping timestamps globally aligned.
        session.add(part)
    presence = _chunk_presence_of(archive).to_text()
    encoded = codec.encode_archive(archive)
    return (index, encoded, presence, session.stats)


def _recode_chunk_task(task: tuple) -> tuple:
    """Decode one chunk under its old codec, re-encode, verify identity.

    Task: ``(index, payload, source_codec_name, target_codec_name,
    spec, options)``.  Returns ``(index, encoded_bytes)``; raises
    :class:`~repro.storage.codec.CodecError` (re-raised as
    :class:`WorkerError` across processes) when the round-trip is not
    the identity.
    """
    index, payload, source_name, target_name, spec, options = task
    from .backend import verify_recoded_document
    from .codec import get_codec

    _check_fault("recode")
    source = get_codec(source_name)
    target = get_codec(target_name)
    # Decode once through the archive seam, re-encode through it, then
    # verify the staged payload re-emits the same Fig. 5 document the
    # source encoding held — codecs that store binary records (xbin)
    # take part in the identity check via their document re-emission.
    archive = source.decode_archive(payload, spec, options)
    text = archive.to_xml_string()
    encoded = target.encode_archive(archive)
    verify_recoded_document(text, encoded, target)
    return (index, encoded)


def _query_chunk_task(task: tuple) -> tuple:
    """Evaluate a compiled plan over one chunk archive.

    Task: ``(index, payload, codec_name, spec, options, plan,
    version)``.  Returns ``(index, items, stats)`` where ``items`` is
    the chunk's ordered ``(anchor, seq, element)`` result list — the
    same stream the serial evaluator feeds the k-way merge — and
    ``stats`` the chunk-local
    :class:`~repro.query.result.QueryStats` for the parent to merge.
    """
    index, payload, codec_name, spec, options, plan, version = task
    from ..query.exec import MemoryCursor, run_plan
    from ..query.result import QueryStats
    from .codec import get_codec

    _check_fault("query")
    codec = get_codec(codec_name)
    archive = codec.decode_archive(payload, spec, options)
    stats = QueryStats()
    items = []
    root_timestamp = archive.root.timestamp
    if root_timestamp is not None:
        cursor = MemoryCursor(archive, archive.root, root_timestamp, version, stats)
        for seq, (anchor, element) in enumerate(run_plan(cursor, plan, stats)):
            items.append((anchor, seq, element))
    return (index, items, stats)
