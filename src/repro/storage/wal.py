"""Write-ahead commit log and atomic file publication.

The durable backends never overwrite archive state in place.  A commit
proceeds in three phases:

1. **Stage** — every file of the commit is written to ``<final>.tmp``
   (same directory, so the later rename never crosses filesystems) and
   fsynced;
2. **Append** — one WAL record listing the staged files (plus commit
   metadata) is written, itself via tmp+rename, and the directory is
   fsynced.  The record is the *intent log* that makes recovery
   deterministic — not yet the commit point;
3. **Publish** — each staged file is moved over its final name with
   :func:`os.replace`, the directory is fsynced, and the WAL record is
   removed.  The **first publish rename is the commit point**: a batch
   whose record is durable but whose files are all still staged rolls
   back on recovery, so nothing may be acknowledged to a caller before
   publish begins.

Recovery on open inspects the WAL record:

* no record → any ``*.tmp`` stragglers are from a crash mid-stage;
  they are discarded (rollback — nothing was committed);
* record present and *every* staged file still has its ``.tmp`` → the
  crash hit between append and publish; the batch is rolled back
  (tmps and record deleted) and the archive reads at the pre-batch
  state;
* record present with some tmps already renamed → the crash hit
  mid-publish; the remaining renames are replayed (roll forward) so the
  archive never exposes a torn mix of old and new files.

The roll-back-if-nothing-published rule keeps recovery deterministic:
either no rename happened (the batch is droppable) or at least one did
(the batch must complete).

Records carry a self-checksum (SHA-256 over their canonical body), so
recovery can *classify* an unreadable record deterministically: a
record that fails to parse or to verify is torn or rotted — and since
the record itself publishes atomically (tmp + rename), a torn record
can never have been the commit point, so recovery discards it and
rolls the staged files back (``"discarded-torn-record"``) instead of
raising.

Every durable operation here crosses the fault-injection seam of
:mod:`repro.storage.faults`; payload writes additionally retry
transient ``EIO``/``ENOSPC`` failures with bounded backoff.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional

from . import faults
from .integrity import _self_digest

WAL_FORMAT = 1


class WalError(ValueError):
    """Raised when a commit log cannot be interpreted.

    ``reason`` classifies the failure: ``"torn"`` for a record whose
    bytes fail to parse or to match their self-checksum (an incomplete
    or rotted write — never a committed intent), ``"malformed"`` for a
    structurally wrong but intact record (written by a broken tool).
    """

    def __init__(self, message: str, reason: str = "torn") -> None:
        super().__init__(message)
        self.reason = reason


def fsync_directory(directory: str) -> None:
    """Flush a directory's entry table (rename durability on POSIX).

    Platforms that refuse ``open`` on directories (Windows) skip the
    sync; the rename itself is still atomic there.
    """
    faults.before_op("dirsync", directory)
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_once(path: str, data: bytes) -> None:
    faults.before_op("write", path)
    data = faults.filter_payload(path, data)
    with open(path, "wb") as handle:
        handle.write(data)
        handle.flush()
        faults.before_op("fsync", path)
        os.fsync(handle.fileno())


def write_file_durable(path: str, payload: "str | bytes") -> None:
    """Write ``payload`` to ``path`` and fsync the file (not the dir).

    Text is written UTF-8; bytes are written verbatim — codec-encoded
    payloads stage through the same durability path as plain text.
    Transient ``EIO``/``ENOSPC`` failures are retried with bounded
    backoff; anything persistent propagates.
    """
    data = payload.encode("utf-8") if isinstance(payload, str) else payload
    faults.retry_transient(lambda: _write_once(path, data))


def replace_file(tmp: str, path: str) -> None:
    """Rename a staged file over its final name (the seam's commit op)."""
    faults.before_op("replace", path)
    os.replace(tmp, path)


def atomic_write_text(path: str, text: str) -> None:
    """Publish ``text`` at ``path`` atomically: tmp, fsync, rename,
    directory fsync.  Readers see either the old or the new content,
    never a torn write."""
    tmp = path + ".tmp"
    write_file_durable(tmp, text)
    replace_file(tmp, path)
    fsync_directory(os.path.dirname(os.path.abspath(path)))


class WriteAheadLog:
    """One archive's commit log: stage, append, publish, recover.

    ``path`` is the WAL record's location; staged files may live in any
    directory (entries are recorded relative to the WAL's directory).
    A :class:`Commit` built by :meth:`begin` accumulates staged files;
    its :meth:`Commit.commit` runs append + publish.  Tests simulate
    crashes by monkeypatching :meth:`publish` to raise after
    :meth:`append` has made the record durable.
    """

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        self.directory = os.path.dirname(self.path)

    # -- commit protocol ---------------------------------------------------

    def begin(self) -> "Commit":
        return Commit(self)

    def append(self, entries: list[str], meta: Optional[dict] = None) -> None:
        """Make the intent record durable (recovery's decision input;
        the commit point is the first rename in :meth:`publish`).

        The record carries a self-checksum so recovery can tell a torn
        or rotted record from a durable intent.
        """
        record = {
            "format": WAL_FORMAT,
            "entries": [os.path.relpath(entry, self.directory) for entry in entries],
            "meta": meta or {},
        }
        record["sha256"] = _self_digest(record)
        atomic_write_text(self.path, json.dumps(record))

    def publish(self, entries: list[str]) -> None:
        """Rename every staged file over its final name and clear the
        record.  Idempotent: entries whose tmp is already gone were
        published before a crash and are skipped."""
        for entry in entries:
            tmp = entry + ".tmp"
            if os.path.exists(tmp):
                replace_file(tmp, entry)
        fsync_directory(self.directory)
        self.clear()

    def clear(self) -> None:
        if os.path.exists(self.path):
            faults.before_op("remove", self.path)
            os.remove(self.path)
            fsync_directory(self.directory)

    # -- recovery ----------------------------------------------------------

    def read_record(self) -> Optional[dict]:
        """The current intent record, verified; ``None`` when absent.

        Raises :class:`WalError` with ``reason="torn"`` for a record
        whose bytes fail to parse or to match their self-checksum, and
        ``reason="malformed"`` for an intact record of the wrong shape.
        :meth:`recover` turns either into a deterministic outcome
        rather than propagating.
        """
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            raise WalError(
                f"Unreadable commit log {self.path!r}: {error}", reason="torn"
            )
        if not isinstance(record, dict) or "entries" not in record:
            raise WalError(
                f"Malformed commit log {self.path!r}", reason="malformed"
            )
        recorded = record.pop("sha256", None)
        if recorded is None:
            # No self-checksum means no verifiable intent — a flipped
            # bit inside the key name must not smuggle a record past
            # verification, so absence is treated as malformed (and
            # recovery rolls staged files back, never forward).
            raise WalError(
                f"Commit log {self.path!r} carries no self-checksum",
                reason="malformed",
            )
        if _self_digest(record) != recorded:
            raise WalError(
                f"Commit log {self.path!r} fails its self-checksum "
                f"(torn or corrupt record)",
                reason="torn",
            )
        return record

    def recover(self, stray_tmps: Iterable[str] = ()) -> str:
        """Bring the archive directory to a consistent state.

        Returns ``"clean"``, ``"rolled-back"``, ``"rolled-forward"`` or
        ``"discarded-torn-record"``.  ``stray_tmps`` names tmp files
        the caller knows could exist (crash mid-stage); they are
        removed when no commit record claims them.
        """
        # The record's own staging file is never durable intent — a
        # crash between writing and renaming it leaves the previous
        # record (or none) in force.  Sweep it first, unconditionally.
        if os.path.exists(self.path + ".tmp"):
            os.remove(self.path + ".tmp")
        discarded = False
        try:
            record = self.read_record()
        except WalError:
            # A torn (or malformed) record cannot have been the commit
            # point — the record itself is published atomically, so an
            # unreadable one was never durable intent.  Discard it and
            # fall through to the no-record path: staged tmps roll back.
            os.remove(self.path)
            record = None
            discarded = True
        if record is None:
            removed = False
            for tmp in stray_tmps:
                if os.path.exists(tmp):
                    os.remove(tmp)
                    removed = True
            if discarded:
                return "discarded-torn-record"
            return "rolled-back" if removed else "clean"
        entries = [
            os.path.join(self.directory, entry) for entry in record["entries"]
        ]
        if all(os.path.exists(entry + ".tmp") for entry in entries):
            # Nothing was published: drop the batch (pre-batch state).
            for entry in entries:
                os.remove(entry + ".tmp")
            self.clear()
            return "rolled-back"
        # Publication started: finish it so no torn mix survives.
        self.publish(entries)
        return "rolled-forward"


class Commit:
    """Staged files of one atomic commit (see :class:`WriteAheadLog`)."""

    def __init__(self, wal: WriteAheadLog) -> None:
        self._wal = wal
        self._entries: list[str] = []

    def stage(self, path: str, payload: "str | bytes") -> None:
        """Write one file of the commit (text or bytes) to its staging name."""
        path = os.path.abspath(path)
        write_file_durable(path + ".tmp", payload)
        self._entries.append(path)

    def commit(self, meta: Optional[dict] = None) -> None:
        """Append the record, then publish every staged file."""
        if not self._entries:
            return
        self._wal.append(self._entries, meta)
        self._wal.publish(self._entries)
        self._entries = []

    def abort(self) -> None:
        """Discard staged files after a failure before the append."""
        for entry in self._entries:
            tmp = entry + ".tmp"
            if os.path.exists(tmp):
                os.remove(tmp)
        self._entries = []
