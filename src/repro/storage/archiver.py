"""The external-memory archiver facade (Sec. 6).

:class:`ExternalArchiver` keeps the archive as a key-sorted event
stream on disk.  ``add_version`` runs the paper's three phases:

1. **Annotate** the incoming version with key values (Sec. 6.1);
2. **Sort** it into a stream via bounded-memory sorted runs and k-way
   merging (Sec. 6.2);
3. **Merge** the sorted version stream with the archive stream in one
   pass (Sec. 6.3).

The archive itself is never materialized in memory; ``retrieve`` streams
the archive and keeps only the requested version.  I/O is accounted in
pages so the analysis of Sec. 6 can be checked experimentally.
"""

from __future__ import annotations

import os
from typing import Iterable, Optional

from ..core.archive import Archive, ArchiveOptions, ElementHistory, ROOT_TAG
from ..core.merge import MergeStats
from ..core.nodes import ArchiveNode
from ..core.versionset import VersionSet
from ..indexes.keyindex import KeyIndex
from ..indexes.timestamp_tree import ProbeCount, TimestampTreeIndex
from ..keys.annotate import KeyLabel, annotate_keys
from ..keys.spec import KeySpec
from ..xmltree.model import Element
from .chunked import (
    ChunkedArchiver,
    ChunkedArchiverError,
    concatenate_parts,
    route_to_owning_chunk,
)
from .events import (
    DEFAULT_PAGE_SIZE,
    EventWriter,
    ExitEvent,
    FrontierEvent,
    IOStats,
    NodeEvent,
    PeekableEvents,
    archive_node_to_events,
    events_to_archive_node,
    read_events,
)
from .extmerge import merge_archive_stream
from .extsort import sort_version


class ExternalArchiver:
    """A disk-resident archive with bounded-memory version merging."""

    def __init__(
        self,
        directory: str,
        spec: KeySpec,
        memory_budget: int = 10_000,
        fan_in: int = 8,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        """``memory_budget`` is the node budget of one sorted run — the
        paper's ``M``; ``fan_in`` models ``(M/B) - 1`` merge arity."""
        self.directory = directory
        self.spec = spec
        self.memory_budget = memory_budget
        self.fan_in = fan_in
        self.stats = IOStats(page_size=page_size)
        os.makedirs(directory, exist_ok=True)
        self.archive_path = os.path.join(directory, "archive.jsonl")
        if not os.path.exists(self.archive_path):
            self._write_empty_archive()

    # -- bookkeeping ---------------------------------------------------------

    def _write_empty_archive(self) -> None:
        with EventWriter(self.archive_path, self.stats) as writer:
            writer.write(
                NodeEvent(
                    label=KeyLabel(tag=ROOT_TAG, key=()),
                    attributes=(),
                    timestamp=VersionSet(),
                )
            )
            writer.write(ExitEvent())

    def _root_timestamp(self) -> VersionSet:
        events = read_events(self.archive_path, IOStats())  # peek without accounting
        root = next(events)
        assert isinstance(root, NodeEvent) and root.timestamp is not None
        return root.timestamp

    @property
    def last_version(self) -> int:
        timestamp = self._root_timestamp()
        return timestamp.max_version() if timestamp else 0

    # -- the three phases ---------------------------------------------------------

    def add_version(self, document: Optional[Element]) -> MergeStats:
        """Annotate, sort and merge the next version (Sec. 6)."""
        number = self.last_version + 1
        if document is None:
            self._add_empty_version(number)
            return MergeStats()
        annotated = annotate_keys(document, self.spec)  # Sec. 6.1
        version_path = sort_version(  # Sec. 6.2
            annotated,
            self.directory,
            budget=self.memory_budget,
            stats=self.stats,
            fan_in=self.fan_in,
            prefix=f"v{number}",
        )
        out_path = os.path.join(self.directory, "archive.next.jsonl")
        merge_stats = merge_archive_stream(  # Sec. 6.3
            self.archive_path, version_path, out_path, number, self.stats
        )
        os.replace(out_path, self.archive_path)
        os.remove(version_path)
        return merge_stats

    def ingest_batch(self, documents: Iterable[Optional[Element]]) -> MergeStats:
        """Annotate/sort/merge a whole sequence of versions.

        The stream merge is already delta-driven (one pass over archive
        and version streams), so the batch path's job is bookkeeping:
        one ``last_version`` probe for the whole batch and accumulated
        :class:`MergeStats`.  Subtree fingerprints live in the in-memory
        and chunked paths; persisting digests in the event stream is the
        sharding/async step the ROADMAP stages after this.
        """
        total = MergeStats()
        for document in documents:
            total.accumulate(self.add_version(document))
            total.versions += 1
        return total

    def _add_empty_version(self, number: int) -> None:
        out_path = os.path.join(self.directory, "archive.next.jsonl")
        events = read_events(self.archive_path, self.stats)
        with EventWriter(out_path, self.stats) as writer:
            root = next(events)
            assert isinstance(root, NodeEvent) and root.timestamp is not None
            timestamp = root.timestamp.copy()
            timestamp.add(number)
            from dataclasses import replace

            writer.write(replace(root, timestamp=timestamp))
            depth = 1
            for event in events:
                if isinstance(event, (NodeEvent, FrontierEvent)):
                    if depth == 1 and event.timestamp is None:
                        event = replace(event, timestamp=timestamp.without(number))
                    if isinstance(event, NodeEvent):
                        depth += 1
                elif isinstance(event, ExitEvent):
                    depth -= 1
                writer.write(event)
        os.replace(out_path, self.archive_path)

    # -- queries -------------------------------------------------------------------

    def retrieve(self, version: int) -> Optional[Element]:
        """Stream the archive, keeping only the requested version."""
        events = PeekableEvents(read_events(self.archive_path, self.stats))
        root = events.next()
        assert isinstance(root, NodeEvent) and root.timestamp is not None
        if version not in root.timestamp:
            raise ValueError(
                f"Version {version} not archived "
                f"(have {root.timestamp.to_text() or 'none'})"
            )
        result = self._reconstruct_children(events, version, root.timestamp)
        return result[0] if result else None

    def _reconstruct_children(
        self, events: PeekableEvents, version: int, inherited: VersionSet
    ) -> list[Element]:
        children: list[Element] = []
        while True:
            head = events.peek()
            if head is None or isinstance(head, ExitEvent):
                if head is not None:
                    events.next()
                return children
            event = events.next()
            assert isinstance(event, (NodeEvent, FrontierEvent))
            timestamp = (
                event.timestamp if event.timestamp is not None else inherited
            )
            relevant = version in timestamp
            if isinstance(event, FrontierEvent):
                if relevant:
                    element = Element(event.label.tag)
                    for name, value in event.attributes:
                        element.set_attribute(name, value)
                    for alternative in event.alternatives:
                        if (
                            alternative.timestamp is None
                            or version in alternative.timestamp
                        ):
                            for content in alternative.content:
                                element.append(content.copy())
                            break
                    children.append(element)
                continue
            if relevant:
                element = Element(event.label.tag)
                for name, value in event.attributes:
                    element.set_attribute(name, value)
                for child in self._reconstruct_children(events, version, timestamp):
                    element.append(child)
                children.append(element)
            else:
                # Irrelevant subtree: drain it without building anything.
                depth = 1
                while depth:
                    skipped = events.next()
                    if isinstance(skipped, NodeEvent):
                        depth += 1
                    elif isinstance(skipped, ExitEvent):
                        depth -= 1
        return children

    def to_archive(self, options: Optional[ArchiveOptions] = None) -> Archive:
        """Materialize the stream into an in-memory :class:`Archive`.

        Used by the equivalence tests; defeats the purpose otherwise.
        """
        archive = Archive(self.spec, options)
        events = PeekableEvents(read_events(self.archive_path, self.stats))
        root = events.next()
        assert isinstance(root, NodeEvent) and root.timestamp is not None
        archive.root = ArchiveNode(
            label=root.label, timestamp=root.timestamp.copy()
        )
        while not isinstance(events.peek(), ExitEvent):
            archive.root.children.append(events_to_archive_node(events))
        return archive

    def archive_bytes(self) -> int:
        """Current size of the on-disk archive stream."""
        return os.path.getsize(self.archive_path)


def archive_to_stream(archive: Archive, path: str, stats: IOStats) -> None:
    """Write an in-memory archive as a sorted event stream."""
    assert archive.root.timestamp is not None
    with EventWriter(path, stats) as writer:
        writer.write(
            NodeEvent(
                label=archive.root.label,
                attributes=archive.root.attributes,
                timestamp=archive.root.timestamp,
            )
        )
        for child in archive.root.children:
            archive_node_to_events(child, writer)
        writer.write(ExitEvent())


class PersistentIngestor:
    """Batched ingestion into the persistent chunked store, with live
    retrieval and history indexes.

    The ingestion pipeline of :meth:`ChunkedArchiver.ingest_batch` flushes
    each chunk to disk once per batch; this facade hooks that flush to
    keep a :class:`~repro.indexes.keyindex.KeyIndex` (Sec. 7.2 history
    lookups) and a
    :class:`~repro.indexes.timestamp_tree.TimestampTreeIndex` (Sec. 7.1
    guided retrieval) current per chunk, so queries between batches hit
    indexes instead of re-walking chunk archives.  The index cache holds
    each chunk's in-memory archive; the on-disk chunk files remain the
    durable source of truth and are re-adopted lazily after a restart.
    """

    def __init__(
        self,
        directory: str,
        spec: KeySpec,
        chunk_count: int = 8,
        options: Optional[ArchiveOptions] = None,
    ) -> None:
        self.chunked = ChunkedArchiver(directory, spec, chunk_count, options)
        self._key_indexes: dict[int, KeyIndex] = {}
        self._timestamp_indexes: dict[int, TimestampTreeIndex] = {}
        #: Chunk adoptions (XML parses) retrieval skipped because the
        #: chunk's presence timestamp excluded the version (cumulative).
        self.chunks_pruned = 0

    @property
    def last_version(self) -> int:
        return self.chunked.last_version

    def ingest_batch(self, documents: Iterable[Optional[Element]]) -> MergeStats:
        """Batch-merge versions; chunk indexes refresh as chunks land."""
        return self.chunked.ingest_batch(documents, on_chunk=self._index_chunk)

    def _index_chunk(self, index: int, archive: Archive) -> None:
        key_index = self._key_indexes.get(index)
        if key_index is None:
            self._key_indexes[index] = KeyIndex(archive)
        else:
            key_index.refresh(archive)
        timestamp_index = self._timestamp_indexes.get(index)
        if timestamp_index is None:
            self._timestamp_indexes[index] = TimestampTreeIndex(archive)
        else:
            timestamp_index.refresh(archive)

    def _adopt_chunk(self, index: int) -> bool:
        """Lazily index a chunk that exists on disk but not in the cache
        (e.g. after a restart)."""
        if index in self._timestamp_indexes:
            return True
        if not os.path.exists(self.chunked._chunk_path(index)):
            return False
        self._index_chunk(index, self.chunked._load_chunk(index))
        return True

    def retrieve(
        self, version: int, *, copy_content: bool = False
    ) -> tuple[Optional[Element], ProbeCount]:
        """Concatenate per-chunk reconstructions, guided by the
        timestamp trees; returns the probe accounting alongside.

        Unadopted chunks whose presence timestamps exclude ``version``
        are pruned before their XML is ever parsed — the chunk-level
        analogue of the timestamp trees' subtree pruning.

        The result shares frontier content with the cached chunk
        archives (which later batches flush back to disk); callers that
        intend to mutate the returned document must pass
        ``copy_content=True`` or they corrupt the cache.
        """
        if not 1 <= version <= self.last_version:
            raise ChunkedArchiverError(
                f"Version {version} not archived (have 1..{self.last_version})"
            )
        probes = ProbeCount()

        def parts():
            for index in range(self.chunked.chunk_count):
                if index not in self._timestamp_indexes:
                    presence = self.chunked.chunk_presence(index)
                    if presence is not None and version not in presence:
                        self.chunks_pruned += 1
                        continue
                if not self._adopt_chunk(index):
                    continue
                part, part_probes = self._timestamp_indexes[index].retrieve(
                    version, copy_content=copy_content
                )
                probes.merge(part_probes)
                yield part

        return concatenate_parts(parts()), probes

    def history(self, path: str) -> ElementHistory:
        """Route a history query through the owning chunk's key index.

        The index's binary searches locate the owning chunk (and reject
        the others) in ``O(l log d)``; the chunk's archive — already
        cached by the index — then supplies the full
        :class:`ElementHistory` including the ``changes`` content runs,
        matching :meth:`ChunkedArchiver.history`.
        """
        def attempt(index: int):
            if not self._adopt_chunk(index):
                return None
            key_index = self._key_indexes[index]
            key_index.history(path)  # raises when not in this chunk
            return key_index.archive.history(path)

        return route_to_owning_chunk(self.chunked.chunk_count, attempt, path)

    def drop_caches(self) -> None:
        """Release the per-chunk index/archive caches.

        The caches trade the chunked store's memory bound for query
        speed: every indexed chunk's archive stays in RAM.  Long-lived
        processes that have touched many chunks can drop the caches and
        let :meth:`retrieve`/:meth:`history` re-adopt chunks lazily from
        the durable chunk files.
        """
        self._key_indexes.clear()
        self._timestamp_indexes.clear()
