"""The external-memory archiver facade (Sec. 6).

:class:`ExternalArchiver` keeps the archive as a key-sorted event
stream on disk.  ``add_version`` runs the paper's three phases:

1. **Annotate** the incoming version with key values (Sec. 6.1);
2. **Sort** it into a stream via bounded-memory sorted runs and k-way
   merging (Sec. 6.2);
3. **Merge** the sorted version stream with the archive stream in one
   pass (Sec. 6.3).

The archive itself is never materialized in memory; ``retrieve`` streams
the archive and keeps only the requested version, and ``history`` and
``stats`` are likewise single-pass stream walks, so the whole
:class:`~repro.storage.backend.StorageBackend` surface runs in bounded
memory.  I/O is accounted in pages (``io_stats``) so the analysis of
Sec. 6 can be checked experimentally.
"""

from __future__ import annotations

import os
import re
from typing import Iterable, Optional

from ..core.archive import (
    Archive,
    ArchiveError,
    ArchiveOptions,
    ArchiveStats,
    ElementHistory,
    ROOT_TAG,
    _parse_history_path,
    missing_element_error,
)
from ..core.merge import MergeStats
from ..core.nodes import ArchiveNode
from ..core.tempquery import ChangeReport, archive_diff
from ..core.tstree import ProbeCount
from ..core.versionset import VersionSet
from ..indexes.keyindex import KeyIndex
from ..indexes.timestamp_tree import TimestampTreeIndex
from ..keys.annotate import KeyLabel, annotate_keys
from ..keys.spec import KeySpec
from ..xmltree.model import Element
from ..xmltree.serializer import to_string
from .backend import (
    Manifest,
    PartitionedBackend,
    RecodeReport,
    StorageBackend,
    key_spec_fingerprint,
    read_manifest,
)
from .chunked import (
    ChunkedArchiver,
    ChunkedArchiverError,
    concatenate_parts,
    restore_key_order,
    route_to_owning_chunk,
)
from .events import (
    DEFAULT_PAGE_SIZE,
    EventWriter,
    ExitEvent,
    FrontierEvent,
    IOStats,
    NodeEvent,
    PeekableEvents,
    archive_node_to_events,
    events_to_archive_node,
    read_events,
)
from .cache import chunk_cache
from .codec import CodecLike, get_codec, sniff_codec
from .extmerge import merge_archive_stream
from .extsort import sort_version
from .integrity import (
    CHECKSUMS_NAME,
    ChecksumSidecar,
    IntegrityError,
    ManifestInconsistent,
    hash_file,
    validate_policy,
    verify_file,
)
from .wal import (
    WriteAheadLog,
    fsync_directory,
    replace_file,
    write_file_durable,
)
from . import faults

#: The event stream's name inside the archive directory (and its key
#: in the checksum sidecar).
STREAM_NAME = "archive.jsonl"

#: Intermediate files of an interrupted annotate/sort/merge pass.
_SCRATCH_PATTERN = re.compile(r"^v\d+-(run|merge)\S*\.jsonl$")


class ExternalArchiver(StorageBackend):
    """A disk-resident archive with bounded-memory version merging."""

    kind = "external"

    def __init__(
        self,
        directory: "str | os.PathLike",
        spec: KeySpec,
        memory_budget: int = 10_000,
        fan_in: int = 8,
        page_size: int = DEFAULT_PAGE_SIZE,
        codec: CodecLike = None,
        verify: str = "always",
        workers: int = 1,
        recover: bool = True,
        cache_reads: bool = False,
    ) -> None:
        """``memory_budget`` is the node budget of one sorted run — the
        paper's ``M``; ``fan_in`` models ``(M/B) - 1`` merge arity.
        ``codec`` encodes the event stream (and its scratch runs) at
        rest — framed gzip under the compressing codecs, so every pass
        still streams in bounded memory.  ``verify`` sets the stream's
        checksum policy for reads.  ``workers`` is accepted for
        interface uniformity with the chunked backend; the single
        event stream is merged sequentially by design.  ``recover=False``
        skips both WAL recovery and the scratch sweep — for read-only
        snapshot opens running next to a live writer, whose in-flight
        staged commit and scratch files must not be touched."""
        directory = os.fspath(directory)
        self.directory = directory
        self.storage_root = directory
        self.spec = spec
        self.memory_budget = memory_budget
        self.fan_in = fan_in
        self.workers = max(1, int(workers))
        self.verify = validate_policy(verify)
        self.io_stats = IOStats(page_size=page_size)
        os.makedirs(directory, exist_ok=True)
        self.archive_path = os.path.join(directory, STREAM_NAME)
        # Every mutation publishes through the WAL; settle any
        # interrupted commit before the scratch sweep so the stream,
        # manifest and checksum sidecar agree on one state.
        self._wal = WriteAheadLog(os.path.join(directory, "wal.json"))
        if recover:
            self._wal.recover(
                stray_tmps=[
                    os.path.join(directory, name)
                    for name in os.listdir(directory)
                    if name.endswith(".tmp")
                ]
            )
            self._recover()
        self.codec = (
            get_codec(codec)
            if codec is not None
            else sniff_codec(self.archive_path)
        )
        self._checksums = ChecksumSidecar.load(
            os.path.join(directory, CHECKSUMS_NAME)
        )
        self._verified: set[str] = set()
        try:
            manifest = read_manifest(directory)
        except ManifestInconsistent:
            manifest = None  # fsck's problem, not open's
        self.generation = manifest.generation if manifest is not None else 0
        #: Read-only handles cache the materialized stream (the
        #: :meth:`to_archive` product ``diff`` and fallback queries pay
        #: for) in the process-wide decoded-chunk cache, keyed by the
        #: stream's sidecar checksum; writers never do.
        self.cache_reads = cache_reads
        self.cache_hits = 0
        self.cache_misses = 0
        if not os.path.exists(self.archive_path):
            if self.verify != "never" and (
                self._checksums.covers(STREAM_NAME)
                or STREAM_NAME in self._checksums.quarantined
            ):
                raise ManifestInconsistent(
                    f"Event stream {STREAM_NAME!r} is recorded in the "
                    f"checksum sidecar but missing on disk"
                )
            self._write_empty_archive()

    # -- bookkeeping ---------------------------------------------------------

    def _recover(self) -> None:
        """Discard scratch files of an interrupted merge.

        The stream merge publishes by a single :func:`os.replace` of
        ``archive.next.jsonl`` over ``archive.jsonl`` — atomic on its
        own — so a crash mid-merge leaves only the pre-merge archive
        plus scratch files (the unpublished next stream and sorted
        runs), all droppable.
        """
        stale = os.path.join(self.directory, "archive.next.jsonl")
        if os.path.exists(stale):
            os.remove(stale)
        for name in os.listdir(self.directory):
            if _SCRATCH_PATTERN.match(name):
                os.remove(os.path.join(self.directory, name))

    def _write_empty_archive(self) -> None:
        with EventWriter(self.archive_path, self.io_stats, self.codec) as writer:
            writer.write(
                NodeEvent(
                    label=KeyLabel(tag=ROOT_TAG, key=()),
                    attributes=(),
                    timestamp=VersionSet(),
                )
            )
            writer.write(ExitEvent())
        # Cover the bootstrap stream so the very first archive state is
        # already verifiable.
        digest, size = hash_file(self.archive_path)
        self._checksums.entries[STREAM_NAME] = {"sha256": digest, "bytes": size}
        self._write_checksums_alone()

    def _write_checksums_alone(self) -> None:
        from .wal import atomic_write_text

        atomic_write_text(self._checksums.path, self._checksums.to_json())
        self._checksums.present = True

    def _on_manifest_written(self, text: str) -> None:
        # A standalone manifest write (archive creation) publishes the
        # sidecar right behind it so the manifest is covered from birth.
        from .backend import MANIFEST_NAME

        self._checksums.record(MANIFEST_NAME, text.encode("utf-8"))
        self._write_checksums_alone()

    def _verify_stream(self) -> None:
        """Check the event stream against its recorded checksum under
        the read policy, before any parse touches it."""
        if self.verify == "never":
            return
        if self.verify == "open" and STREAM_NAME in self._verified:
            return
        if STREAM_NAME in self._checksums.quarantined:
            raise IntegrityError(
                f"Event stream {STREAM_NAME!r} was quarantined by fsck "
                f"--repair; restore it from quarantine/ or re-ingest"
            )
        verify_file(
            STREAM_NAME, self.archive_path, self._checksums.entry(STREAM_NAME)
        )
        self._verified.add(STREAM_NAME)

    def _root_timestamp(self) -> VersionSet:
        self._verify_stream()
        events = read_events(
            self.archive_path, IOStats(), self.codec
        )  # peek without accounting
        root = next(events)
        assert isinstance(root, NodeEvent) and root.timestamp is not None
        return root.timestamp

    @property
    def last_version(self) -> int:
        timestamp = self._root_timestamp()
        return timestamp.max_version() if timestamp else 0

    # -- the three phases ---------------------------------------------------------

    def add_version(self, document: Optional[Element]) -> MergeStats:
        """Annotate, sort and merge the next version (Sec. 6).

        The merged stream, the manifest and the checksum sidecar
        publish together behind one WAL record — a crash at any point
        recovers to the pre-version or post-version archive, never a
        stream whose checksum (or manifest) belongs to the other side.
        """
        number = self.last_version + 1
        out_path = os.path.join(self.directory, "archive.next.jsonl")
        if document is None:
            self._stage_empty_version(number, out_path)
            self._publish_stream(out_path, number)
            return MergeStats()
        annotated = annotate_keys(document, self.spec)  # Sec. 6.1
        version_path = sort_version(  # Sec. 6.2
            annotated,
            self.directory,
            budget=self.memory_budget,
            stats=self.io_stats,
            fan_in=self.fan_in,
            prefix=f"v{number}",
            codec=self.codec,
        )
        merge_stats = merge_archive_stream(  # Sec. 6.3
            self.archive_path,
            version_path,
            out_path,
            number,
            self.io_stats,
            self.codec,
        )
        self._publish_stream(out_path, number)
        os.remove(version_path)
        return merge_stats

    def _publish_stream(self, out_path: str, version_count: int) -> None:
        """Commit a fully-written next stream: stage it with a fresh
        manifest and checksum sidecar, then publish all three behind
        one WAL record (the same protocol the other backends use)."""
        staged = self.archive_path + ".tmp"
        replace_file(out_path, staged)
        _fsync_file(staged)
        pending = self._checksums.copy()
        digest, size = hash_file(staged)
        pending.entries[STREAM_NAME] = {"sha256": digest, "bytes": size}
        pending.quarantined.discard(STREAM_NAME)
        manifest = Manifest(
            kind=self.kind,
            key_spec_hash=key_spec_fingerprint(self.spec),
            version_count=version_count,
            codec=self.codec.name,
            generation=self.generation + 1,
            extra=self._manifest_extra(),
        )
        manifest_text = manifest.to_json()
        from .backend import MANIFEST_NAME

        pending.record(MANIFEST_NAME, manifest_text.encode("utf-8"))
        write_file_durable(self.manifest_path() + ".tmp", manifest_text)
        write_file_durable(self._checksums.path + ".tmp", pending.to_json())
        entries = [self.archive_path, self.manifest_path(), self._checksums.path]
        self._wal.append(entries, meta={"version_count": version_count})
        self._wal.publish(entries)
        self._checksums = pending
        self.generation += 1
        self._verified.discard(STREAM_NAME)
        if self.cache_reads:
            chunk_cache().invalidate(os.path.abspath(self.directory))

    def _stage_empty_version(self, number: int, out_path: str) -> None:
        self._verify_stream()
        events = read_events(self.archive_path, self.io_stats, self.codec)
        with EventWriter(out_path, self.io_stats, self.codec) as writer:
            root = next(events)
            assert isinstance(root, NodeEvent) and root.timestamp is not None
            timestamp = root.timestamp.copy()
            timestamp.add(number)
            from dataclasses import replace

            writer.write(replace(root, timestamp=timestamp))
            depth = 1
            for event in events:
                if isinstance(event, (NodeEvent, FrontierEvent)):
                    if depth == 1 and event.timestamp is None:
                        event = replace(event, timestamp=timestamp.without(number))
                    if isinstance(event, NodeEvent):
                        depth += 1
                elif isinstance(event, ExitEvent):
                    depth -= 1
                writer.write(event)

    # -- queries -------------------------------------------------------------------

    def retrieve(
        self, version: int, *, probes: Optional[ProbeCount] = None
    ) -> Optional[Element]:
        """Stream the archive, keeping only the requested version.

        ``probes`` is accepted for protocol uniformity but stays zero:
        the stream walk has no timestamp trees to probe.
        """
        self._verify_stream()
        events = PeekableEvents(
            read_events(self.archive_path, self.io_stats, self.codec)
        )
        root = events.next()
        assert isinstance(root, NodeEvent) and root.timestamp is not None
        if version not in root.timestamp:
            raise ArchiveError(
                f"Version {version} not archived "
                f"(have {root.timestamp.to_text() or 'none'})"
            )
        result = self._reconstruct_children(events, version, root.timestamp)
        return result[0] if result else None

    def _reconstruct_children(
        self, events: PeekableEvents, version: int, inherited: VersionSet
    ) -> list[Element]:
        children: list[Element] = []
        while True:
            head = events.peek()
            if head is None or isinstance(head, ExitEvent):
                if head is not None:
                    events.next()
                return children
            event = events.next()
            assert isinstance(event, (NodeEvent, FrontierEvent))
            timestamp = (
                event.timestamp if event.timestamp is not None else inherited
            )
            relevant = version in timestamp
            if isinstance(event, FrontierEvent):
                if relevant:
                    element = Element(event.label.tag)
                    for name, value in event.attributes:
                        element.set_attribute(name, value)
                    for alternative in event.alternatives:
                        if (
                            alternative.timestamp is None
                            or version in alternative.timestamp
                        ):
                            for content in alternative.content:
                                element.append(content.copy())
                            break
                    children.append(element)
                continue
            if relevant:
                element = Element(event.label.tag)
                for name, value in event.attributes:
                    element.set_attribute(name, value)
                for child in self._reconstruct_children(events, version, timestamp):
                    element.append(child)
                children.append(element)
            else:
                # Irrelevant subtree: drain it without building anything.
                depth = 1
                while depth:
                    skipped = events.next()
                    if isinstance(skipped, NodeEvent):
                        depth += 1
                    elif isinstance(skipped, ExitEvent):
                        depth -= 1
        return children

    def history(self, path: str) -> ElementHistory:
        """Temporal history of a keyed element, in one stream pass.

        Each path step scans the current node's children events in
        order, draining unmatched subtrees without building anything —
        memory stays proportional to tree height, never archive size.
        """
        steps = _parse_history_path(path)
        if not steps:
            raise ArchiveError(f"Empty history path {path!r}")
        self._verify_stream()
        events = PeekableEvents(
            read_events(self.archive_path, self.io_stats, self.codec)
        )
        root = events.next()
        if not isinstance(root, NodeEvent) or root.timestamp is None:
            raise ArchiveError("Archive stream carries no root timestamp")
        inherited = root.timestamp
        found = None
        for position, (tag, key_value) in enumerate(steps):
            target = KeyLabel(tag=tag, key=key_value).sort_token()
            found = None
            while True:
                head = events.peek()
                if head is None or isinstance(head, ExitEvent):
                    break
                event = events.next()
                assert isinstance(event, (NodeEvent, FrontierEvent))
                timestamp = (
                    event.timestamp if event.timestamp is not None else inherited
                )
                if event.label.sort_token() == target:
                    found = event
                    inherited = timestamp
                    break
                if isinstance(event, NodeEvent):
                    depth = 1  # drain the unmatched subtree
                    while depth:
                        skipped = events.next()
                        if isinstance(skipped, NodeEvent):
                            depth += 1
                        elif isinstance(skipped, ExitEvent):
                            depth -= 1
            if found is None:
                raise missing_element_error(
                    KeyLabel(tag=tag, key=key_value), path
                )
            if position < len(steps) - 1 and not isinstance(found, NodeEvent):
                raise missing_element_error(
                    KeyLabel(tag=steps[position + 1][0], key=steps[position + 1][1]),
                    path,
                )
        changes = None
        if isinstance(found, FrontierEvent):
            changes = []
            for alternative in found.alternatives:
                timestamp = (
                    alternative.timestamp.copy()
                    if alternative.timestamp is not None
                    else inherited.copy()
                )
                rendered = "".join(
                    to_string(c) if isinstance(c, Element) else c.text
                    for c in alternative.content
                )
                changes.append((timestamp, rendered))
        return ElementHistory(
            path=path, existence=inherited.copy(), changes=changes
        )

    def diff(self, from_version: int, to_version: int) -> ChangeReport:
        """Element-level changes between two versions.

        Materializes the stream once (the diff walks parent and child
        timestamps together, which a single forward pass cannot); the
        report matches the in-memory backend's exactly.
        """
        return archive_diff(self.to_archive(), from_version, to_version)

    def stats(self) -> ArchiveStats:
        """Size/shape counters, in one stream pass.

        Mirrors :meth:`Archive.stats` semantics — frontier content
        counts its nodes, ``stored_timestamps`` counts only explicit
        (non-inherited) timestamps — with ``serialized_bytes`` /
        ``raw_bytes`` the stream's logical (decoded) size and
        ``disk_bytes`` its at-rest size under the codec.
        """
        self._verify_stream()
        nodes = 0
        stored_timestamps = 0
        versions = 0
        first = True
        pass_stats = IOStats()  # logical bytes of this single pass
        for event in read_events(self.archive_path, pass_stats, self.codec):
            if isinstance(event, ExitEvent):
                continue
            if first:
                assert isinstance(event, NodeEvent)
                if event.timestamp is not None:
                    versions = len(event.timestamp)
                first = False
            nodes += 1
            if event.timestamp is not None:
                stored_timestamps += 1
            if isinstance(event, FrontierEvent):
                for alternative in event.alternatives:
                    if alternative.timestamp is not None:
                        stored_timestamps += 1
                    for item in alternative.content:
                        if isinstance(item, Element):
                            nodes += sum(1 for _ in item.iter())
                        else:
                            nodes += 1
        self.io_stats.merge(pass_stats)
        return ArchiveStats(
            versions=versions,
            nodes=nodes,
            stored_timestamps=stored_timestamps,
            serialized_bytes=pass_stats.bytes_read,
            raw_bytes=pass_stats.bytes_read,
            disk_bytes=self.archive_bytes(),
            generation=self.generation,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cache_evictions=chunk_cache().evictions,
        )

    def _cache_token(self):
        """Staleness token for the materialized stream (``None``: skip).

        The stream's sidecar sha256 when recorded — every publish
        rewrites it, and :meth:`_verify_stream` checks the bytes
        against this very sidecar state before materialization — with
        the manifest generation as the coarser fallback."""
        entry = self._checksums.entries.get(STREAM_NAME)
        if entry is not None and entry.get("sha256"):
            return entry["sha256"]
        if self.generation > 0:
            return ("gen", self.generation)
        return None

    def to_archive(self, options: Optional[ArchiveOptions] = None) -> Archive:
        """Materialize the stream into an in-memory :class:`Archive`.

        Used by ``diff`` and the equivalence tests; defeats the
        bounded-memory purpose otherwise — which is exactly why
        read-caching handles keep the materialized product in the
        decoded-chunk cache instead of paying the full stream pass per
        request (non-default ``options`` always materialize fresh: the
        options shape the product).
        """
        key = None
        cache = None
        if self.cache_reads and options is None:
            token = self._cache_token()
            cache = chunk_cache()
            if token is not None and cache.enabled:
                key = (os.path.abspath(self.directory), STREAM_NAME, token)
                cached = cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    return cached
                self.cache_misses += 1
        archive = Archive(self.spec, options)
        self._verify_stream()
        events = PeekableEvents(
            read_events(self.archive_path, self.io_stats, self.codec)
        )
        root = events.next()
        assert isinstance(root, NodeEvent) and root.timestamp is not None
        archive.root = ArchiveNode(
            label=root.label, timestamp=root.timestamp.copy()
        )
        while not isinstance(events.peek(), ExitEvent):
            archive.root.children.append(events_to_archive_node(events))
        if key is not None:
            cache.put(key, archive, self.archive_bytes())
        return archive

    def archive_bytes(self) -> int:
        """Current size of the on-disk archive stream."""
        return os.path.getsize(self.archive_path)

    def recode(self, codec: CodecLike) -> RecodeReport:
        """Re-encode the event stream in place, in bounded memory.

        The stream is copied line-by-line from the old codec's reader
        into the new codec's writer (never materialized), verified by a
        second streaming pass comparing decoded lines, then published
        together with the manifest behind one WAL record.
        """
        from itertools import zip_longest

        target = get_codec(codec)
        old = self.codec
        before = self.archive_bytes()
        version_count = self.last_version  # read (and verify) old stream
        manifest = Manifest(
            kind=self.kind,
            key_spec_hash=key_spec_fingerprint(self.spec),
            version_count=version_count,
            codec=target.name,
            generation=self.generation + 1,
            extra=self._manifest_extra(),
        )
        staged = self.archive_path + ".tmp"
        manifest_staged = self.manifest_path() + ".tmp"
        checksums_staged = self._checksums.path + ".tmp"
        pending = self._checksums.copy()
        try:
            with old.open_text_read(self.archive_path) as source, \
                    target.open_text_write(staged) as sink:
                for line in source:
                    sink.write(line)
            _fsync_file(staged)
            # Identity check: the staged stream must decode line-for-line
            # to the current stream before anything publishes.
            with old.open_text_read(self.archive_path) as source, \
                    target.open_text_read(staged) as copy:
                for original, recoded in zip_longest(source, copy):
                    if original != recoded:
                        raise ArchiveError(
                            f"Recode verification failed: {target.name} "
                            f"stream does not round-trip"
                        )
            digest, size = hash_file(staged)
            pending.entries[STREAM_NAME] = {"sha256": digest, "bytes": size}
            manifest_text = manifest.to_json()
            from .backend import MANIFEST_NAME

            pending.record(MANIFEST_NAME, manifest_text.encode("utf-8"))
            write_file_durable(manifest_staged, manifest_text)
            write_file_durable(checksums_staged, pending.to_json())
        except BaseException:
            for path in (staged, manifest_staged, checksums_staged):
                if os.path.exists(path):
                    os.remove(path)
            raise
        entries = [self.archive_path, self.manifest_path(), self._checksums.path]
        self._wal.append(entries, meta={"version_count": version_count})
        self._wal.publish(entries)
        self.codec = target
        self._checksums = pending
        self.generation += 1
        self._verified.discard(STREAM_NAME)
        if self.cache_reads:
            chunk_cache().invalidate(os.path.abspath(self.directory))
        return RecodeReport(
            path=self.directory,
            kind=self.kind,
            old_codec=old.name,
            new_codec=target.name,
            files=1,
            disk_bytes_before=before,
            disk_bytes_after=self.archive_bytes(),
        )


def _fsync_file(path: str) -> None:
    """Flush a fully-written staged file to stable storage."""
    faults.before_op("fsync", path)
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    fsync_directory(os.path.dirname(os.path.abspath(path)))


def archive_to_stream(
    archive: Archive, path: str, stats: IOStats, codec: CodecLike = None
) -> None:
    """Write an in-memory archive as a sorted event stream."""
    assert archive.root.timestamp is not None
    with EventWriter(path, stats, codec) as writer:
        writer.write(
            NodeEvent(
                label=archive.root.label,
                attributes=archive.root.attributes,
                timestamp=archive.root.timestamp,
            )
        )
        for child in archive.root.children:
            archive_node_to_events(child, writer)
        writer.write(ExitEvent())


class PersistentIngestor:
    """Batched ingestion into a partitioned persistent store, with live
    retrieval and history indexes.

    Runs against the :class:`~repro.storage.backend.PartitionedBackend`
    protocol rather than a concrete archiver: any backend that stores
    its archive as independently-loadable parts sharing the global
    version numbering (today :class:`ChunkedArchiver`; tomorrow a
    sharded multi-directory store) gets a
    :class:`~repro.indexes.keyindex.KeyIndex` (Sec. 7.2 history
    lookups) and a
    :class:`~repro.indexes.timestamp_tree.TimestampTreeIndex` (Sec. 7.1
    guided retrieval) kept current per part as batches flush, so
    queries between batches hit indexes instead of re-walking part
    archives.  The index cache holds each part's in-memory archive; the
    on-disk part files remain the durable source of truth and are
    re-adopted lazily after a restart.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        spec: Optional[KeySpec] = None,
        chunk_count: int = 8,
        options: Optional[ArchiveOptions] = None,
        *,
        backend: Optional[PartitionedBackend] = None,
    ) -> None:
        if backend is None:
            if directory is None or spec is None:
                raise ValueError(
                    "PersistentIngestor needs either a backend or a "
                    "directory plus key spec"
                )
            backend = ChunkedArchiver(directory, spec, chunk_count, options)
        self.backend = backend
        #: Backward-compatible alias from when the chunked store was
        #: the only partitioned backend.
        self.chunked = backend
        self._key_indexes: dict[int, KeyIndex] = {}
        self._timestamp_indexes: dict[int, TimestampTreeIndex] = {}
        #: Part adoptions (XML parses) retrieval skipped because the
        #: part's presence timestamp excluded the version (cumulative).
        self.chunks_pruned = 0

    @property
    def last_version(self) -> int:
        return self.backend.last_version

    def ingest_batch(self, documents: Iterable[Optional[Element]]) -> MergeStats:
        """Batch-merge versions; part indexes refresh as parts land."""
        return self.backend.ingest_batch(documents, on_chunk=self._index_part)

    def _index_part(self, index: int, archive: Archive) -> None:
        key_index = self._key_indexes.get(index)
        if key_index is None:
            self._key_indexes[index] = KeyIndex(archive)
        else:
            key_index.refresh(archive)
        timestamp_index = self._timestamp_indexes.get(index)
        if timestamp_index is None:
            self._timestamp_indexes[index] = TimestampTreeIndex(archive)
        else:
            timestamp_index.refresh(archive)

    def _adopt_part(self, index: int) -> bool:
        """Lazily index a part that exists on disk but not in the cache
        (e.g. after a restart)."""
        if index in self._timestamp_indexes:
            return True
        if not self.backend.part_exists(index):
            return False
        self._index_part(index, self.backend.load_part(index))
        return True

    def retrieve(
        self, version: int, *, copy_content: bool = False
    ) -> tuple[Optional[Element], ProbeCount]:
        """Concatenate per-part reconstructions in key order, guided by
        the timestamp trees; returns the probe accounting alongside.

        Unadopted parts whose presence timestamps exclude ``version``
        are pruned before their files are ever parsed — the part-level
        analogue of the timestamp trees' subtree pruning.

        The result shares frontier content with the cached part
        archives (which later batches flush back to disk); callers that
        intend to mutate the returned document must pass
        ``copy_content=True`` or they corrupt the cache.
        """
        if not 1 <= version <= self.last_version:
            raise ChunkedArchiverError(
                f"Version {version} not archived (have 1..{self.last_version})"
            )
        probes = ProbeCount()

        def parts():
            for index in range(self.backend.part_count):
                if index not in self._timestamp_indexes:
                    presence = self.backend.part_presence(index)
                    if presence is not None and version not in presence:
                        self.chunks_pruned += 1
                        continue
                if not self._adopt_part(index):
                    continue
                part, part_probes = self._timestamp_indexes[index].retrieve(
                    version, copy_content=copy_content
                )
                probes.merge(part_probes)
                yield part

        document = restore_key_order(
            concatenate_parts(parts()), self.backend.spec
        )
        return document, probes

    def history(self, path: str) -> ElementHistory:
        """Route a history query through the owning part's key index.

        The index's binary searches locate the owning part (and reject
        the others) in ``O(l log d)``; the part's archive — already
        cached by the index — then supplies the full
        :class:`ElementHistory` including the ``changes`` content runs,
        matching :meth:`ChunkedArchiver.history`.
        """
        def attempt(index: int):
            if not self._adopt_part(index):
                return None
            return self._key_indexes[index].element_history(path)

        return route_to_owning_chunk(self.backend.part_count, attempt, path)

    def drop_caches(self) -> None:
        """Release the per-part index/archive caches.

        The caches trade the partitioned store's memory bound for query
        speed: every indexed part's archive stays in RAM.  Long-lived
        processes that have touched many parts can drop the caches and
        let :meth:`retrieve`/:meth:`history` re-adopt parts lazily from
        the durable part files.
        """
        self._key_indexes.clear()
        self._timestamp_indexes.clear()
