"""The ``xbin`` binary archive-node container: load chunks without parsing.

Every other codec stores an archive chunk as (possibly compressed) Fig. 5
XML *text*, so each read pays tokenizing, tree building, key re-parsing
and timestamp re-parsing before a single node is usable.  ``xbin``
serializes the :class:`~repro.core.nodes.ArchiveNode` tree itself:
magic-headed, length-prefixed records with interned tag/attribute/key-path
names and :class:`~repro.core.versionset.VersionSet` timestamps stored as
``(start, end)`` interval lists — exactly the in-memory encoding — so a
chunk loads by direct record decoding, no XML parse at all.

Container layout (all integers are LEB128 varints)::

    magic   b"XB\\x01\\x00"
    crc     varint  -- crc32 over (flags byte + compressed body)
    flags   1 byte  -- bit0: weave compaction, bit1: opaque-text mode
    length  varint  -- compressed body size in bytes
    body    <length> bytes of zlib-compressed records (no trailing bytes)

An *archive-mode* body (the normal case, written through the
``encode_archive`` seam) is::

    names   varint count, then count x string   -- interned name table
    root    intervals                           -- the root timestamp
    tree    varint count, then count x node record

where ``string`` is ``varint length + UTF-8 bytes`` and ``intervals`` is
``varint count`` then per interval ``varint start, varint (end - start)``.
A node record is ``tag id, flag byte (timestamp/weave/alternatives),
key components, attributes, the flagged sections, then children`` —
depth-first, in stored (already key-sorted) order.  Frontier content
(:class:`~repro.xmltree.model.Element`/``Text``) nests as typed records
with attributes kept in *element* order, so re-emission is byte-identical.

A *text-mode* body is a plain UTF-8 document blob — the fallback for
``encode_document`` callers that hold only text (no key spec to build
nodes from); ``decode_document`` handles both modes transparently.

Corruption never escapes untyped: a flipped bit fails the crc, a
truncation fails the varint/length accounting, and both raise
:class:`~repro.storage.codec.CodecError` (registered callers translate
that into the exit-2 taxonomy).
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..core.archive import (
    ROOT_TAG,
    STORAGE_ALTERNATIVES,
    STORAGE_ATTR,
    STORAGE_WEAVE,
    T_ATTR,
    T_TAG,
    Archive,
    ArchiveOptions,
)
from ..core.nodes import Alternative, ArchiveNode, Weave, WeaveSegment
from ..core.versionset import VersionSet
from ..keys.annotate import KeyLabel
from ..keys.spec import KeySpec
from ..xmltree.model import Element, Text

#: Leading bytes of every xbin container (version 1, reserved zero byte).
XBIN_MAGIC = b"XB\x01\x00"

_FLAG_COMPACTION = 0x01
_FLAG_TEXT = 0x02

_NODE_HAS_TIMESTAMP = 0x01
_NODE_HAS_WEAVE = 0x02
_NODE_HAS_ALTERNATIVES = 0x04

_ALT_HAS_TIMESTAMP = 0x01

_CONTENT_TEXT = 0
_CONTENT_ELEMENT = 1


class _Corrupt(Exception):
    """Internal decode failure; surfaces as a typed CodecError."""


def _codec_error(message: str):
    from .codec import CodecError  # local: codec.py imports this module

    return CodecError(message)


# -- primitive encoding -------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError(f"xbin varints are unsigned (got {value})")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    _write_varint(out, len(data))
    out.extend(data)


def _write_intervals(out: bytearray, timestamp: VersionSet) -> None:
    intervals = timestamp.intervals()
    _write_varint(out, len(intervals))
    for start, end in intervals:
        _write_varint(out, start)
        _write_varint(out, end - start)


class _Reader:
    """A bounds-checked cursor over the decompressed record body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def varint(self) -> int:
        result = 0
        shift = 0
        data = self.data
        pos = self.pos
        while True:
            if pos >= len(data):
                raise _Corrupt("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                self.pos = pos
                return result
            shift += 7
            if shift > 63:
                raise _Corrupt("varint overflow")

    def string(self) -> str:
        length = self.varint()
        end = self.pos + length
        if end > len(self.data):
            raise _Corrupt("truncated string")
        raw = self.data[self.pos : end]
        self.pos = end
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as error:
            raise _Corrupt(f"invalid UTF-8 in record: {error}")

    def intervals(self) -> VersionSet:
        count = self.varint()
        pairs = []
        for _ in range(count):
            start = self.varint()
            pairs.append((start, start + self.varint()))
        return VersionSet.from_intervals(pairs)

    def done(self) -> bool:
        return self.pos >= len(self.data)


# -- name interning -----------------------------------------------------------


class _Names:
    """Write-side interning of tag / attribute / key-path names."""

    __slots__ = ("ids", "ordered")

    def __init__(self) -> None:
        self.ids: dict[str, int] = {}
        self.ordered: list[str] = []

    def intern(self, name: str) -> int:
        found = self.ids.get(name)
        if found is not None:
            return found
        index = len(self.ordered)
        self.ids[name] = index
        self.ordered.append(name)
        return index

    def to_bytes(self) -> bytearray:
        out = bytearray()
        _write_varint(out, len(self.ordered))
        for name in self.ordered:
            _write_str(out, name)
        return out


def _read_names(reader: _Reader) -> list[str]:
    count = reader.varint()
    return [reader.string() for _ in range(count)]


def _name_at(names: list[str], index: int) -> str:
    if index >= len(names):
        raise _Corrupt(f"name id {index} beyond the interned table")
    return names[index]


# -- the archive-node records -------------------------------------------------


def _write_content(out: bytearray, names: _Names, item) -> None:
    if isinstance(item, Text):
        out.append(_CONTENT_TEXT)
        _write_str(out, item.text)
        return
    out.append(_CONTENT_ELEMENT)
    _write_varint(out, names.intern(item.tag))
    # Element attributes keep *element* order (the model's order, which
    # serialization preserves) — unlike archive-node attributes, which
    # the archiver stores sorted.
    _write_varint(out, len(item.attributes))
    for attr in item.attributes:
        _write_varint(out, names.intern(attr.name))
        _write_str(out, attr.value)
    _write_varint(out, len(item.children))
    for child in item.children:
        _write_content(out, names, child)


def _read_content(reader: _Reader, names: list[str]):
    kind = reader.varint()
    if kind == _CONTENT_TEXT:
        text = reader.string()
        if not text:
            raise _Corrupt("empty text record")
        return Text(text)
    if kind != _CONTENT_ELEMENT:
        raise _Corrupt(f"unknown content record type {kind}")
    element = Element(_name_at(names, reader.varint()))
    for _ in range(reader.varint()):
        element.set_attribute(_name_at(names, reader.varint()), reader.string())
    for _ in range(reader.varint()):
        element.append(_read_content(reader, names))
    return element


def _write_node(out: bytearray, names: _Names, node: ArchiveNode) -> None:
    _write_varint(out, names.intern(node.label.tag))
    flags = 0
    if node.timestamp is not None:
        flags |= _NODE_HAS_TIMESTAMP
    if node.weave is not None:
        flags |= _NODE_HAS_WEAVE
    if node.alternatives is not None:
        flags |= _NODE_HAS_ALTERNATIVES
    out.append(flags)
    _write_varint(out, len(node.label.key))
    for path, value in node.label.key:
        _write_varint(out, names.intern(path))
        _write_str(out, value)
    _write_varint(out, len(node.attributes))
    for name, value in node.attributes:
        _write_varint(out, names.intern(name))
        _write_str(out, value)
    if node.timestamp is not None:
        _write_intervals(out, node.timestamp)
    if node.weave is not None:
        _write_varint(out, len(node.weave.segments))
        for segment in node.weave.segments:
            _write_intervals(out, segment.timestamp)
            _write_varint(out, len(segment.lines))
            for line in segment.lines:
                _write_str(out, line)
    if node.alternatives is not None:
        _write_varint(out, len(node.alternatives))
        for alternative in node.alternatives:
            out.append(
                _ALT_HAS_TIMESTAMP if alternative.timestamp is not None else 0
            )
            if alternative.timestamp is not None:
                _write_intervals(out, alternative.timestamp)
            _write_varint(out, len(alternative.content))
            for item in alternative.content:
                _write_content(out, names, item)
    _write_varint(out, len(node.children))
    for child in node.children:
        _write_node(out, names, child)


def _read_node(reader: _Reader, names: list[str]) -> ArchiveNode:
    tag = _name_at(names, reader.varint())
    flags = reader.varint()
    key = tuple(
        (_name_at(names, reader.varint()), reader.string())
        for _ in range(reader.varint())
    )
    attributes = tuple(
        (_name_at(names, reader.varint()), reader.string())
        for _ in range(reader.varint())
    )
    timestamp: Optional[VersionSet] = None
    if flags & _NODE_HAS_TIMESTAMP:
        timestamp = reader.intervals()
    weave: Optional[Weave] = None
    if flags & _NODE_HAS_WEAVE:
        segments = []
        for _ in range(reader.varint()):
            segment_timestamp = reader.intervals()
            lines = [reader.string() for _ in range(reader.varint())]
            segments.append(
                WeaveSegment(timestamp=segment_timestamp, lines=lines)
            )
        weave = Weave(segments=segments)
    alternatives: Optional[list[Alternative]] = None
    if flags & _NODE_HAS_ALTERNATIVES:
        alternatives = []
        for _ in range(reader.varint()):
            alt_flags = reader.varint()
            alt_timestamp = (
                reader.intervals() if alt_flags & _ALT_HAS_TIMESTAMP else None
            )
            content = [
                _read_content(reader, names) for _ in range(reader.varint())
            ]
            alternatives.append(
                Alternative(timestamp=alt_timestamp, content=content)
            )
    node = ArchiveNode(
        label=KeyLabel(tag=tag, key=key),
        timestamp=timestamp,
        attributes=attributes,
        alternatives=alternatives,
        weave=weave,
    )
    for _ in range(reader.varint()):
        node.children.append(_read_node(reader, names))
    return node


# -- the container ------------------------------------------------------------


def _pack(body: bytes, flags: int) -> bytes:
    compressed = zlib.compress(body, 6)
    out = bytearray(XBIN_MAGIC)
    crc = zlib.crc32(bytes([flags]) + compressed)
    _write_varint(out, crc)
    out.append(flags)
    _write_varint(out, len(compressed))
    out.extend(compressed)
    return bytes(out)


def _unpack(data: bytes) -> tuple[int, bytes]:
    """Validate the container; return ``(flags, decompressed body)``."""
    if not data.startswith(XBIN_MAGIC):
        raise _codec_error("Not an xbin container (bad magic)")
    reader = _Reader(data)
    reader.pos = len(XBIN_MAGIC)
    try:
        crc = reader.varint()
        if reader.done():
            raise _Corrupt("truncated header")
        flags = reader.data[reader.pos]
        reader.pos += 1
        length = reader.varint()
        end = reader.pos + length
        if end > len(data):
            raise _Corrupt(
                f"body declares {length} bytes but only "
                f"{len(data) - reader.pos} are present"
            )
        if end != len(data):
            raise _Corrupt(f"{len(data) - end} trailing byte(s) after the body")
        compressed = data[reader.pos : end]
        if zlib.crc32(bytes([flags]) + compressed) != crc:
            raise _Corrupt("crc mismatch (flipped bits)")
        try:
            body = zlib.decompress(compressed)
        except zlib.error as error:
            raise _Corrupt(f"body does not inflate: {error}")
    except _Corrupt as error:
        raise _codec_error(f"Corrupt xbin container: {error}")
    return flags, body


def encode_text_blob(text: str) -> bytes:
    """Encode an opaque document string (text mode — no node records)."""
    return _pack(text.encode("utf-8"), _FLAG_TEXT)


def encode_archive(archive: Archive) -> bytes:
    """Serialize an in-memory archive straight from its node tree."""
    names = _Names()
    records = bytearray()
    root_timestamp = archive.root.timestamp
    _write_intervals(
        records, root_timestamp if root_timestamp is not None else VersionSet()
    )
    _write_varint(records, len(archive.root.children))
    for child in archive.root.children:
        _write_node(records, names, child)
    body = names.to_bytes()
    body.extend(records)
    flags = _FLAG_COMPACTION if archive.options.compaction else 0
    return _pack(bytes(body), flags)


def _decode_tree(body: bytes) -> tuple[VersionSet, list[ArchiveNode]]:
    reader = _Reader(body)
    try:
        names = _read_names(reader)
        root_timestamp = reader.intervals()
        children = [_read_node(reader, names) for _ in range(reader.varint())]
        if not reader.done():
            raise _Corrupt(
                f"{len(body) - reader.pos} unread byte(s) after the node tree"
            )
    except _Corrupt as error:
        raise _codec_error(f"Corrupt xbin container: {error}")
    except (ValueError, OverflowError, RecursionError) as error:
        # Model invariants (non-empty text, valid version ranges, sane
        # nesting) reject a crafted or damaged body as a typed error.
        raise _codec_error(f"Corrupt xbin container: {error}")
    return root_timestamp, children


def decode_archive(
    data: bytes, spec: KeySpec, options: Optional[ArchiveOptions] = None
) -> Archive:
    """Rebuild an :class:`Archive` by direct record decoding (no parse).

    The container's own compaction flag decides the frontier storage
    form, exactly like the ``storage=`` marker does for the XML path;
    ``options`` supplies the remaining switches.  Children re-sort under
    the effective options' order so a fingerprinting reader sees the
    same tree :meth:`Archive.from_xml_string` would build.
    """
    flags, body = _unpack(data)
    if flags & _FLAG_TEXT:
        return Archive.from_xml_string(
            body.decode("utf-8"), spec, options
        )
    archive = Archive(spec, options)
    compaction = bool(flags & _FLAG_COMPACTION)
    if compaction != archive.options.compaction:
        archive.options = ArchiveOptions(
            fingerprinter=archive.options.fingerprinter,
            compaction=compaction,
        )
    root_timestamp, children = _decode_tree(body)
    archive.root.timestamp = root_timestamp
    archive.root.children = children
    token = archive.options.merge_options().sort_token()
    _sort_children(archive.root, token)
    return archive


def _sort_children(node: ArchiveNode, token) -> None:
    node.children.sort(key=lambda child: token(child.label))
    for child in node.children:
        _sort_children(child, token)


def decode_document_text(data: bytes) -> str:
    """The Fig. 5 XML text of a container, whatever its mode.

    Archive-mode bodies re-emit through the same serialization rules as
    :meth:`Archive.to_xml_string`, so a round-trip of backend-written
    payloads is byte-identical — which is what lets ``fsck --deep``,
    recode verification and the stats paths treat xbin like any other
    document codec.
    """
    from ..xmltree.serializer import to_pretty_string

    flags, body = _unpack(data)
    if flags & _FLAG_TEXT:
        try:
            return body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise _codec_error(f"Corrupt xbin container: {error}")
    root_timestamp, children = _decode_tree(body)
    wrapper = Element(T_TAG)
    wrapper.set_attribute(T_ATTR, root_timestamp.to_text())
    wrapper.set_attribute(
        STORAGE_ATTR,
        STORAGE_WEAVE if flags & _FLAG_COMPACTION else STORAGE_ALTERNATIVES,
    )
    root_element = wrapper.append(Element(ROOT_TAG))
    try:
        for child in children:
            _emit_node(child, root_element)
    except ValueError as error:
        raise _codec_error(f"Corrupt xbin container: {error}")
    return to_pretty_string(wrapper)


def _emit_node(node: ArchiveNode, parent: Element) -> None:
    """Mirror of :meth:`Archive._emit` — kept in lockstep so xbin text
    output is byte-identical to what the XML-writing codecs store."""
    element = Element(node.label.tag)
    for name, value in node.attributes:
        element.set_attribute(name, value)
    if node.timestamp is not None:
        wrapper = Element(T_TAG)
        wrapper.set_attribute(T_ATTR, node.timestamp.to_text())
        wrapper.append(element)
        parent.append(wrapper)
    else:
        parent.append(element)
    if node.weave is not None:
        for segment in node.weave.segments:
            t_node = Element(T_TAG)
            t_node.set_attribute(T_ATTR, segment.timestamp.to_text())
            t_node.append(Text("\n".join(segment.lines)))
            element.append(t_node)
        return
    if node.alternatives is not None:
        if len(node.alternatives) == 1 and node.alternatives[0].timestamp is None:
            for content in node.alternatives[0].content:
                element.append(content.copy())
        else:
            for alternative in node.alternatives:
                if alternative.timestamp is None:
                    raise ValueError(
                        "multi-alternative frontier with an untimestamped "
                        "alternative"
                    )
                t_node = Element(T_TAG)
                t_node.set_attribute(T_ATTR, alternative.timestamp.to_text())
                for content in alternative.content:
                    t_node.append(content.copy())
                element.append(t_node)
        return
    for child in node.children:
        _emit_node(child, element)
