"""The chunked archiver — the paper's own memory workaround (Sec. 5).

Before building the full external-memory machinery of Sec. 6, the
paper's experiments coped with 256 MB of RAM by *hashing the data into
chunks based on the values of keys*: "An incoming version is
partitioned in the same manner, and we apply our archiver to the
corresponding chunks of the archive and the incoming version.  Since we
never merge elements with different key values, we can obtain the
archive of the whole data by merging ... chunk by chunk, and
concatenating the results."

:class:`ChunkedArchiver` reproduces that scheme: top-level records are
partitioned by a hash of their key value into ``chunk_count`` buckets,
each bucket is archived independently (one on-disk XML archive per
chunk), and queries fan out to the owning chunk.  Peak memory is
bounded by the largest chunk plus one version's worth of records.
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, Iterable, Optional

from ..core.archive import Archive, ArchiveOptions, ArchiveStats, ElementHistory
from ..core.merge import MergeStats
from ..core.tempquery import Change, ChangeReport, _step, archive_diff
from ..core.tstree import ProbeCount
from ..core.versionset import VersionSet
from ..keys.annotate import annotate_keys
from ..keys.spec import KeySpec
from ..xmltree.model import Element
from .backend import (
    MANIFEST_NAME,
    OnVersion,
    RecodeReport,
    StorageBackend,
    read_manifest,
)
from .cache import chunk_cache
from .codec import CodecError, CodecLike, get_codec, sniff_codec
from .integrity import (
    CHECKSUMS_NAME,
    ChecksumSidecar,
    IntegrityError,
    ManifestInconsistent,
    validate_policy,
)
from .parallel import ExecutionPool, _ingest_chunk_task, _recode_chunk_task
from .wal import Commit, WriteAheadLog, atomic_write_text

#: Per-chunk degradation policies for reads over damaged archives.
ON_CORRUPT_POLICIES = ("raise", "skip")


class ChunkedArchiverError(ValueError):
    """Raised on misconfiguration or unusable documents."""


def concatenate_parts(parts) -> Optional[Element]:
    """Concatenate per-chunk reconstructions under one root shell.

    ``parts`` yields each chunk's reconstruction (``None`` for chunks
    without content at the version); the first non-``None`` part
    donates the root tag and attributes — the paper's "concatenating
    the results".  Shared by every chunk-partitioned reader.
    """
    result: Optional[Element] = None
    for part in parts:
        if part is None:
            continue
        if result is None:
            result = Element(part.tag)
            for attr in part.attributes:
                result.set_attribute(attr.name, attr.value)
        for child in part.children:
            result.append(child)
    return result


def restore_key_order(document: Optional[Element], spec: KeySpec) -> Optional[Element]:
    """Re-sort a concatenated reconstruction's records into key order.

    Hash partitioning scatters a version's records across chunks, so
    plain concatenation returns them grouped by chunk.  Every in-chunk
    reconstruction already emits keyed siblings in key order, and depth
    beyond the record level stays within one chunk — re-sorting the
    top-level records is therefore enough to make chunked retrievals
    byte-identical to the other backends.  Documents whose top level is
    not fully keyed are returned untouched.

    Cost: the key annotation stops descending at frontier paths, so
    the extra walk is proportional to the keyed nodes above the
    frontier (the records being sorted), not to the full document.
    """
    if document is None or not document.children:
        return document
    try:
        annotated = annotate_keys(document, spec)
    except ValueError:
        return document  # unannotatable reconstruction: keep chunk order
    tokens = []
    for child in document.children:
        if not isinstance(child, Element):
            return document
        label = annotated.label(child)
        if label is None:
            return document
        tokens.append(label.sort_token())
    order = sorted(range(len(tokens)), key=lambda i: tokens[i])
    document.children[:] = [document.children[i] for i in order]
    return document


def _chunk_presence_of(archive: Archive) -> VersionSet:
    """Union of the top-level record roots' effective timestamps — the
    versions at which the chunk contributes anything to a retrieval."""
    root_timestamp = archive.root.timestamp
    if root_timestamp is None:
        return VersionSet()
    presence = VersionSet()
    for child in archive.root.children:
        presence = presence.union(child.effective_timestamp(root_timestamp))
    return presence


def route_to_owning_chunk(chunk_count: int, attempt, path: str):
    """Probe chunks until one answers a keyed-path query.

    ``attempt(index)`` returns ``None`` for chunks with no stored data
    and raises when the element is not in that chunk (every chunk
    shares the global version numbering, so the first answer is *the*
    answer).  Re-raises the last miss when no chunk answers.
    """
    last_error: Optional[Exception] = None
    for index in range(chunk_count):
        try:
            result = attempt(index)
        except Exception as error:  # not in this chunk
            last_error = error
            continue
        if result is not None:
            return result
    if last_error is not None:
        raise last_error
    raise ChunkedArchiverError(f"No element at {path!r} in any chunk")


class ChunkedArchiver(StorageBackend):
    """Archive per key-hash chunk; concatenate for the full picture.

    ``record_depth`` selects the partitioning level: 1 partitions the
    children of the document root (the paper's record level for OMIM
    and Swiss-Prot, whose roots hold a flat list of ``Record``
    elements).

    Every mutation publishes through the write-ahead log: chunk files,
    presence sidecars, the version counter and the manifest are staged
    as ``*.tmp``, fsynced behind one WAL record, then renamed into
    place — a crash mid-batch recovers to the pre-batch archive (or, if
    publication had begun, completes it) instead of a torn mix.
    """

    kind = "chunked"
    supports_probes = True

    def __init__(
        self,
        directory: "str | os.PathLike",
        spec: KeySpec,
        chunk_count: int = 8,
        options: Optional[ArchiveOptions] = None,
        codec: CodecLike = None,
        verify: str = "always",
        on_corrupt: str = "raise",
        workers: int = 1,
        recover: bool = True,
        cache_reads: bool = False,
    ) -> None:
        if chunk_count < 1:
            raise ChunkedArchiverError("Need at least one chunk")
        if on_corrupt not in ON_CORRUPT_POLICIES:
            raise ChunkedArchiverError(
                f"Unknown on_corrupt policy {on_corrupt!r} "
                f"(choose from {', '.join(ON_CORRUPT_POLICIES)})"
            )
        directory = os.fspath(directory)
        self.directory = directory
        self.storage_root = directory
        self.spec = spec
        self.chunk_count = chunk_count
        self.options = options or ArchiveOptions()
        self.verify = validate_policy(verify)
        #: What :meth:`retrieve` does with a chunk that fails integrity
        #: or decode checks: ``"raise"`` propagates, ``"skip"`` serves
        #: the healthy chunks and counts the skip.
        self.on_corrupt = on_corrupt
        #: Chunk loads retrieval skipped because the chunk's presence
        #: timestamp excluded the requested version (cumulative).
        self.chunks_pruned = 0
        #: Chunks retrieval skipped as corrupt under ``on_corrupt="skip"``.
        self.chunks_skipped_corrupt = 0
        #: Read-only handles (``open_archive(..., recover=False)``) share
        #: decoded chunks through the process-wide
        #: :func:`~repro.storage.cache.chunk_cache`; write-capable
        #: handles never do — a writer mutates its decoded archive in
        #: place, which must not leak into other readers' views.
        self.cache_reads = cache_reads
        #: Decoded-chunk cache traffic through *this handle* (cumulative;
        #: query execution reads these as before/after deltas).
        self.cache_hits = 0
        self.cache_misses = 0
        #: Chunk-loop parallelism: batch ingest, recode and chunk query
        #: fan-out run their per-chunk work through this pool.  The
        #: default of one worker is the deterministic serial path.
        self.pool = ExecutionPool(workers)
        self.workers = self.pool.workers
        os.makedirs(directory, exist_ok=True)
        self._wal = WriteAheadLog(os.path.join(directory, "wal.json"))
        if recover:
            self._wal.recover(
                stray_tmps=[
                    os.path.join(directory, name)
                    for name in os.listdir(directory)
                    if name.endswith(".tmp")
                ]
            )
        # An explicit codec wins; otherwise an existing chunk file's
        # magic bytes decide (fresh directories start raw).
        self.codec = (
            get_codec(codec) if codec is not None else self._sniff_codec()
        )
        # Payload checksums: recorded per file in the sidecar, staged
        # through the same WAL commit as the payloads themselves.
        self._checksums = ChecksumSidecar.load(
            os.path.join(directory, CHECKSUMS_NAME)
        )
        self._verified: set[str] = set()
        self._version_count = self._load_version_count()
        try:
            manifest = read_manifest(directory)
        except ManifestInconsistent:
            manifest = None  # fsck's problem, not open's
        self.generation = manifest.generation if manifest is not None else 0

    def _sniff_codec(self):
        for index in range(self.chunk_count):
            path = self._chunk_path(index)
            if os.path.exists(path):
                return sniff_codec(path)
        return get_codec(None)

    # -- chunk file plumbing ----------------------------------------------------

    def _chunk_path(self, index: int) -> str:
        return os.path.join(self.directory, f"chunk-{index:04d}.xml")

    def _presence_path(self, index: int) -> str:
        return os.path.join(self.directory, f"chunk-{index:04d}.presence")

    def _meta_path(self) -> str:
        return os.path.join(self.directory, "versions.txt")

    def _verify_payload(self, path: str, data: bytes) -> None:
        """Check one read against the sidecar under the verify policy."""
        self._checksums.verify(
            os.path.basename(path), data, self.verify, self._verified
        )

    def _check_absent(self, path: str) -> None:
        """A file is missing: fine for legacy/lazy files, a typed error
        when the checksum sidecar says it should exist (or fsck moved
        it to quarantine)."""
        if self.verify == "never":
            return
        name = os.path.basename(path)
        if name in self._checksums.quarantined:
            raise IntegrityError(
                f"Payload {name!r} was quarantined by fsck --repair; "
                f"restore it from quarantine/ or re-ingest"
            )
        if self._checksums.covers(name):
            raise ManifestInconsistent(
                f"Payload {name!r} is recorded in the checksum sidecar "
                f"but missing on disk"
            )

    def _load_version_count(self) -> int:
        try:
            with open(self._meta_path(), "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            self._check_absent(self._meta_path())
            return 0
        self._verify_payload(self._meta_path(), data)
        return int(data.decode("utf-8").strip() or "0")

    def read_part_payload(self, index: int) -> Optional[bytes]:
        """Verified at-rest bytes of a stored chunk (``None`` when absent).

        The raw bytes verify against the checksum sidecar *before*
        anything decodes them, so corruption surfaces as a typed
        :class:`~repro.storage.integrity.IntegrityError`, never a
        confusing decode failure.  This is the handoff point to worker
        processes: workers receive these already-trusted bytes plus the
        codec *name*, never a live backend handle.
        """
        path = self._chunk_path(index)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            self._check_absent(path)
            return None
        self._verify_payload(path, data)
        return data

    def _read_chunk_text(self, index: int) -> Optional[str]:
        """Decoded XML text of a stored chunk (``None`` when absent)."""
        data = self.read_part_payload(index)
        if data is None:
            return None
        return self.codec.decode_document(data)

    def _cache_token(self, index: int):
        """Staleness token for a chunk's cache key (``None``: don't cache).

        The sidecar's recorded sha256 is the precise token — a commit
        that republishes the chunk rewrites its checksum, and
        :meth:`read_part_payload` verifies the bytes against this very
        sidecar state before any decode, so a hit can never shadow bytes
        this handle would not itself have decoded.  Sidecar-less layouts
        fall back to the manifest generation (coarser: any commit
        invalidates the whole archive's entries); with neither, the
        chunk is simply not cached.
        """
        entry = self._checksums.entries.get(
            os.path.basename(self._chunk_path(index))
        )
        if entry is not None and entry.get("sha256"):
            return entry["sha256"]
        if self.generation > 0:
            return ("gen", self.generation)
        return None

    def _invalidate_cached_chunks(self) -> None:
        """Drop this archive's cache entries after a publish.

        Stale-token entries would only age out of the LRU; a
        read-caching handle that writes drops them eagerly so the
        budget isn't spent on unreachable generations."""
        if self.cache_reads:
            chunk_cache().invalidate(os.path.abspath(self.directory))

    def _load_chunk(self, index: int, for_write: bool = False) -> Archive:
        data = self.read_part_payload(index)
        if data is None:
            archive = Archive(self.spec, self.options)
            # Bring the fresh chunk up to the current version count so
            # chunk timestamps stay globally aligned.
            for _ in range(self._version_count):
                archive.add_version(None)
            return archive
        key = None
        cache = None
        if self.cache_reads and not for_write:
            token = self._cache_token(index)
            cache = chunk_cache()
            if token is not None and cache.enabled:
                key = (os.path.abspath(self.directory), index, token)
                cached = cache.get(key)
                if cached is not None:
                    self.cache_hits += 1
                    return cached
                self.cache_misses += 1
        archive = self.codec.decode_archive(data, self.spec, self.options)
        if key is not None:
            cache.put(key, archive, len(data))
        return archive

    def _stage(
        self,
        commit: Commit,
        pending: ChecksumSidecar,
        path: str,
        payload: "str | bytes",
    ) -> None:
        """Stage one file and record its checksum in the pending sidecar."""
        commit.stage(path, payload)
        data = payload.encode("utf-8") if isinstance(payload, str) else payload
        pending.record(os.path.basename(path), data)

    def _stage_chunk(
        self,
        commit: Commit,
        pending: ChecksumSidecar,
        index: int,
        archive: Archive,
    ) -> None:
        # ``.presence`` sidecars stay plain: retrieval prunes on them
        # before paying any decode cost.
        self._stage(
            commit,
            pending,
            self._presence_path(index),
            _chunk_presence_of(archive).to_text(),
        )
        self._stage(
            commit,
            pending,
            self._chunk_path(index),
            self.codec.encode_archive(archive),
        )

    def _stage_meta(
        self, commit: Commit, pending: ChecksumSidecar, version_count: int
    ) -> None:
        self._stage(commit, pending, self._meta_path(), str(version_count))
        self._stage(
            commit,
            pending,
            self.manifest_path(),
            self._manifest_at(version_count).to_json(),
        )
        # The sidecar itself stages last, inside the same commit, so
        # checksums and payloads publish (or roll back) together.
        commit.stage(self._checksums.path, pending.to_json())

    def _manifest_at(self, version_count: int):
        manifest = self.manifest()
        manifest.version_count = version_count
        # Every staged manifest belongs to the commit that will publish
        # it, so it carries the *next* generation; the in-memory counter
        # only advances once that commit actually lands.
        manifest.generation = self.generation + 1
        return manifest

    def _manifest_extra(self) -> dict:
        return {"chunk_count": self.chunk_count}

    def chunk_presence(self, index: int) -> Optional[VersionSet]:
        """Versions at which the chunk actually stores records.

        Read from the tiny ``.presence`` sidecar written next to the
        chunk file, so retrieval can prune whole chunks whose timestamps
        exclude the target version *before* parsing their XML.  Every
        chunk shares the global version numbering via locally-empty
        versions, so the chunk archive's own root timestamp never
        excludes anything — the presence set is the union of the
        top-level record roots' effective timestamps instead.  ``None``
        when unknown (sidecar missing: chunk written by an older tool).
        """
        path = self._presence_path(index)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            # A missing presence sidecar is always safe to degrade on —
            # ``None`` makes readers parse the chunk instead of pruning
            # — so it is an fsck finding, not a read error.  Corrupt
            # *contents* still raise: they could prune wrongly.
            return None
        self._verify_payload(path, data)
        return VersionSet.parse(data.decode("utf-8"))

    def _on_manifest_written(self, text: str) -> None:
        # A standalone manifest write (archive creation) publishes the
        # sidecar right behind it so the manifest is covered from birth.
        self._checksums.record(MANIFEST_NAME, text.encode("utf-8"))
        atomic_write_text(self._checksums.path, self._checksums.to_json())
        self._checksums.present = True

    # -- partitioning --------------------------------------------------------------

    def chunk_index_for_label(self, label) -> int:
        """The chunk a top-level record with this key label hashes to.

        The routing function of the partition scheme, exposed so keyed
        point queries (the facade's partition-level key lookups) can
        open only the owning chunk instead of fanning out to all of
        them.
        """
        digest = hashlib.sha256(str(label).encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.chunk_count

    def _chunk_of(self, record: Element, annotated) -> int:
        label = annotated.label(record)
        if label is None:
            raise ChunkedArchiverError(
                f"Top-level record <{record.tag}> is unkeyed; chunking "
                f"requires keyed records"
            )
        return self.chunk_index_for_label(label)

    def _partition(self, document: Element) -> dict[int, Element]:
        annotated = annotate_keys(document, self.spec)
        parts: dict[int, Element] = {}
        for record in document.element_children():
            index = self._chunk_of(record, annotated)
            shell = parts.get(index)
            if shell is None:
                shell = Element(document.tag)
                for attr in document.attributes:
                    shell.set_attribute(attr.name, attr.value)
                parts[index] = shell
            shell.append(record.copy())
        return parts

    # -- public API -----------------------------------------------------------------

    @property
    def last_version(self) -> int:
        return self._version_count

    @property
    def part_count(self) -> int:
        """Independently-loadable parts (the ``PartitionedBackend``
        contract the index-maintaining ingestor runs against)."""
        return self.chunk_count

    def part_exists(self, index: int) -> bool:
        return os.path.exists(self._chunk_path(index))

    def load_part(self, index: int) -> Archive:
        return self._load_chunk(index)

    def part_presence(self, index: int) -> Optional[VersionSet]:
        return self.chunk_presence(index)

    def add_version(self, document: Optional[Element]) -> MergeStats:
        """Partition the version and merge chunk by chunk; all chunk
        files publish atomically behind one WAL record."""
        total = MergeStats()
        parts = self._partition(document) if document is not None else {}
        pending = self._checksums.copy()
        commit = self._wal.begin()
        try:
            for index in range(self.chunk_count):
                # Chunks with no records this version still advance their
                # version counter (as an empty version) so timestamps align.
                chunk_exists = os.path.exists(self._chunk_path(index))
                part = parts.get(index)
                if part is None and not chunk_exists:
                    continue  # nothing stored, nothing new: stay lazy
                archive = self._load_chunk(index, for_write=True)
                total.accumulate(archive.add_version(part))
                self._stage_chunk(commit, pending, index, archive)
            self._stage_meta(commit, pending, self._version_count + 1)
        except BaseException:
            commit.abort()  # staging failed: nothing was committed
            raise
        commit.commit(meta={"version_count": self._version_count + 1})
        # Only a published commit moves the in-memory sidecar.
        self._checksums = pending
        self.generation += 1
        self._invalidate_cached_chunks()
        total.versions = 1
        self._version_count += 1
        return total

    def ingest_batch(
        self,
        documents: Iterable[Optional[Element]],
        on_chunk: Optional[Callable[[int, Archive], None]] = None,
        on_version: OnVersion = None,
    ) -> MergeStats:
        """Merge a whole sequence of versions chunk-major.

        Where a loop over :meth:`add_version` loads, re-parses and
        re-serializes every chunk *per version*, the batch path
        partitions all versions up front, then touches each chunk
        exactly once: load, run a fingerprint-memoized
        :class:`~repro.core.ingest.IngestSession` over the chunk's slice
        of every version, store.  ``on_chunk(index, archive)`` fires as
        each chunk's versions land (before the in-memory archive is
        dropped) — the hook the index-maintaining persistent layer uses.

        The chunk-major order trades memory for I/O: the whole batch's
        partitions stay in memory until their chunks are processed, so
        peak memory is one chunk plus the *batch's* records rather than
        the single version the per-version loop holds.  Callers on the
        paper's 256 MB budget bound it by ingesting in slices —
        consecutive ``ingest_batch`` calls produce chunk files identical
        to one big batch (and to a per-version loop).

        ``on_version`` is accepted for protocol uniformity but never
        fires: the chunk-major order merges each version's records
        chunk by chunk, so no per-version stats exist to report.

        With ``workers > 1`` the per-chunk merges run in a process
        pool (:mod:`repro.storage.parallel`): each worker receives the
        chunk's verified at-rest bytes, the codec name and its slice of
        every version, and returns the encoded payload.  All results
        gather *before* the WAL commit begins, so a worker failure
        stages nothing, and every payload still publishes through the
        single commit point — crash semantics and output bytes are
        identical to the serial path, which runs the very same task
        function inline.
        """
        partitions = [
            self._partition(document) if document is not None else {}
            for document in documents
        ]
        tasks = []
        for index in range(self.chunk_count):
            chunk_exists = os.path.exists(self._chunk_path(index))
            if not chunk_exists and not any(
                index in parts for parts in partitions
            ):
                continue  # never stored, never mentioned: stay lazy
            tasks.append(
                (
                    index,
                    self.read_part_payload(index),
                    self.codec.name,
                    self.spec,
                    self.options,
                    self._version_count,
                    [parts.get(index) for parts in partitions],
                )
            )
        merged = self.pool.map(_ingest_chunk_task, tasks)
        total = MergeStats()
        pending = self._checksums.copy()
        commit = self._wal.begin()
        # ``on_chunk`` fires only after the commit publishes, so index
        # caches never adopt state a failed batch rolls back.
        landed: list[tuple[int, bytes]] = []
        try:
            for index, encoded, presence_text, stats in merged:
                self._stage(
                    commit, pending, self._presence_path(index), presence_text
                )
                self._stage(commit, pending, self._chunk_path(index), encoded)
                if on_chunk is not None:
                    landed.append((index, encoded))
                total.accumulate(stats)
            self._stage_meta(commit, pending, self._version_count + len(partitions))
        except BaseException:
            commit.abort()  # staging failed: nothing was committed
            raise
        commit.commit(
            meta={"version_count": self._version_count + len(partitions)}
        )
        self._checksums = pending
        self.generation += 1
        self._invalidate_cached_chunks()
        total.versions = len(partitions)
        self._version_count += len(partitions)
        for index, encoded in landed:
            # The hook wants the merged chunk archive; workers hand
            # back its published bytes, so rebuild from those — the
            # same decode ``load_part`` would do on the next read.
            assert on_chunk is not None
            on_chunk(
                index,
                self.codec.decode_archive(encoded, self.spec, self.options),
            )
        return total

    def retrieve(
        self, version: int, *, probes: Optional[ProbeCount] = None
    ) -> Optional[Element]:
        """Concatenate the per-chunk reconstructions, in key order.

        Chunks whose presence timestamps exclude ``version`` are pruned
        before their XML is parsed (counted in ``chunks_pruned``); the
        chunks that do load reconstruct tree-guided via
        :meth:`Archive.retrieve`, accumulating into ``probes`` when
        given.  The concatenation is re-sorted into key order so the
        result is byte-identical to the other backends'.
        """
        if not 1 <= version <= self._version_count:
            raise ChunkedArchiverError(
                f"Version {version} not archived (have 1..{self._version_count})"
            )

        def parts():
            for index in range(self.chunk_count):
                try:
                    if not os.path.exists(self._chunk_path(index)):
                        # Raises when the sidecar says the chunk should
                        # exist (deleted or quarantined); silent when lazy.
                        self._check_absent(self._chunk_path(index))
                        continue
                    presence = self.chunk_presence(index)
                    if presence is not None and version not in presence:
                        self.chunks_pruned += 1
                        continue
                    part = self._load_chunk(index).retrieve(version, probes=probes)
                except (IntegrityError, CodecError):
                    if self.on_corrupt == "skip":
                        # Degrade gracefully: serve the healthy chunks.
                        self.chunks_skipped_corrupt += 1
                        continue
                    raise
                yield part

        return restore_key_order(concatenate_parts(parts()), self.spec)

    def scan_probe_count(self, version: int) -> int:
        """Summed full-scan baseline across the stored chunks."""
        total = 0
        for index in range(self.chunk_count):
            if os.path.exists(self._chunk_path(index)):
                total += self._load_chunk(index).scan_probe_count(version)
        return total

    def history(self, path: str) -> ElementHistory:
        """Route a history query to the owning chunk.

        The first step of the path identifies the root; the second the
        record, whose key value decides the chunk.
        """

        def attempt(index: int):
            if not os.path.exists(self._chunk_path(index)):
                self._check_absent(self._chunk_path(index))
                return None
            return self._load_chunk(index).history(path)

        return route_to_owning_chunk(self.chunk_count, attempt, path)

    def diff(self, from_version: int, to_version: int) -> ChangeReport:
        """Element-level changes, merged across chunks.

        Every chunk shares the global version numbering, so each chunk
        archive answers for its own records; the union of the per-chunk
        reports is the whole answer (grouped by chunk, since records
        are hash-scattered).

        One correction is needed: a chunk whose records all die (or are
        all new) between the two versions reports its *shell* — the
        shared document root — as deleted/added, because chunk-locally
        it is.  Globally the shell lives as long as any chunk has
        records, so shell-level changes are expanded into the per-record
        changes beneath them, unless the shell really did (dis)appear
        globally, in which case it is reported once like the in-memory
        walk does.
        """
        for version in (from_version, to_version):
            if not 1 <= version <= self._version_count:
                raise ChunkedArchiverError(
                    f"Version {version} not archived "
                    f"(have 1..{self._version_count})"
                )
        report = ChangeReport(from_version=from_version, to_version=to_version)
        shell_changes: list[tuple[Archive, Change]] = []
        presence = VersionSet()
        for index in range(self.chunk_count):
            if not os.path.exists(self._chunk_path(index)):
                continue
            archive = self._load_chunk(index)
            presence = presence.union(_chunk_presence_of(archive))
            shell_paths = {
                "/" + _step(shell) for shell in archive.root.children
            }
            part = archive_diff(archive, from_version, to_version)
            for change in part.changes:
                if change.path in shell_paths:
                    shell_changes.append((archive, change))
                else:
                    report.changes.append(change)
        alive_from = from_version in presence
        alive_to = to_version in presence
        if alive_from != alive_to:
            # The document root itself (dis)appeared: one change, like
            # the in-memory walk reports a whole added/deleted subtree.
            kind = "added" if alive_to else "deleted"
            seen: set[str] = set()
            for _, change in shell_changes:
                if change.path not in seen:
                    seen.add(change.path)
                    report.changes.append(Change(kind=kind, path=change.path))
        elif alive_from and alive_to:
            for archive, change in shell_changes:
                report.changes.extend(
                    self._expand_shell_change(
                        archive, change, from_version, to_version
                    )
                )
        return report

    @staticmethod
    def _expand_shell_change(
        archive: Archive, change: Change, from_version: int, to_version: int
    ) -> list[Change]:
        """Per-record changes beneath a chunk-locally flickering shell.

        A *deleted* shell had its records alive at the ``from`` version;
        an *added* shell has them at the ``to`` version.
        """
        version = from_version if change.kind == "deleted" else to_version
        root_timestamp = archive.root.timestamp
        if root_timestamp is None:
            return []
        expanded: list[Change] = []
        for shell in archive.root.children:
            if "/" + _step(shell) != change.path:
                continue
            shell_timestamp = shell.effective_timestamp(root_timestamp)
            for record in shell.children:
                if version in record.effective_timestamp(shell_timestamp):
                    expanded.append(
                        Change(
                            kind=change.kind,
                            path=f"{change.path}/{_step(record)}",
                        )
                    )
        return expanded

    def stats(self) -> ArchiveStats:
        """Aggregated size/shape counters across the chunk archives.

        Every chunk stores its own copy of the archive root and of the
        document shell (the record parent); ``nodes`` folds those
        duplicates into a single logical occurrence so the count equals
        the other backends' for the same archive.  ``stored_timestamps``
        and ``serialized_bytes`` count what this representation actually
        stores — the per-chunk shells each carry a timestamp, so both
        run higher than the single-file encoding.
        """
        nodes = 1
        stored_timestamps = 1
        raw_bytes = 0
        seen_shells: set[tuple] = set()
        for index in range(self.chunk_count):
            text = self._read_chunk_text(index)
            if text is None:
                continue
            raw_bytes += len(text.encode("utf-8"))
            archive = Archive.from_xml_string(text, self.spec, self.options)
            if archive.root.timestamp is not None:
                stored_timestamps += archive.root.timestamp_count() - 1
            for shell in archive.root.children:
                token = shell.label.sort_token()
                nodes += shell.node_count()
                if token in seen_shells:
                    nodes -= 1  # the shell itself is shared, not repeated
                else:
                    seen_shells.add(token)
        cache = chunk_cache()
        return ArchiveStats(
            versions=self._version_count,
            nodes=nodes,
            stored_timestamps=stored_timestamps,
            serialized_bytes=raw_bytes,
            raw_bytes=raw_bytes,
            disk_bytes=self.total_bytes(),
            generation=self.generation,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            cache_evictions=cache.evictions,
        )

    def total_bytes(self) -> int:
        """Summed on-disk size of all chunk files (the paper concatenates)."""
        total = 0
        for index in range(self.chunk_count):
            path = self._chunk_path(index)
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total

    def recode(self, codec: CodecLike) -> RecodeReport:
        """Re-encode every chunk file in one atomic, verified commit.

        Presence sidecars and ``versions.txt`` stay plain and untouched;
        the chunk files and the manifest (recording the new codec)
        publish together behind one WAL record, so a crash mid-recode
        recovers to wholly-old or wholly-new encodings.

        With ``workers > 1`` the decode → re-encode → verify work runs
        per chunk in a process pool; every result gathers before the
        WAL commit begins, so the atomic wholly-old-or-wholly-new
        guarantee is untouched.
        """
        target = get_codec(codec)
        old = self.codec
        before = self.total_bytes()
        tasks = []
        for index in range(self.chunk_count):
            # ``self.codec`` is still the old codec here (it moves
            # only after the commit publishes), so workers decode the
            # current encoding.
            payload = self.read_part_payload(index)
            if payload is None:
                continue
            tasks.append(
                (index, payload, old.name, target.name, self.spec, self.options)
            )
        recoded = self.pool.map(_recode_chunk_task, tasks)
        pending = self._checksums.copy()
        commit = self._wal.begin()
        files = 0
        try:
            for index, encoded in recoded:
                self._stage(commit, pending, self._chunk_path(index), encoded)
                files += 1
            manifest = self._manifest_at(self._version_count)
            manifest.codec = target.name
            self._stage(commit, pending, self.manifest_path(), manifest.to_json())
            commit.stage(self._checksums.path, pending.to_json())
        except BaseException:
            commit.abort()
            raise
        commit.commit(meta={"version_count": self._version_count})
        # Only a published commit moves the in-memory codec: a failure
        # anywhere above leaves this backend reading the old encoding.
        self.codec = target
        self._checksums = pending
        self.generation += 1
        self._invalidate_cached_chunks()
        return RecodeReport(
            path=self.directory,
            kind=self.kind,
            old_codec=old.name,
            new_codec=target.name,
            files=files,
            disk_bytes_before=before,
            disk_bytes_after=self.total_bytes(),
        )
