"""The chunked archiver — the paper's own memory workaround (Sec. 5).

Before building the full external-memory machinery of Sec. 6, the
paper's experiments coped with 256 MB of RAM by *hashing the data into
chunks based on the values of keys*: "An incoming version is
partitioned in the same manner, and we apply our archiver to the
corresponding chunks of the archive and the incoming version.  Since we
never merge elements with different key values, we can obtain the
archive of the whole data by merging ... chunk by chunk, and
concatenating the results."

:class:`ChunkedArchiver` reproduces that scheme: top-level records are
partitioned by a hash of their key value into ``chunk_count`` buckets,
each bucket is archived independently (one on-disk XML archive per
chunk), and queries fan out to the owning chunk.  Peak memory is
bounded by the largest chunk plus one version's worth of records.
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable, Iterable, Optional

from ..core.archive import Archive, ArchiveOptions
from ..core.ingest import IngestSession
from ..core.merge import MergeStats
from ..core.versionset import VersionSet
from ..keys.annotate import annotate_keys, compute_key_value
from ..keys.spec import KeySpec
from ..xmltree.model import Element
from ..xmltree.parser import parse_document


class ChunkedArchiverError(ValueError):
    """Raised on misconfiguration or unusable documents."""


def concatenate_parts(parts) -> Optional[Element]:
    """Concatenate per-chunk reconstructions under one root shell.

    ``parts`` yields each chunk's reconstruction (``None`` for chunks
    without content at the version); the first non-``None`` part
    donates the root tag and attributes — the paper's "concatenating
    the results".  Shared by every chunk-partitioned reader.
    """
    result: Optional[Element] = None
    for part in parts:
        if part is None:
            continue
        if result is None:
            result = Element(part.tag)
            for attr in part.attributes:
                result.set_attribute(attr.name, attr.value)
        for child in part.children:
            result.append(child)
    return result


def _chunk_presence_of(archive: Archive) -> VersionSet:
    """Union of the top-level record roots' effective timestamps — the
    versions at which the chunk contributes anything to a retrieval."""
    root_timestamp = archive.root.timestamp
    if root_timestamp is None:
        return VersionSet()
    presence = VersionSet()
    for child in archive.root.children:
        presence = presence.union(child.effective_timestamp(root_timestamp))
    return presence


def route_to_owning_chunk(chunk_count: int, attempt, path: str):
    """Probe chunks until one answers a keyed-path query.

    ``attempt(index)`` returns ``None`` for chunks with no stored data
    and raises when the element is not in that chunk (every chunk
    shares the global version numbering, so the first answer is *the*
    answer).  Re-raises the last miss when no chunk answers.
    """
    last_error: Optional[Exception] = None
    for index in range(chunk_count):
        try:
            result = attempt(index)
        except Exception as error:  # not in this chunk
            last_error = error
            continue
        if result is not None:
            return result
    if last_error is not None:
        raise last_error
    raise ChunkedArchiverError(f"No element at {path!r} in any chunk")


class ChunkedArchiver:
    """Archive per key-hash chunk; concatenate for the full picture.

    ``record_depth`` selects the partitioning level: 1 partitions the
    children of the document root (the paper's record level for OMIM
    and Swiss-Prot, whose roots hold a flat list of ``Record``
    elements).
    """

    def __init__(
        self,
        directory: str,
        spec: KeySpec,
        chunk_count: int = 8,
        options: Optional[ArchiveOptions] = None,
    ) -> None:
        if chunk_count < 1:
            raise ChunkedArchiverError("Need at least one chunk")
        self.directory = directory
        self.spec = spec
        self.chunk_count = chunk_count
        self.options = options or ArchiveOptions()
        #: Chunk loads retrieval skipped because the chunk's presence
        #: timestamp excluded the requested version (cumulative).
        self.chunks_pruned = 0
        os.makedirs(directory, exist_ok=True)
        self._version_count = self._load_version_count()

    # -- chunk file plumbing ----------------------------------------------------

    def _chunk_path(self, index: int) -> str:
        return os.path.join(self.directory, f"chunk-{index:04d}.xml")

    def _presence_path(self, index: int) -> str:
        return os.path.join(self.directory, f"chunk-{index:04d}.presence")

    def _meta_path(self) -> str:
        return os.path.join(self.directory, "versions.txt")

    def _load_version_count(self) -> int:
        try:
            with open(self._meta_path(), "r", encoding="utf-8") as handle:
                return int(handle.read().strip() or "0")
        except FileNotFoundError:
            return 0

    def _store_version_count(self) -> None:
        with open(self._meta_path(), "w", encoding="utf-8") as handle:
            handle.write(str(self._version_count))

    def _load_chunk(self, index: int) -> Archive:
        path = self._chunk_path(index)
        if not os.path.exists(path):
            archive = Archive(self.spec, self.options)
            # Bring the fresh chunk up to the current version count so
            # chunk timestamps stay globally aligned.
            for _ in range(self._version_count):
                archive.add_version(None)
            return archive
        with open(path, "r", encoding="utf-8") as handle:
            return Archive.from_xml_string(handle.read(), self.spec, self.options)

    def _store_chunk(self, index: int, archive: Archive) -> None:
        # Presence first: if a crash lands between the two writes, a
        # superset-stale sidecar merely costs an unnecessary parse,
        # whereas a subset-stale one would silently prune live versions.
        with open(self._presence_path(index), "w", encoding="utf-8") as handle:
            handle.write(_chunk_presence_of(archive).to_text())
        with open(self._chunk_path(index), "w", encoding="utf-8") as handle:
            handle.write(archive.to_xml_string())

    def chunk_presence(self, index: int) -> Optional[VersionSet]:
        """Versions at which the chunk actually stores records.

        Read from the tiny ``.presence`` sidecar written next to the
        chunk file, so retrieval can prune whole chunks whose timestamps
        exclude the target version *before* parsing their XML.  Every
        chunk shares the global version numbering via locally-empty
        versions, so the chunk archive's own root timestamp never
        excludes anything — the presence set is the union of the
        top-level record roots' effective timestamps instead.  ``None``
        when unknown (sidecar missing: chunk written by an older tool).
        """
        try:
            with open(self._presence_path(index), "r", encoding="utf-8") as handle:
                return VersionSet.parse(handle.read())
        except FileNotFoundError:
            return None

    # -- partitioning --------------------------------------------------------------

    def _chunk_of(self, record: Element, annotated) -> int:
        label = annotated.label(record)
        if label is None:
            raise ChunkedArchiverError(
                f"Top-level record <{record.tag}> is unkeyed; chunking "
                f"requires keyed records"
            )
        digest = hashlib.sha256(str(label).encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big") % self.chunk_count

    def _partition(self, document: Element) -> dict[int, Element]:
        annotated = annotate_keys(document, self.spec)
        parts: dict[int, Element] = {}
        for record in document.element_children():
            index = self._chunk_of(record, annotated)
            shell = parts.get(index)
            if shell is None:
                shell = Element(document.tag)
                for attr in document.attributes:
                    shell.set_attribute(attr.name, attr.value)
                parts[index] = shell
            shell.append(record.copy())
        return parts

    # -- public API -----------------------------------------------------------------

    @property
    def last_version(self) -> int:
        return self._version_count

    def add_version(self, document: Optional[Element]) -> MergeStats:
        """Partition the version and merge chunk by chunk."""
        total = MergeStats()
        parts = self._partition(document) if document is not None else {}
        for index in range(self.chunk_count):
            # Chunks with no records this version still advance their
            # version counter (as an empty version) so timestamps align.
            chunk_exists = os.path.exists(self._chunk_path(index))
            part = parts.get(index)
            if part is None and not chunk_exists:
                continue  # nothing stored, nothing new: stay lazy
            archive = self._load_chunk(index)
            total.accumulate(archive.add_version(part))
            self._store_chunk(index, archive)
        total.versions = 1
        self._version_count += 1
        self._store_version_count()
        return total

    def ingest_batch(
        self,
        documents: Iterable[Optional[Element]],
        on_chunk: Optional[Callable[[int, Archive], None]] = None,
    ) -> MergeStats:
        """Merge a whole sequence of versions chunk-major.

        Where a loop over :meth:`add_version` loads, re-parses and
        re-serializes every chunk *per version*, the batch path
        partitions all versions up front, then touches each chunk
        exactly once: load, run a fingerprint-memoized
        :class:`~repro.core.ingest.IngestSession` over the chunk's slice
        of every version, store.  ``on_chunk(index, archive)`` fires as
        each chunk's versions land (before the in-memory archive is
        dropped) — the hook the index-maintaining persistent layer uses.

        The chunk-major order trades memory for I/O: the whole batch's
        partitions stay in memory until their chunks are processed, so
        peak memory is one chunk plus the *batch's* records rather than
        the single version the per-version loop holds.  Callers on the
        paper's 256 MB budget bound it by ingesting in slices —
        consecutive ``ingest_batch`` calls produce chunk files identical
        to one big batch (and to a per-version loop).
        """
        partitions = [
            self._partition(document) if document is not None else {}
            for document in documents
        ]
        total = MergeStats()
        for index in range(self.chunk_count):
            chunk_exists = os.path.exists(self._chunk_path(index))
            if not chunk_exists and not any(index in parts for parts in partitions):
                continue  # never stored, never mentioned: stay lazy
            archive = self._load_chunk(index)
            session = IngestSession(archive)
            for parts in partitions:
                # Versions without records for this chunk are empty
                # versions locally, keeping timestamps globally aligned.
                session.add(parts.get(index))
            self._store_chunk(index, archive)
            if on_chunk is not None:
                on_chunk(index, archive)
            total.accumulate(session.stats)
        total.versions = len(partitions)
        self._version_count += len(partitions)
        self._store_version_count()
        return total

    def retrieve(self, version: int) -> Optional[Element]:
        """Concatenate the per-chunk reconstructions.

        Chunks whose presence timestamps exclude ``version`` are pruned
        before their XML is parsed (counted in ``chunks_pruned``); the
        chunks that do load reconstruct tree-guided via
        :meth:`Archive.retrieve`.
        """
        if not 1 <= version <= self._version_count:
            raise ChunkedArchiverError(
                f"Version {version} not archived (have 1..{self._version_count})"
            )

        def parts():
            for index in range(self.chunk_count):
                if not os.path.exists(self._chunk_path(index)):
                    continue
                presence = self.chunk_presence(index)
                if presence is not None and version not in presence:
                    self.chunks_pruned += 1
                    continue
                yield self._load_chunk(index).retrieve(version)

        return concatenate_parts(parts())

    def history(self, path: str):
        """Route a history query to the owning chunk.

        The first step of the path identifies the root; the second the
        record, whose key value decides the chunk.
        """

        def attempt(index: int):
            if not os.path.exists(self._chunk_path(index)):
                return None
            return self._load_chunk(index).history(path)

        return route_to_owning_chunk(self.chunk_count, attempt, path)

    def total_bytes(self) -> int:
        """Summed size of all chunk files (the paper concatenates)."""
        total = 0
        for index in range(self.chunk_count):
            path = self._chunk_path(index)
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total
