"""The unified storage contract: one read/write surface per archive.

Three persistence strategies grew out of the paper's sections — the
whole-file archive the CLI speaks (Fig. 5 XML on disk), the key-hash
:class:`~repro.storage.chunked.ChunkedArchiver` (Sec. 5) and the
event-stream :class:`~repro.storage.archiver.ExternalArchiver`
(Sec. 6).  :class:`StorageBackend` is the protocol they all implement,
so ingestion, retrieval, temporal queries and the CLI are written once
against the contract and every future backend (sharded, cached,
service-fronted) plugs into the same seam.

Each archive is self-describing: a ``manifest.json`` (a sidecar
``<archive>.manifest.json`` for single-file archives) records the
backend kind, a fingerprint of the key specification and the version
count, so :func:`open_archive` can route a path to the right backend
without being told.  Durable backends publish every mutation through
the write-ahead commit log of :mod:`repro.storage.wal`: a crash at any
point leaves the archive readable at a version-count boundary, never a
torn mix of files.
"""

from __future__ import annotations

import abc
import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Protocol

from ..core.archive import (
    Archive,
    ArchiveError,
    ArchiveOptions,
    ArchiveStats,
    ElementHistory,
)
from ..core.ingest import IngestSession
from ..core.merge import MergeStats
from ..core.tempquery import ChangeReport, archive_diff
from ..core.tstree import ProbeCount
from ..core.versionset import VersionSet
from ..keys.spec import KeySpec
from ..xmltree.model import Element
from .cache import chunk_cache
from .codec import Codec, CodecLike, get_codec, sniff_codec
from .integrity import (
    ManifestInconsistent,
    _self_digest,
    checksum_entry,
    validate_policy,
    verify_bytes,
)
from .wal import WriteAheadLog, atomic_write_text

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1

#: Per-version ingest progress callback: ``(version_number, stats)``.
OnVersion = Optional[Callable[[int, MergeStats], None]]


# -- the manifest -------------------------------------------------------------


@dataclass
class Manifest:
    """The self-describing header every archive carries on disk.

    ``generation`` is the archive's publication counter: it advances by
    one with every WAL commit that publishes new state (ingest batch,
    single version, recode), and the manifest carrying it publishes
    inside that same commit — so a manifest read *is* a consistent
    snapshot pin.  Readers that capture a generation can stream against
    it to completion: the store is append-mostly, so answers about
    versions the pinned generation already held never change under
    later publications.
    """

    kind: str
    key_spec_hash: str
    version_count: int
    codec: str = "raw"
    generation: int = 0
    format_version: int = MANIFEST_FORMAT
    extra: dict = field(default_factory=dict)

    def to_json(self) -> str:
        record = {
            "format": self.format_version,
            "kind": self.kind,
            "codec": self.codec,
            "generation": self.generation,
            "key_spec_hash": self.key_spec_hash,
            "version_count": self.version_count,
        }
        if self.extra:
            record["extra"] = self.extra
        # Self-checksum: a flipped bit in the manifest is detected as a
        # typed IntegrityError, not trusted as different metadata.
        record["sha256"] = _self_digest(record)
        return json.dumps(record, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Manifest":
        try:
            record = json.loads(text)
        except ValueError as error:
            raise ManifestInconsistent(f"Malformed archive manifest: {error}")
        if not isinstance(record, dict) or "kind" not in record:
            raise ManifestInconsistent(
                "Malformed archive manifest: no backend kind"
            )
        recorded = record.pop("sha256", None)
        if recorded is not None and _self_digest(record) != recorded:
            raise ManifestInconsistent(
                "Archive manifest fails its self-checksum (corrupt manifest)"
            )
        return cls(
            kind=record["kind"],
            key_spec_hash=record.get("key_spec_hash", ""),
            version_count=int(record.get("version_count", 0)),
            codec=record.get("codec", "raw"),
            generation=int(record.get("generation", 0)),
            format_version=int(record.get("format", MANIFEST_FORMAT)),
            extra=record.get("extra", {}),
        )


def key_spec_fingerprint(spec: KeySpec) -> str:
    """Content hash of a key specification (its textual form)."""
    return hashlib.sha256(str(spec).encode("utf-8")).hexdigest()


@dataclass
class RecodeReport:
    """What one :meth:`StorageBackend.recode` rewrite did."""

    path: str
    kind: str
    old_codec: str
    new_codec: str
    #: Payload files rewritten (chunk files, archive file or stream).
    files: int
    disk_bytes_before: int
    disk_bytes_after: int

    def __str__(self) -> str:
        return (
            f"recoded {self.kind} archive {self.path}: "
            f"{self.old_codec} -> {self.new_codec}, {self.files} file(s), "
            f"{self.disk_bytes_before} -> {self.disk_bytes_after} bytes on disk"
        )


def verify_recoded_document(text: str, encoded: bytes, codec: Codec) -> None:
    """Identity check before a recode publishes: the staged payload must
    decode to a document value-equal to the source.  Raises
    :class:`ArchiveError` instead of letting a lossy encode commit."""
    from ..xmltree.parser import parse_document
    from ..xmltree.value import value_equal

    decoded = codec.decode_document(encoded)
    if decoded != text and not value_equal(
        parse_document(decoded), parse_document(text)
    ):
        raise ArchiveError(
            f"Recode verification failed: {codec.name} round-trip does not "
            f"preserve the document"
        )


def manifest_location(path: "str | os.PathLike") -> str:
    """Where an archive at ``path`` keeps its manifest."""
    path = os.fspath(path)
    if os.path.isdir(path):
        return os.path.join(path, MANIFEST_NAME)
    return path + ".manifest.json"


def keys_location(path: "str | os.PathLike") -> str:
    """Where an archive at ``path`` keeps its key specification text."""
    path = os.fspath(path)
    if os.path.isdir(path):
        return os.path.join(path, "archive.keys")
    return path + ".keys"


def read_manifest(path: str) -> Optional[Manifest]:
    """The archive's manifest, or ``None`` for pre-manifest archives."""
    location = manifest_location(path)
    try:
        with open(location, "rb") as handle:
            raw = handle.read()
    except FileNotFoundError:
        return None
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ManifestInconsistent(
            f"Archive manifest {location!r} is not valid UTF-8 "
            f"(corrupt manifest): {error}"
        )
    return Manifest.from_json(text)


# -- the storage contract -----------------------------------------------------


class StorageBackend(abc.ABC):
    """One archive's read/write surface, whatever its on-disk shape.

    Version numbers are global and monotonic (1-based); ``retrieve``
    returns ``None`` for an empty version; keyed siblings come back in
    key order from every backend, so retrievals are byte-identical
    across backends.  ``history``/``diff`` use the keyed-path syntax of
    :meth:`repro.core.archive.Archive.history`.
    """

    #: Manifest tag for this backend's on-disk layout.
    kind: str = "abstract"
    #: Whether ``retrieve`` fills a :class:`ProbeCount` when given one.
    supports_probes: bool = False

    spec: KeySpec
    #: Filesystem anchor of the archive — a directory or a single file;
    #: every backend sets it, and manifest placement derives from it.
    storage_root: str
    #: At-rest encoding of the archive's payload files (recorded in the
    #: manifest; plain sidecars — keys, presence, versions.txt — are
    #: never encoded).  Every backend sets it in ``__init__``.
    codec: Codec
    #: Publication counter: +1 per WAL commit that publishes new state.
    #: Loaded from the manifest at open, written back inside every
    #: commit — the snapshot pin concurrent readers anchor to.
    generation: int = 0

    @property
    @abc.abstractmethod
    def last_version(self) -> int:
        """The highest archived version number (0 when empty)."""

    @abc.abstractmethod
    def add_version(self, document: Optional[Element]) -> MergeStats:
        """Merge the next version (``None`` records an empty version)."""

    def ingest_batch(
        self, documents: Iterable[Optional[Element]], on_version: OnVersion = None
    ) -> MergeStats:
        """Merge a sequence of versions; ``on_version(number, stats)``
        fires per landed version where the backend merges
        version-at-a-time (batch-oriented backends may skip it)."""
        total = MergeStats()
        for document in documents:
            stats = self.add_version(document)
            total.accumulate(stats)
            total.versions += 1
            if on_version is not None:
                on_version(self.last_version, stats)
        return total

    @abc.abstractmethod
    def retrieve(
        self, version: int, *, probes: Optional[ProbeCount] = None
    ) -> Optional[Element]:
        """Reconstruct one version (``probes`` collected when supported)."""

    @abc.abstractmethod
    def history(self, path: str) -> ElementHistory:
        """Temporal history of the element at a keyed path."""

    @abc.abstractmethod
    def diff(self, from_version: int, to_version: int) -> ChangeReport:
        """Element-level changes between two archived versions."""

    @abc.abstractmethod
    def stats(self) -> ArchiveStats:
        """Size/shape counters of the archive."""

    @abc.abstractmethod
    def recode(self, codec: CodecLike) -> RecodeReport:
        """Rewrite the archive's payload files under another codec.

        Atomic and identity-verified: every re-encoded payload is
        staged through the write-ahead log, checked to decode back to
        the same document (or stream) it was encoded from, and
        published together with the manifest recording the new codec —
        a crash at any point leaves the archive wholly in the old or
        wholly in the new encoding, never a mix.  Recoding to the
        current codec is a no-op rewrite and still verifies.
        """

    def manifest(self) -> Manifest:
        """The manifest describing this backend's current state."""
        return Manifest(
            kind=self.kind,
            key_spec_hash=key_spec_fingerprint(self.spec),
            version_count=self.last_version,
            codec=self.codec.name,
            generation=self.generation,
            extra=self._manifest_extra(),
        )

    def _manifest_extra(self) -> dict:
        return {}

    def manifest_path(self) -> str:
        return manifest_location(self.storage_root)

    def write_manifest(self) -> None:
        """Publish the manifest alone (atomic on its own).

        Backends whose mutations publish several files stage the
        manifest inside their WAL commit instead and use this only at
        archive-creation time."""
        text = self.manifest().to_json()
        atomic_write_text(self.manifest_path(), text)
        self._on_manifest_written(text)

    def _on_manifest_written(self, text: str) -> None:
        """Hook for backends that track the manifest in their checksum
        sidecar (the sidecar must follow a standalone manifest write)."""

    def db(self):
        """An :class:`~repro.query.db.ArchiveDB` facade over this
        backend — the planned, index-aware query surface (temporal
        XPath, change streams, history) every backend shares."""
        from ..query.db import ArchiveDB  # local: query builds on storage

        return ArchiveDB(self)

    def drop_caches(self) -> None:
        """Drop decoded in-memory state held by this handle.

        The next read reloads from disk (or hits the process-wide
        decoded-chunk cache, whose size the LRU budget bounds).  The
        server calls this when it evicts a pinned snapshot so long-lived
        reader handles never pin decoded trees of their own."""

    def close(self) -> None:
        """Release resources; the archive stays durable on disk."""

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PartitionedBackend(Protocol):
    """A backend whose archive is stored as independently-loadable
    parts sharing the global version numbering — the contract
    :class:`~repro.storage.archiver.PersistentIngestor` maintains its
    per-part key and timestamp-tree indexes against.
    """

    spec: KeySpec

    @property
    def last_version(self) -> int: ...

    @property
    def part_count(self) -> int: ...

    def part_exists(self, index: int) -> bool: ...

    def load_part(self, index: int) -> Archive: ...

    def part_presence(self, index: int) -> Optional[VersionSet]: ...

    def ingest_batch(
        self,
        documents: Iterable[Optional[Element]],
        on_chunk: Optional[Callable[[int, Archive], None]] = None,
        on_version: OnVersion = None,
    ) -> MergeStats: ...


# -- the whole-file backend ---------------------------------------------------


class FileBackend(StorageBackend):
    """The CLI's original persistence path behind the protocol: one
    Fig. 5 ``<T>``-tagged XML file holding the whole archive.

    The archive is loaded lazily and persisted after every mutation
    through the write-ahead log — the XML and the manifest sidecar
    publish together, so a crash leaves both at the same version count.
    The simplest backend, and the fastest for archives that fit in
    memory; the chunked and external backends take over beyond that.
    """

    kind = "file"
    supports_probes = True

    def __init__(
        self,
        path: "str | os.PathLike",
        spec: KeySpec,
        options: Optional[ArchiveOptions] = None,
        codec: CodecLike = None,
        verify: str = "always",
        workers: int = 1,
        recover: bool = True,
        cache_reads: bool = False,
    ) -> None:
        self.path = os.path.abspath(os.fspath(path))
        #: Accepted for interface uniformity with the chunked backend;
        #: a single-file archive has no independent parts to fan out.
        self.workers = max(1, int(workers))
        self.storage_root = self.path
        self.spec = spec
        self.options = options or ArchiveOptions()
        self.verify = validate_policy(verify)
        self._wal = WriteAheadLog(self.path + ".wal")
        if recover:
            self._wal.recover(
                stray_tmps=(self.path + ".tmp", self.manifest_path() + ".tmp")
            )
        # An explicit codec wins; otherwise an existing file's magic
        # bytes decide (new archives start raw).
        self.codec = (
            get_codec(codec) if codec is not None else sniff_codec(self.path)
        )
        # The payload's recorded checksum lives in the manifest (the
        # whole-file backend has exactly one payload, so no sidecar).
        manifest = read_manifest(self.path)
        self._payload_checksum: Optional[dict] = (
            manifest.extra.get("payload") if manifest is not None else None
        )
        self.generation = manifest.generation if manifest is not None else 0
        self._verified = False
        self._archive: Optional[Archive] = None
        #: Read-only handles share the decoded archive through the
        #: process-wide decoded-chunk cache; write paths always work on
        #: a privately-owned instance (see ``_ensure_private_archive``).
        self.cache_reads = cache_reads
        self._archive_shared = False
        self.cache_hits = 0
        self.cache_misses = 0

    def _read_payload(self) -> Optional[bytes]:
        """The verified at-rest bytes, or ``None`` when nothing is stored.

        The payload is verified against the manifest's recorded
        checksum under the backend's ``verify`` policy before the codec
        touches it — corruption surfaces as a typed
        :class:`~repro.storage.integrity.IntegrityError`, not a decode
        failure."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return None
        if self.verify != "never" and not (self.verify == "open" and self._verified):
            verify_bytes(os.path.basename(self.path), data, self._payload_checksum)
            self._verified = True
        return data

    def _read_text(self) -> Optional[str]:
        """The decoded archive XML (``None`` when nothing is stored)."""
        data = self._read_payload()
        if data is None:
            return None
        return self.codec.decode_document(data)

    def _cache_token(self):
        """Staleness token for the payload's cache key (``None``: skip).

        The manifest-recorded sha256 when present (precise: every
        publish rewrites it), the generation otherwise (coarser), no
        caching for bare pre-manifest files."""
        if self._payload_checksum and self._payload_checksum.get("sha256"):
            return self._payload_checksum["sha256"]
        if self.generation > 0:
            return ("gen", self.generation)
        return None

    @property
    def archive(self) -> Archive:
        """The in-memory archive, loaded from disk on first use.

        Read-caching handles may hand back an instance shared with
        other handles through the decoded-chunk cache — fine for every
        read (retrieval copy-on-writes content out), never for
        mutation, which goes through :meth:`_ensure_private_archive`.
        """
        if self._archive is None:
            data = self._read_payload()
            if data is None:
                self._archive = Archive(self.spec, self.options)
                return self._archive
            key = None
            cache = None
            if self.cache_reads:
                token = self._cache_token()
                cache = chunk_cache()
                if token is not None and cache.enabled:
                    key = (self.path, 0, token)
                    cached = cache.get(key)
                    if cached is not None:
                        self.cache_hits += 1
                        self._archive = cached
                        self._archive_shared = True
                        return cached
                    self.cache_misses += 1
            self._archive = self.codec.decode_archive(
                data, self.spec, self.options
            )
            if key is not None:
                cache.put(key, self._archive, len(data))
                self._archive_shared = True  # shared with the cache now
        return self._archive

    def _ensure_private_archive(self) -> Archive:
        """A privately-owned archive instance, for mutation.

        Writers mutate the decoded archive in place, which must never
        touch an instance other readers share through the cache — so a
        shared (or not-yet-loaded) archive is decoded fresh, bypassing
        the cache entirely."""
        if self._archive is None or self._archive_shared:
            data = self._read_payload()
            self._archive = (
                self.codec.decode_archive(data, self.spec, self.options)
                if data is not None
                else Archive(self.spec, self.options)
            )
            self._archive_shared = False
        return self._archive

    def drop_caches(self) -> None:
        self._archive = None
        self._archive_shared = False

    def _manifest_extra(self) -> dict:
        if self._payload_checksum is not None:
            return {"payload": self._payload_checksum}
        return {}

    def persist(self) -> None:
        """Publish the encoded archive and manifest in one atomic commit."""
        encoded = self.codec.encode_archive(self.archive)
        previous = self._payload_checksum
        previous_generation = self.generation
        # Record the checksum and the next generation before building
        # the manifest (the manifest carries both); restore them if the
        # commit never lands.
        self._payload_checksum = checksum_entry(encoded)
        self.generation += 1
        commit = self._wal.begin()
        try:
            try:
                commit.stage(self.path, encoded)
                commit.stage(self.manifest_path(), self.manifest().to_json())
            except BaseException:
                commit.abort()  # staging failed: nothing durable yet
                raise
            # A failure *during* commit must not abort: recovery on the
            # next open decides roll-back vs roll-forward from the WAL.
            commit.commit(meta={"version_count": self.last_version})
        except BaseException:
            self._payload_checksum = previous
            self.generation = previous_generation
            raise
        if self.cache_reads:
            # Stale-token entries would only age out of the LRU; a
            # read-caching handle that writes drops them eagerly so the
            # budget isn't spent on unreachable generations.
            chunk_cache().invalidate(self.path)

    @property
    def last_version(self) -> int:
        return self.archive.last_version

    def add_version(self, document: Optional[Element]) -> MergeStats:
        stats = self._ensure_private_archive().add_version(document)
        self.persist()
        return stats

    def ingest_batch(
        self, documents: Iterable[Optional[Element]], on_version: OnVersion = None
    ) -> MergeStats:
        """Batch under a shared fingerprint memo; one publish at the end."""
        session = IngestSession(self._ensure_private_archive())
        for document in documents:
            stats = session.add(document)
            if on_version is not None:
                on_version(self.archive.last_version, stats)
        self.persist()
        return session.stats

    def retrieve(
        self, version: int, *, probes: Optional[ProbeCount] = None
    ) -> Optional[Element]:
        return self.archive.retrieve(version, probes=probes)

    def scan_probe_count(self, version: int) -> int:
        """The full-scan baseline ``--probes`` reports against."""
        return self.archive.scan_probe_count(version)

    def history(self, path: str) -> ElementHistory:
        return self.archive.history(path)

    def diff(self, from_version: int, to_version: int) -> ChangeReport:
        return archive_diff(self.archive, from_version, to_version)

    def stats(self) -> ArchiveStats:
        stats = self.archive.stats()
        stats.raw_bytes = stats.serialized_bytes
        try:
            stats.disk_bytes = os.path.getsize(self.path)
        except OSError:
            stats.disk_bytes = stats.raw_bytes  # never persisted yet
        stats.generation = self.generation
        stats.cache_hits = self.cache_hits
        stats.cache_misses = self.cache_misses
        stats.cache_evictions = chunk_cache().evictions
        return stats

    def recode(self, codec: CodecLike) -> RecodeReport:
        """Re-encode the archive file in place (WAL-staged, verified)."""
        target = get_codec(codec)
        old = self.codec
        # Load (lazily) under the old codec before anything flips: the
        # manifest staged below reads ``last_version`` off this archive.
        text = self.archive.to_xml_string()
        before = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        encoded = target.encode_archive(self.archive)
        verify_recoded_document(text, encoded, target)
        previous_checksum = self._payload_checksum
        previous_generation = self.generation
        self._payload_checksum = checksum_entry(encoded)
        self.generation += 1
        manifest = self.manifest()
        manifest.codec = target.name
        commit = self._wal.begin()
        try:
            try:
                commit.stage(self.path, encoded)
                commit.stage(self.manifest_path(), manifest.to_json())
            except BaseException:
                commit.abort()  # staging failed: nothing durable yet
                raise
            commit.commit(meta={"version_count": self.last_version})
        except BaseException:
            self._payload_checksum = previous_checksum
            self.generation = previous_generation
            raise
        # Only a published commit moves the in-memory codec: a failure
        # anywhere above leaves this backend reading the old encoding.
        self.codec = target
        if self.cache_reads:
            chunk_cache().invalidate(self.path)
        # The in-memory archive (if loaded) is unchanged; only the
        # at-rest encoding moved.
        return RecodeReport(
            path=self.path,
            kind=self.kind,
            old_codec=old.name,
            new_codec=target.name,
            files=1,
            disk_bytes_before=before,
            disk_bytes_after=os.path.getsize(self.path),
        )


# -- opening and creating archives --------------------------------------------

BACKEND_KINDS = ("file", "chunked", "external")


def detect_backend_kind(path: "str | os.PathLike") -> str:
    """The backend kind stored at ``path``.

    The manifest decides when present; pre-manifest archives fall back
    to layout sniffing (an ``archive.jsonl`` stream is external, chunk
    files are chunked, a plain file is a whole-file archive).
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        manifest = read_manifest(path)
        if manifest is not None:
            return manifest.kind
        if os.path.exists(os.path.join(path, "archive.jsonl")):
            return "external"
        if (
            os.path.exists(os.path.join(path, "versions.txt"))
            # A pending commit log means a chunked archive crashed
            # mid-publish before its manifest landed; opening it runs
            # the recovery that completes (or rolls back) the commit.
            or os.path.exists(os.path.join(path, "wal.json"))
            or any(
                name.startswith("chunk-") and name.endswith(".xml")
                for name in os.listdir(path)
            )
        ):
            return "chunked"
        raise ArchiveError(f"{path!r} is not an archive directory")
    if os.path.isfile(path):
        manifest = read_manifest(path)
        return manifest.kind if manifest is not None else "file"
    raise ArchiveError(f"No archive at {path!r}")


def _load_spec_text(
    path: str, keys_file: "Optional[str | os.PathLike]"
) -> str:
    location = os.fspath(keys_file) if keys_file is not None else keys_location(path)
    try:
        with open(location, "r", encoding="utf-8") as handle:
            return handle.read()
    except FileNotFoundError:
        raise ArchiveError(
            f"Key specification {location!r} not found "
            f"(run 'xarch init' or pass --keys)"
        )


def _infer_chunk_count(path: str) -> int:
    """Best-effort chunk count for pre-manifest chunked directories."""
    highest = -1
    for name in os.listdir(path):
        if name.startswith("chunk-") and name.endswith(".xml"):
            try:
                highest = max(highest, int(name[len("chunk-") : -len(".xml")]))
            except ValueError:
                continue
    return highest + 1 if highest >= 0 else 8


def _sniff_backend_codec(path: str, kind: str) -> Codec:
    """Codec of a manifest-less archive, from its payload magic bytes."""
    if kind == "file":
        return sniff_codec(path)
    if kind == "external":
        return sniff_codec(os.path.join(path, "archive.jsonl"))
    for name in sorted(os.listdir(path)):
        if name.startswith("chunk-") and name.endswith(".xml"):
            return sniff_codec(os.path.join(path, name))
    return get_codec(None)


def open_archive(
    path: "str | os.PathLike",
    spec: Optional[KeySpec] = None,
    *,
    keys_file: "Optional[str | os.PathLike]" = None,
    options: Optional[ArchiveOptions] = None,
    verify: str = "always",
    on_corrupt: str = "raise",
    workers: int = 1,
    recover: bool = True,
    cache_reads: Optional[bool] = None,
) -> StorageBackend:
    """Open an existing archive, auto-detecting its backend and codec.

    ``spec`` (or the key text at ``keys_file`` / the archive's keys
    sidecar) supplies the key specification; when the archive carries a
    manifest, the spec is checked against the recorded fingerprint so a
    wrong keys file fails loudly instead of mis-merging.  The at-rest
    codec comes from the manifest, falling back to magic-byte sniffing
    for manifest-less layouts.

    ``verify`` sets the checksum policy for reads (``"always"``,
    ``"open"`` — once per file per handle — or ``"never"``);
    ``on_corrupt`` sets the chunked backend's per-chunk degradation
    policy (``"raise"`` or ``"skip"`` corrupt chunks during retrieval).
    ``workers`` sets the chunk-loop parallelism (a runtime knob, never
    recorded in the manifest): batch ingest, recode and chunk query
    fan-out on the chunked backend run per-chunk work in a process
    pool when it is above 1.
    ``recover=False`` opens without running WAL recovery — required for
    read-only snapshot opens that run concurrently with a live writer,
    where replaying (or rolling back) the writer's in-flight staged
    commit from a reader thread would corrupt the publication protocol.
    ``cache_reads`` opts the handle into the process-wide decoded-chunk
    cache (:mod:`repro.storage.cache`); the default follows ``recover``
    — snapshot opens (``recover=False``) are read handles and share
    decoded chunks, recovery-running opens are write-capable and don't.
    """
    from .archiver import ExternalArchiver  # local: avoids an import cycle
    from .chunked import ChunkedArchiver

    path = os.fspath(path)
    kind = detect_backend_kind(path)
    # Settle any interrupted commit before reading the manifest: a
    # crash mid-publish (of a batch or a recode) may have left the
    # manifest — and the codec/chunk-count it records — staged but not
    # yet renamed.
    if recover:
        if os.path.isdir(path):
            WriteAheadLog(os.path.join(path, "wal.json")).recover(
                stray_tmps=[
                    os.path.join(path, name)
                    for name in os.listdir(path)
                    if name.endswith(".tmp")
                ]
            )
        else:
            WriteAheadLog(path + ".wal").recover(
                stray_tmps=(path + ".tmp", manifest_location(path) + ".tmp")
            )
    if spec is None:
        from ..keys.keyparser import parse_key_spec

        spec = parse_key_spec(_load_spec_text(path, keys_file))
    manifest = read_manifest(path)
    if manifest is not None and manifest.key_spec_hash:
        if manifest.key_spec_hash != key_spec_fingerprint(spec):
            raise ManifestInconsistent(
                f"Key specification does not match the one {path!r} was "
                f"created with (manifest fingerprint mismatch)"
            )
    codec = (
        get_codec(manifest.codec)
        if manifest is not None
        else _sniff_backend_codec(path, kind)
    )
    if cache_reads is None:
        cache_reads = not recover
    if kind == "file":
        return FileBackend(
            path,
            spec,
            options,
            codec=codec,
            verify=verify,
            workers=workers,
            recover=recover,
            cache_reads=cache_reads,
        )
    if kind == "chunked":
        if manifest is not None and "chunk_count" in manifest.extra:
            chunk_count = int(manifest.extra["chunk_count"])
        else:
            chunk_count = _infer_chunk_count(path)
        return ChunkedArchiver(
            path,
            spec,
            chunk_count,
            options,
            codec=codec,
            verify=verify,
            on_corrupt=on_corrupt,
            workers=workers,
            recover=recover,
            cache_reads=cache_reads,
        )
    if kind == "external":
        if options is not None and options.compaction:
            # Reject loudly, exactly like create_archive: silently
            # ignoring the flag would hand back a non-compacted archive.
            raise ArchiveError("The external backend does not store weaves")
        return ExternalArchiver(
            path,
            spec,
            codec=codec,
            verify=verify,
            workers=workers,
            recover=recover,
            cache_reads=cache_reads,
        )
    raise ArchiveError(f"Unknown backend kind {kind!r} in {path!r} manifest")


def _clear_archive(path: str) -> None:
    """Remove an existing archive so ``force`` recreation starts empty.

    Deletes only what is recognizably an archive: a plain file (plus
    its manifest/keys/WAL sidecars) or a directory whose layout
    :func:`detect_backend_kind` accepts.  A populated directory that is
    *not* an archive is refused rather than destroyed.
    """
    import shutil

    if os.path.isfile(path):
        for target in (
            path,
            manifest_location(path),
            keys_location(path),
            path + ".wal",
        ):
            if os.path.exists(target):
                os.remove(target)
        return
    try:
        detect_backend_kind(path)
    except ArchiveError:
        raise ArchiveError(
            f"{path!r} exists and is not an archive; refusing to overwrite it"
        )
    shutil.rmtree(path)


def create_archive(
    path: "str | os.PathLike",
    spec_text: str,
    kind: str = "file",
    *,
    chunk_count: int = 8,
    options: Optional[ArchiveOptions] = None,
    force: bool = False,
    codec: CodecLike = None,
    workers: int = 1,
) -> StorageBackend:
    """Create an empty archive of the given backend kind at ``path``.

    Writes the keys sidecar and the manifest (recording the chosen
    at-rest ``codec``), so every later :func:`open_archive` needs only
    the path.
    """
    from ..keys.keyparser import parse_key_spec

    from .archiver import ExternalArchiver  # local: avoids an import cycle
    from .chunked import ChunkedArchiver

    path = os.fspath(path)
    if kind not in BACKEND_KINDS:
        raise ArchiveError(
            f"Unknown backend kind {kind!r} (choose from {', '.join(BACKEND_KINDS)})"
        )
    at_rest = get_codec(codec)  # validate before touching the disk
    spec = parse_key_spec(spec_text)
    occupied = (
        os.path.isfile(path)
        or (os.path.isdir(path) and bool(os.listdir(path)))
    )
    if occupied and not force:
        raise ArchiveError(f"{path!r} exists (use --force)")
    if occupied:
        _clear_archive(path)  # force: reinitialize, don't adopt
    if kind == "external" and options is not None and options.compaction:
        raise ArchiveError("The external backend does not store weaves")
    if kind == "file" and os.path.isdir(path):
        raise ArchiveError(
            f"{path!r} is a directory; pick a directory backend "
            f"(--backend chunked|external) or a file path"
        )
    backend: StorageBackend
    if kind == "file":
        backend = FileBackend(path, spec, options, codec=at_rest, workers=workers)
        backend.persist()
    elif kind == "chunked":
        os.makedirs(path, exist_ok=True)
        backend = ChunkedArchiver(
            path, spec, chunk_count, options, codec=at_rest, workers=workers
        )
        backend.write_manifest()
    else:
        os.makedirs(path, exist_ok=True)
        backend = ExternalArchiver(path, spec, codec=at_rest, workers=workers)
        backend.write_manifest()
    from .wal import atomic_write_text

    atomic_write_text(keys_location(path), spec_text)
    return backend
