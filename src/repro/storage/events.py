"""On-disk event streams for archives and versions (Sec. 6).

The external-memory archiver never holds an archive in memory; it works
on *event streams* — a document-order traversal with children sorted by
key label at every level, so two streams can be merged with memory
proportional to tree height only (the paper's assumption: a root-to-leaf
path fits in a page).

Stream format: one JSON array per line.

* ``["N", tag, key, attrs, ts]`` — enter an internal keyed node
  (``key`` = list of ``[path, value]`` pairs, ``ts`` = interval text or
  ``null`` for an inherited timestamp);
* ``["F", tag, key, attrs, ts, alternatives]`` — a whole frontier node;
  ``alternatives`` = list of ``[ts_or_null, [content...]]`` where each
  content item is ``["E", xml]`` or ``["T", text]``;
* ``["X"]`` — exit the current internal node.

I/O accounting wraps every reader/writer: bytes moved divided by the
page size ``B`` gives the page counts of the paper's analysis.  The
accounting stays in *logical* (decoded-text) bytes whatever the at-rest
codec, so the Sec. 6 page analysis is codec-independent; the honest
on-disk numbers live in ``ArchiveStats.disk_bytes``.

Readers and writers take an optional :class:`~repro.storage.codec.Codec`
— under a compressing codec the stream is framed gzip, written and read
through bounded-memory streaming handles, so the external sort/merge
never holds more than a frame of compressed history.
"""

from __future__ import annotations

import gzip
import json
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..core.nodes import Alternative, ArchiveNode, ContentNode
from ..core.versionset import VersionSet
from ..keys.annotate import AnnotatedDocument, KeyLabel
from ..xmltree.model import Element, Text
from ..xmltree.parser import parse_document
from ..xmltree.serializer import to_string
from .codec import get_codec
from .integrity import IntegrityError, TruncatedPayload

DEFAULT_PAGE_SIZE = 4096


@dataclass
class IOStats:
    """Byte/page accounting across the external archiver's phases."""

    bytes_read: int = 0
    bytes_written: int = 0
    page_size: int = DEFAULT_PAGE_SIZE

    def pages_read(self) -> int:
        return -(-self.bytes_read // self.page_size)

    def pages_written(self) -> int:
        return -(-self.bytes_written // self.page_size)

    def merge(self, other: "IOStats") -> None:
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written


@dataclass
class NodeEvent:
    """Enter an internal node."""

    label: KeyLabel
    attributes: tuple[tuple[str, str], ...]
    timestamp: Optional[VersionSet]

    def token(self) -> tuple:
        return self.label.sort_token()


@dataclass
class FrontierEvent:
    """A complete frontier node."""

    label: KeyLabel
    attributes: tuple[tuple[str, str], ...]
    timestamp: Optional[VersionSet]
    alternatives: list[Alternative]

    def token(self) -> tuple:
        return self.label.sort_token()


@dataclass
class ExitEvent:
    """Exit the current internal node."""


Event = Union[NodeEvent, FrontierEvent, ExitEvent]


# -- encoding -----------------------------------------------------------------


def _encode_content(content: list[ContentNode]) -> list[list[str]]:
    encoded: list[list[str]] = []
    for node in content:
        if isinstance(node, Text):
            encoded.append(["T", node.text])
        else:
            encoded.append(["E", to_string(node)])
    return encoded


def _decode_content(encoded: list[list[str]]) -> list[ContentNode]:
    content: list[ContentNode] = []
    for kind, payload in encoded:
        if kind == "T":
            content.append(Text(payload))
        else:
            content.append(parse_document(payload))
    return content


def encode_event(event: Event) -> str:
    if isinstance(event, ExitEvent):
        return '["X"]'
    ts = event.timestamp.to_text() if event.timestamp is not None else None
    key = [[path, value] for path, value in event.label.key]
    attrs = [[name, value] for name, value in event.attributes]
    if isinstance(event, NodeEvent):
        return json.dumps(["N", event.label.tag, key, attrs, ts])
    alternatives = [
        [
            alt.timestamp.to_text() if alt.timestamp is not None else None,
            _encode_content(alt.content),
        ]
        for alt in event.alternatives
    ]
    return json.dumps(["F", event.label.tag, key, attrs, ts, alternatives])


def decode_event(line: str) -> Event:
    data = json.loads(line)
    kind = data[0]
    if kind == "X":
        return ExitEvent()
    tag, key, attrs, ts = data[1], data[2], data[3], data[4]
    label = KeyLabel(tag=tag, key=tuple((p, v) for p, v in key))
    attributes = tuple((n, v) for n, v in attrs)
    timestamp = VersionSet.parse(ts) if ts is not None else None
    if kind == "N":
        return NodeEvent(label=label, attributes=attributes, timestamp=timestamp)
    alternatives = [
        Alternative(
            timestamp=VersionSet.parse(alt_ts) if alt_ts is not None else None,
            content=_decode_content(content),
        )
        for alt_ts, content in data[5]
    ]
    return FrontierEvent(
        label=label,
        attributes=attributes,
        timestamp=timestamp,
        alternatives=alternatives,
    )


# -- file I/O with accounting --------------------------------------------------


class EventWriter:
    """Writes an event stream to a file, counting logical bytes."""

    def __init__(self, path: str, stats: IOStats, codec=None) -> None:
        # ``get_codec`` is resolved at module scope (not per call) and
        # passes already-resolved Codec objects straight through, so a
        # backend handing its cached codec down pays no lookup here.
        self._handle = get_codec(codec).open_text_write(path)
        self._stats = stats

    def write(self, event: Event) -> None:
        line = encode_event(event) + "\n"
        self._handle.write(line)
        self._stats.bytes_written += len(line.encode("utf-8"))

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_events(path: str, stats: IOStats, codec=None) -> Iterator[Event]:
    """Lazily iterate events from a stream file, counting logical bytes.

    Stream-layer failures (a gzip frame cut short, bytes that stopped
    being UTF-8) and lines that no longer parse as events are raised as
    the typed :class:`~repro.storage.integrity.IntegrityError` family —
    :class:`~repro.storage.integrity.TruncatedPayload` when the stream
    ends mid-frame — never as a bare ``EOFError``/``zlib.error``/
    ``json.JSONDecodeError`` from whatever layer happened to choke.
    """
    line_number = 0
    try:
        with get_codec(codec).open_text_read(path) as handle:
            for line in handle:
                line_number += 1
                stats.bytes_read += len(line.encode("utf-8"))
                if line.strip():
                    yield decode_event(line)
    except IntegrityError:
        raise
    except gzip.BadGzipFile as error:
        # A frame whose magic rotted away (BadGzipFile subclasses
        # OSError, so it must classify before real I/O errors pass).
        raise IntegrityError(
            f"Event stream {path!r} is undecodable near line "
            f"{line_number}: {error}"
        )
    except (EOFError, zlib.error) as error:
        raise TruncatedPayload(
            f"Event stream {path!r} ends mid-frame after line "
            f"{line_number}: {error}"
        )
    except (
        UnicodeDecodeError,
        json.JSONDecodeError,
        IndexError,
        KeyError,
        TypeError,
        ValueError,
    ) as error:
        raise IntegrityError(
            f"Event stream {path!r} is undecodable near line "
            f"{line_number}: {error}"
        )


class PeekableEvents:
    """A one-event lookahead wrapper used by the stream mergers."""

    def __init__(self, events: Iterator[Event]) -> None:
        self._events = events
        self._buffer: list[Event] = []

    def peek(self) -> Optional[Event]:
        if not self._buffer:
            try:
                self._buffer.append(next(self._events))
            except StopIteration:
                return None
        return self._buffer[0]

    def next(self) -> Event:
        event = self.peek()
        if event is None:
            raise StopIteration("event stream exhausted")
        self._buffer.pop(0)
        return event

    def skip_subtree(self, first: Event) -> Iterator[Event]:
        """Yield ``first`` plus the rest of its subtree's events."""
        yield first
        if isinstance(first, NodeEvent):
            depth = 1
            while depth:
                event = self.next()
                if isinstance(event, NodeEvent):
                    depth += 1
                elif isinstance(event, ExitEvent):
                    depth -= 1
                yield event


# -- conversions to/from the in-memory archive ------------------------------------


def archive_node_to_events(node: ArchiveNode, writer: EventWriter) -> None:
    """Emit one archive subtree (children assumed label-sorted)."""
    if node.weave is not None:
        raise ValueError(
            "Event streams store frontier alternatives; weave-compacted "
            "archives are an in-memory representation (convert first)"
        )
    if node.alternatives is not None:
        writer.write(
            FrontierEvent(
                label=node.label,
                attributes=node.attributes,
                timestamp=node.timestamp,
                alternatives=node.alternatives,
            )
        )
        return
    writer.write(
        NodeEvent(
            label=node.label, attributes=node.attributes, timestamp=node.timestamp
        )
    )
    for child in node.children:
        archive_node_to_events(child, writer)
    writer.write(ExitEvent())


def events_to_archive_node(events: PeekableEvents) -> ArchiveNode:
    """Rebuild one archive subtree from its events."""
    event = events.next()
    if isinstance(event, FrontierEvent):
        return ArchiveNode(
            label=event.label,
            timestamp=event.timestamp,
            attributes=event.attributes,
            alternatives=event.alternatives,
        )
    assert isinstance(event, NodeEvent)
    node = ArchiveNode(
        label=event.label, timestamp=event.timestamp, attributes=event.attributes
    )
    while not isinstance(events.peek(), ExitEvent):
        node.children.append(events_to_archive_node(events))
    events.next()  # consume the exit
    return node


def version_subtree_to_events(
    node: Element,
    document: AnnotatedDocument,
    writer: EventWriter,
) -> None:
    """Emit a key-annotated version subtree, children sorted by label."""
    label = document.label(node)
    assert label is not None
    attributes = tuple(sorted((a.name, a.value) for a in node.attributes))
    if document.is_frontier(node):
        writer.write(
            FrontierEvent(
                label=label,
                attributes=attributes,
                timestamp=None,
                alternatives=[
                    Alternative(
                        timestamp=None, content=[c.copy() for c in node.children]
                    )
                ],
            )
        )
        return
    writer.write(NodeEvent(label=label, attributes=attributes, timestamp=None))
    ordered = sorted(
        node.element_children(), key=lambda child: document.label(child).sort_token()
    )
    for child in ordered:
        version_subtree_to_events(child, document, writer)
    writer.write(ExitEvent())
