"""External-memory archiving (Sec. 6).

Event-stream files with I/O accounting, bounded-memory sorted runs with
k-way merging, the one-pass stream merge, and the
:class:`ExternalArchiver` facade tying the three phases together.
"""

from .archiver import ExternalArchiver, PersistentIngestor, archive_to_stream
from .chunked import ChunkedArchiver, ChunkedArchiverError
from .events import (
    DEFAULT_PAGE_SIZE,
    EventWriter,
    ExitEvent,
    FrontierEvent,
    IOStats,
    NodeEvent,
    PeekableEvents,
    decode_event,
    encode_event,
    read_events,
)
from .extmerge import StreamMergeError, merge_archive_stream
from .extsort import merge_event_streams, sort_version, write_sorted_runs

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "ChunkedArchiver",
    "ChunkedArchiverError",
    "EventWriter",
    "ExitEvent",
    "ExternalArchiver",
    "FrontierEvent",
    "IOStats",
    "NodeEvent",
    "PeekableEvents",
    "PersistentIngestor",
    "StreamMergeError",
    "archive_to_stream",
    "decode_event",
    "encode_event",
    "merge_archive_stream",
    "merge_event_streams",
    "read_events",
    "sort_version",
    "write_sorted_runs",
]
