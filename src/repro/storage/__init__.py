"""Persistent archive storage: one protocol, three backends.

:class:`StorageBackend` (``backend.py``) is the contract every
persistence path implements — the whole-file :class:`FileBackend`, the
key-hash :class:`ChunkedArchiver` (Sec. 5) and the event-stream
:class:`ExternalArchiver` (Sec. 6) — behind a self-describing manifest
(:func:`open_archive` auto-detects the backend) and the write-ahead
commit log of ``wal.py`` (crash-safe atomic batch publication).  The
external-memory machinery keeps its own modules: event-stream files
with I/O accounting, bounded-memory sorted runs with k-way merging and
the one-pass stream merge.
"""

from .archiver import ExternalArchiver, PersistentIngestor, archive_to_stream
from .backend import (
    BACKEND_KINDS,
    FileBackend,
    Manifest,
    PartitionedBackend,
    RecodeReport,
    StorageBackend,
    create_archive,
    detect_backend_kind,
    key_spec_fingerprint,
    keys_location,
    manifest_location,
    open_archive,
    read_manifest,
)
from .chunked import ChunkedArchiver, ChunkedArchiverError, restore_key_order
from .codec import (
    CODEC_NAMES,
    CODECS,
    Codec,
    CodecError,
    GzipCodec,
    RawCodec,
    XMillCodec,
    detect_codec,
    get_codec,
    sniff_codec,
)
from .events import (
    DEFAULT_PAGE_SIZE,
    EventWriter,
    ExitEvent,
    FrontierEvent,
    IOStats,
    NodeEvent,
    PeekableEvents,
    decode_event,
    encode_event,
    read_events,
)
from .extmerge import StreamMergeError, merge_archive_stream
from .extsort import merge_event_streams, sort_version, write_sorted_runs
from .faults import CrashPoint, FaultInjector, inject
from .parallel import ExecutionPool, TaskNotPicklable, WorkerError
from .fsck import FINDING_CODES, Finding, FsckReport, fsck_archive
from .integrity import (
    CHECKSUMS_NAME,
    QUARANTINE_DIR,
    VERIFY_POLICIES,
    ChecksumMismatch,
    ChecksumSidecar,
    IntegrityError,
    ManifestInconsistent,
    TruncatedPayload,
)
from .wal import Commit, WalError, WriteAheadLog, atomic_write_text

__all__ = [
    "BACKEND_KINDS",
    "CHECKSUMS_NAME",
    "CODECS",
    "CODEC_NAMES",
    "Codec",
    "CodecError",
    "ChecksumMismatch",
    "ChecksumSidecar",
    "CrashPoint",
    "DEFAULT_PAGE_SIZE",
    "ChunkedArchiver",
    "ChunkedArchiverError",
    "Commit",
    "FINDING_CODES",
    "FaultInjector",
    "Finding",
    "FsckReport",
    "GzipCodec",
    "IntegrityError",
    "ManifestInconsistent",
    "QUARANTINE_DIR",
    "RawCodec",
    "RecodeReport",
    "TruncatedPayload",
    "VERIFY_POLICIES",
    "XMillCodec",
    "EventWriter",
    "ExecutionPool",
    "ExitEvent",
    "ExternalArchiver",
    "FileBackend",
    "FrontierEvent",
    "IOStats",
    "Manifest",
    "NodeEvent",
    "PartitionedBackend",
    "PeekableEvents",
    "PersistentIngestor",
    "StorageBackend",
    "StreamMergeError",
    "TaskNotPicklable",
    "WalError",
    "WorkerError",
    "WriteAheadLog",
    "archive_to_stream",
    "atomic_write_text",
    "create_archive",
    "decode_event",
    "detect_backend_kind",
    "detect_codec",
    "encode_event",
    "fsck_archive",
    "get_codec",
    "inject",
    "sniff_codec",
    "key_spec_fingerprint",
    "keys_location",
    "manifest_location",
    "merge_archive_stream",
    "merge_event_streams",
    "open_archive",
    "read_events",
    "read_manifest",
    "restore_key_order",
    "sort_version",
    "write_sorted_runs",
]
