"""``xarch fsck``: scrub an archive's on-disk state, optionally repair.

The scrub works at the *file* level — it never goes through
:func:`~repro.storage.backend.open_archive`, whose constructor would
silently run WAL recovery and hide exactly the states fsck exists to
report.  It walks manifest ↔ payload files ↔ checksum sidecar ↔ WAL
state ↔ key-spec fingerprint and cross-checks ``.presence`` sidecars
against actual chunk contents, emitting one structured
:class:`Finding` per problem.

Repair (``--repair``) follows one rule: **rebuild everything
derivable, quarantine — never delete — everything that is not**.

* WAL state (pending or torn records, stray ``*.tmp``) → run the
  deterministic recovery of :class:`~repro.storage.wal.WriteAheadLog`;
* ``.presence`` sidecars, ``versions.txt``, the manifest and the
  checksum sidecar are all derivable from healthy payloads → rebuilt;
* payload files (chunks, the whole-file archive, the event stream)
  are *not* derivable → a payload that fails its checksum but still
  decodes is re-recorded (stale checksum), one that does not decode is
  moved into ``quarantine/`` and remembered in the sidecar so reads
  raise a typed error instead of serving garbage.

``--deep`` additionally decodes and parses every payload (XML parse
per chunk/file, a full event-stream walk for the external backend), so
corruption that preserves the checksummed bytes-at-rest (a bug, not
bit rot) is still caught.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..core.archive import ArchiveError
from .backend import (
    MANIFEST_NAME,
    Manifest,
    detect_backend_kind,
    key_spec_fingerprint,
    keys_location,
    manifest_location,
)
from .codec import CodecError, get_codec
from .integrity import (
    CHECKSUMS_NAME,
    QUARANTINE_DIR,
    ChecksumSidecar,
    IntegrityError,
    hash_file,
)
from .wal import WalError, WriteAheadLog, atomic_write_text

#: Every finding code fsck can emit, with a one-line meaning.
FINDING_CODES = {
    "wal-pending": "an interrupted commit's WAL record is still present",
    "wal-torn": "the WAL record is torn or corrupt (never a committed intent)",
    "stray-tmp": "a staged *.tmp file no WAL record claims",
    "manifest-missing": "the archive has no manifest",
    "manifest-corrupt": "the manifest fails to parse or self-verify",
    "manifest-inconsistent": "the manifest contradicts the files on disk",
    "key-spec-mismatch": "the keys file does not match the manifest fingerprint",
    "checksums-missing": "payloads exist but no checksum sidecar covers them",
    "checksums-corrupt": "the checksum sidecar fails to parse or self-verify",
    "missing-payload": "a checksummed payload is missing on disk",
    "checksum-mismatch": "a payload's bytes do not match their recorded checksum",
    "truncated-payload": "a payload is shorter than its recorded size",
    "unchecksummed": "a payload exists with no recorded checksum",
    "undecodable": "a payload fails to decode or parse",
    "presence-mismatch": "a .presence sidecar disagrees with its chunk's contents",
    "quarantined": "a payload was previously quarantined by fsck --repair",
}


@dataclass
class Finding:
    """One problem the scrub found (and possibly repaired)."""

    code: str
    path: str
    detail: str
    repaired: bool = False
    repair: str = ""

    def __str__(self) -> str:
        line = f"{self.code}: {self.path} — {self.detail}"
        if self.repaired:
            line += f" [repaired: {self.repair}]"
        elif self.repair:
            line += f" [repairable: {self.repair}]"
        return line


@dataclass
class FsckReport:
    """Everything one scrub pass found."""

    path: str
    kind: str
    findings: list[Finding] = field(default_factory=list)
    repair: bool = False
    deep: bool = False

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def unrepaired(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.repaired]

    def add(self, code: str, path: str, detail: str, repair: str = "") -> Finding:
        finding = Finding(code=code, path=path, detail=detail, repair=repair)
        self.findings.append(finding)
        return finding

    def to_json(self) -> str:
        return json.dumps(
            {
                "path": self.path,
                "kind": self.kind,
                "clean": self.clean,
                "repair": self.repair,
                "deep": self.deep,
                "findings": [
                    {
                        "code": finding.code,
                        "path": finding.path,
                        "detail": finding.detail,
                        "repaired": finding.repaired,
                        "repair": finding.repair,
                    }
                    for finding in self.findings
                ],
            },
            indent=2,
        )

    def __str__(self) -> str:
        lines = [str(finding) for finding in self.findings]
        if self.clean:
            lines.append(f"{self.path}: clean ({self.kind} archive)")
        else:
            repaired = sum(1 for finding in self.findings if finding.repaired)
            summary = f"{self.path}: {len(self.findings)} finding(s)"
            if repaired:
                summary += f", {repaired} repaired"
            lines.append(summary)
        return "\n".join(lines)


def fsck_archive(
    path: "str | os.PathLike",
    *,
    keys_file: "Optional[str | os.PathLike]" = None,
    repair: bool = False,
    deep: bool = False,
) -> FsckReport:
    """Scrub the archive at ``path``; repair derivable damage when asked."""
    path = os.fspath(path)
    if not os.path.exists(path):
        raise ArchiveError(f"No archive at {path!r}")
    try:
        kind = detect_backend_kind(path)
    except IntegrityError:
        # The manifest itself is corrupt — exactly what fsck exists to
        # report.  Fall back to layout sniffing so the scrub can run.
        kind = _sniff_kind(path)
    report = FsckReport(path=path, kind=kind, repair=repair, deep=deep)
    scrubber = _Scrubber(path, kind, report, keys_file=keys_file)
    scrubber.run()
    return report


def _sniff_kind(path: str) -> str:
    """Layout-only kind detection (never trusts the manifest)."""
    if os.path.isfile(path):
        return "file"
    if os.path.exists(os.path.join(path, "archive.jsonl")):
        return "external"
    return "chunked"


class _Scrubber:
    """One scrub pass's working state."""

    def __init__(
        self,
        path: str,
        kind: str,
        report: FsckReport,
        keys_file: "Optional[str | os.PathLike]" = None,
    ) -> None:
        self.path = path
        self.kind = kind
        self.report = report
        self.repair = report.repair
        self.deep = report.deep
        self.keys_file = os.fspath(keys_file) if keys_file is not None else None
        self.directory = path if os.path.isdir(path) else os.path.dirname(path)
        self.is_dir = os.path.isdir(path)
        self.manifest: Optional[Manifest] = None
        self.sidecar: Optional[ChecksumSidecar] = None
        self.codec = None
        #: ``(name, Codec)`` cache behind :meth:`_payload_codec` — the
        #: registry is consulted once per codec name, not once per
        #: payload decoded.
        self._resolved_codec = None
        #: Set when a repair changed the sidecar; it republishes once.
        self._sidecar_dirty = False

    # -- helpers -----------------------------------------------------------

    def _wal_path(self) -> str:
        if self.is_dir:
            return os.path.join(self.path, "wal.json")
        return self.path + ".wal"

    def _payload_codec(self):
        """The resolved :class:`~repro.storage.codec.Codec` for
        ``self.codec``, cached until the name changes (a manifest
        rebuild or sniff mid-run invalidates it)."""
        if self._resolved_codec is None or self._resolved_codec[0] != self.codec:
            self._resolved_codec = (self.codec, get_codec(self.codec))
        return self._resolved_codec[1]

    def _rel(self, full: str) -> str:
        return os.path.relpath(full, self.directory) if self.is_dir else (
            os.path.basename(full)
        )

    def _payload_files(self) -> list[str]:
        """The archive's payload files (absolute paths)."""
        if self.kind == "file":
            return [self.path] if os.path.isfile(self.path) else []
        names = sorted(os.listdir(self.path))
        payloads = []
        for name in names:
            full = os.path.join(self.path, name)
            if not os.path.isfile(full):
                continue
            if self.kind == "chunked" and (
                (name.startswith("chunk-") and name.endswith(".xml"))
                or name.endswith(".presence")
                or name == "versions.txt"
            ):
                payloads.append(full)
            elif self.kind == "external" and name == "archive.jsonl":
                payloads.append(full)
        return payloads

    def _quarantine(self, full: str, finding: Finding) -> None:
        """Move an unrepairable payload aside — never delete it."""
        name = os.path.basename(full)
        if not self.repair:
            finding.repair = "quarantine the payload"
            return
        quarantine = os.path.join(self.directory, QUARANTINE_DIR)
        os.makedirs(quarantine, exist_ok=True)
        target = os.path.join(quarantine, name)
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = os.path.join(quarantine, f"{name}.{suffix}")
        os.replace(full, target)
        if self.sidecar is not None:
            self.sidecar.quarantine(name)
            self._sidecar_dirty = True
        finding.repaired = True
        finding.repair = f"moved to {os.path.relpath(target, self.directory)}"

    def _decodes(self, full: str) -> bool:
        """Whether a payload decodes (and parses) under the codec."""
        name = os.path.basename(full)
        try:
            if name.endswith(".presence"):
                from ..core.versionset import VersionSet

                with open(full, "r", encoding="utf-8") as handle:
                    VersionSet.parse(handle.read())
            elif name == "versions.txt":
                with open(full, "r", encoding="utf-8") as handle:
                    int(handle.read().strip() or "0")
            elif name == "archive.jsonl":
                from .events import IOStats, read_events

                for _ in read_events(full, IOStats(), self.codec):
                    pass
            else:  # chunk files and the whole-file archive: XML payloads
                from ..xmltree.parser import parse_document

                with open(full, "rb") as handle:
                    data = handle.read()
                parse_document(self._payload_codec().decode_document(data))
        except (
            IntegrityError,
            CodecError,
            ValueError,
            OSError,
            UnicodeDecodeError,
            EOFError,
        ):
            return False
        return True

    # -- the pass ----------------------------------------------------------

    def run(self) -> None:
        self._scrub_wal()
        self._load_manifest()
        if self.codec is None:
            # No (usable) manifest: fall back to payload magic bytes so
            # decode checks don't misclassify healthy encoded payloads.
            self.codec = self._sniff_codec()
        self._load_sidecar()
        self._scrub_key_spec()
        self._scrub_payloads()
        if self.kind == "chunked":
            self._scrub_chunked()
        if self.kind == "external":
            self._scrub_external()
        self._flush_sidecar()

    def _scrub_wal(self) -> None:
        wal = WriteAheadLog(self._wal_path())
        torn = False
        record = None
        try:
            record = wal.read_record()
        except WalError as error:
            torn = True
            finding = self.report.add(
                "wal-torn",
                self._rel(wal.path),
                str(error),
                repair="discard the record and roll staged files back",
            )
            if self.repair:
                wal.recover(stray_tmps=self._stray_tmps())
                finding.repaired = True
                finding.repair = "discarded; staged files rolled back"
        if record is not None:
            finding = self.report.add(
                "wal-pending",
                self._rel(wal.path),
                f"interrupted commit of {len(record.get('entries', []))} "
                f"file(s) awaiting recovery",
                repair="run WAL recovery (roll back or forward)",
            )
            if self.repair:
                outcome = wal.recover(stray_tmps=self._stray_tmps())
                finding.repaired = True
                finding.repair = f"recovered ({outcome})"
                # The manifest/sidecar may have just changed on disk.
        if record is None and not torn:
            claimed: set = set()
            for tmp in self._stray_tmps():
                if not os.path.exists(tmp) or tmp in claimed:
                    continue
                finding = self.report.add(
                    "stray-tmp",
                    self._rel(tmp),
                    "staged file with no commit record (crash mid-stage)",
                    repair="remove the unclaimed staging file",
                )
                if self.repair:
                    os.remove(tmp)
                    finding.repaired = True
                    finding.repair = "removed"

    def _stray_tmps(self) -> list[str]:
        if self.is_dir:
            return [
                os.path.join(self.path, name)
                for name in os.listdir(self.path)
                if name.endswith(".tmp")
            ]
        return [
            self.path + ".tmp",
            manifest_location(self.path) + ".tmp",
            self._wal_path() + ".tmp",
        ]

    def _load_manifest(self) -> None:
        location = manifest_location(self.path)
        try:
            with open(location, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            finding = self.report.add(
                "manifest-missing",
                self._rel(location),
                "archive carries no manifest (legacy layout or deleted)",
                repair="rebuild from the archive's files",
            )
            if self.repair:
                self._rebuild_manifest(finding)
            return
        try:
            self.manifest = Manifest.from_json(raw.decode("utf-8"))
        except (ArchiveError, UnicodeDecodeError) as error:
            finding = self.report.add(
                "manifest-corrupt",
                self._rel(location),
                str(error),
                repair="rebuild from the archive's files",
            )
            if self.repair:
                self._rebuild_manifest(finding)
            return
        self.codec = self.manifest.codec
        if self.manifest.kind != self.kind:
            self.report.add(
                "manifest-inconsistent",
                self._rel(location),
                f"manifest says kind {self.manifest.kind!r}, layout is "
                f"{self.kind!r}",
            )

    def _rebuild_manifest(self, finding: Finding) -> None:
        """Best-effort manifest reconstruction from derivable state."""
        codec = self._sniff_codec()
        version_count = self._derive_version_count(codec)
        if version_count is None:
            finding.repair = "unrepairable: version count not derivable"
            return
        spec_hash = ""
        keys_path = self.keys_file or keys_location(self.path)
        if os.path.exists(keys_path):
            from ..keys.keyparser import parse_key_spec

            try:
                with open(keys_path, "r", encoding="utf-8") as handle:
                    spec_hash = key_spec_fingerprint(parse_key_spec(handle.read()))
            except ValueError:
                spec_hash = ""
        extra: dict = {}
        if self.kind == "chunked":
            from .backend import _infer_chunk_count

            extra["chunk_count"] = _infer_chunk_count(self.path)
        manifest = Manifest(
            kind=self.kind,
            key_spec_hash=spec_hash,
            version_count=version_count,
            codec=codec,
            extra=extra,
        )
        text = manifest.to_json()
        atomic_write_text(manifest_location(self.path), text)
        self.manifest = manifest
        self.codec = codec
        if self.sidecar is not None:
            self.sidecar.record(MANIFEST_NAME, text.encode("utf-8"))
            self._sidecar_dirty = True
        else:
            self._sidecar_dirty = True  # flushed after the sidecar loads
        finding.repaired = True
        finding.repair = f"rebuilt ({self.kind}, {version_count} version(s))"

    def _sniff_codec(self) -> str:
        from .backend import _sniff_backend_codec

        try:
            return _sniff_backend_codec(self.path, self.kind).name
        except (OSError, ValueError):
            return "raw"

    def _derive_version_count(self, codec: str) -> Optional[int]:
        try:
            if self.kind == "chunked":
                meta = os.path.join(self.path, "versions.txt")
                with open(meta, "r", encoding="utf-8") as handle:
                    return int(handle.read().strip() or "0")
            if self.kind == "external":
                from .events import IOStats, NodeEvent, read_events

                stream = os.path.join(self.path, "archive.jsonl")
                root = next(iter(read_events(stream, IOStats(), codec)))
                if isinstance(root, NodeEvent) and root.timestamp is not None:
                    return root.timestamp.max_version()
                return None
            # file: parse the archive root's timestamp attribute
            from ..core.archive import Archive
            from ..keys.keyparser import parse_key_spec

            keys_path = self.keys_file or keys_location(self.path)
            with open(keys_path, "r", encoding="utf-8") as handle:
                spec = parse_key_spec(handle.read())
            with open(self.path, "rb") as handle:
                text = get_codec(codec).decode_document(handle.read())
            return Archive.from_xml_string(text, spec).last_version
        except (OSError, ValueError, EOFError, StopIteration):
            return None

    def _load_sidecar(self) -> None:
        if self.kind == "file":
            return  # the whole-file backend records its checksum in the manifest
        location = os.path.join(self.path, CHECKSUMS_NAME)
        try:
            self.sidecar = ChecksumSidecar.load(location)
        except IntegrityError as error:
            finding = self.report.add(
                "checksums-corrupt",
                self._rel(location),
                str(error),
                repair="rebuild from the payloads on disk",
            )
            self.sidecar = ChecksumSidecar(location)
            if self.repair:
                self._rebuild_sidecar(finding)
            return
        if not self.sidecar.present and self._payload_files():
            finding = self.report.add(
                "checksums-missing",
                self._rel(location),
                "payloads exist with no checksum sidecar (pre-integrity "
                "archive)",
                repair="build the sidecar from the payloads on disk",
            )
            if self.repair:
                self._rebuild_sidecar(finding)

    def _rebuild_sidecar(self, finding: Finding) -> None:
        assert self.sidecar is not None
        rebuilt = 0
        for full in self._payload_files():
            if self._decodes(full):
                digest, size = hash_file(full)
                self.sidecar.entries[os.path.basename(full)] = {
                    "sha256": digest,
                    "bytes": size,
                }
                rebuilt += 1
        location = manifest_location(self.path)
        if os.path.exists(location):
            with open(location, "rb") as handle:
                self.sidecar.record(MANIFEST_NAME, handle.read())
        self._sidecar_dirty = True
        finding.repaired = True
        finding.repair = f"rebuilt covering {rebuilt} payload(s)"

    def _scrub_key_spec(self) -> None:
        if self.manifest is None or not self.manifest.key_spec_hash:
            return
        keys_path = self.keys_file or keys_location(self.path)
        if not os.path.exists(keys_path):
            return
        from ..keys.keyparser import parse_key_spec

        try:
            with open(keys_path, "r", encoding="utf-8") as handle:
                fingerprint = key_spec_fingerprint(parse_key_spec(handle.read()))
        except ValueError as error:
            self.report.add(
                "key-spec-mismatch",
                self._rel(keys_path),
                f"keys file does not parse: {error}",
            )
            return
        if fingerprint != self.manifest.key_spec_hash:
            self.report.add(
                "key-spec-mismatch",
                self._rel(keys_path),
                "keys file fingerprint differs from the manifest's "
                "(wrong or edited keys file)",
            )

    def _scrub_payloads(self) -> None:
        """Hash every payload against its recorded checksum."""
        on_disk = {os.path.basename(full): full for full in self._payload_files()}
        entries: dict[str, dict] = {}
        if self.kind == "file":
            if self.manifest is not None and self.manifest.extra.get("payload"):
                entries = {
                    os.path.basename(self.path): self.manifest.extra["payload"]
                }
        elif self.sidecar is not None:
            entries = {
                name: entry
                for name, entry in self.sidecar.entries.items()
                if name != MANIFEST_NAME
            }
            for name in sorted(self.sidecar.quarantined):
                self.report.add(
                    "quarantined",
                    name,
                    "payload was moved aside by an earlier fsck --repair",
                )
            self._scrub_manifest_entry()
        for name in sorted(set(entries) | set(on_disk)):
            full = on_disk.get(name)
            expected = entries.get(name)
            if expected is None:
                if self.sidecar is not None and self.sidecar.present:
                    self.report.add(
                        "unchecksummed",
                        name,
                        "payload has no recorded checksum",
                        repair="record its checksum (after verifying it decodes)",
                    )
                    if self.repair:
                        finding = self.report.findings[-1]
                        if self._decodes(full):
                            digest, size = hash_file(full)
                            self.sidecar.entries[name] = {
                                "sha256": digest,
                                "bytes": size,
                            }
                            self._sidecar_dirty = True
                            finding.repaired = True
                            finding.repair = "checksum recorded"
                        else:
                            self._quarantine(full, finding)
                continue
            if full is None:
                finding = self.report.add(
                    "missing-payload",
                    name,
                    "recorded in the checksum sidecar but missing on disk "
                    "(deleted or lost)",
                    repair="forget the entry (the data itself is unrecoverable)",
                )
                if self.repair and self.sidecar is not None:
                    self.sidecar.forget(name)
                    self._sidecar_dirty = True
                    finding.repaired = True
                    finding.repair = "entry forgotten; payload remains lost"
                continue
            digest, size = hash_file(full)
            if digest == expected.get("sha256"):
                if self.deep and not self._decodes(full):
                    finding = self.report.add(
                        "undecodable",
                        name,
                        "checksum matches but the payload does not decode "
                        "(written corrupt)",
                    )
                    self._quarantine(full, finding)
                continue
            recorded_size = expected.get("bytes")
            if isinstance(recorded_size, int) and size < recorded_size:
                code, detail = (
                    "truncated-payload",
                    f"{size} of {recorded_size} recorded bytes on disk",
                )
            else:
                code, detail = (
                    "checksum-mismatch",
                    f"sha256 {digest[:12]}… differs from recorded "
                    f"{str(expected.get('sha256'))[:12]}…",
                )
            finding = self.report.add(
                code,
                name,
                detail,
                repair="re-record if it decodes, quarantine otherwise",
            )
            if not self.repair:
                continue
            if name.endswith(".presence"):
                continue  # derivable: rebuilt by the chunked cross-check
            if self._decodes(full):
                self._record_checksum(name, full)
                finding.repaired = True
                finding.repair = "payload decodes; checksum re-recorded"
            else:
                self._quarantine(full, finding)

    def _scrub_manifest_entry(self) -> None:
        """The sidecar's record of the manifest itself."""
        assert self.sidecar is not None
        expected = self.sidecar.entry(MANIFEST_NAME)
        if expected is None:
            return
        location = manifest_location(self.path)
        if not os.path.exists(location):
            # A bare missing manifest was already reported by the load.
            if not any(
                finding.code == "manifest-missing"
                for finding in self.report.findings
            ):
                finding = self.report.add(
                    "missing-payload",
                    MANIFEST_NAME,
                    "recorded in the checksum sidecar but missing on disk",
                    repair="rebuild the manifest",
                )
                if self.repair:
                    self._rebuild_manifest(finding)
            return
        digest, _size = hash_file(location)
        if digest != expected.get("sha256"):
            finding = self.report.add(
                "checksum-mismatch",
                MANIFEST_NAME,
                "manifest bytes differ from the sidecar's record",
                repair="re-record if it parses, rebuild otherwise",
            )
            if not self.repair:
                return
            if self.manifest is not None:
                with open(location, "rb") as handle:
                    self.sidecar.record(MANIFEST_NAME, handle.read())
                self._sidecar_dirty = True
                finding.repaired = True
                finding.repair = "manifest parses; checksum re-recorded"
            else:
                self._rebuild_manifest(finding)

    def _record_checksum(self, name: str, full: str) -> None:
        digest, size = hash_file(full)
        if self.kind == "file":
            if self.manifest is not None:
                self.manifest.extra["payload"] = {"sha256": digest, "bytes": size}
                text = self.manifest.to_json()
                atomic_write_text(manifest_location(self.path), text)
        elif self.sidecar is not None:
            self.sidecar.entries[name] = {"sha256": digest, "bytes": size}
            self.sidecar.quarantined.discard(name)
            self._sidecar_dirty = True

    # -- backend-specific cross-checks -------------------------------------

    def _scrub_chunked(self) -> None:
        """Cross-check ``.presence`` sidecars against chunk contents."""
        from ..core.archive import Archive
        from ..core.versionset import VersionSet
        from .chunked import _chunk_presence_of

        spec = self._load_spec()
        for name in sorted(os.listdir(self.path)):
            if not (name.startswith("chunk-") and name.endswith(".xml")):
                continue
            full = os.path.join(self.path, name)
            presence_path = full[: -len(".xml")] + ".presence"
            try:
                with open(full, "rb") as handle:
                    text = self._payload_codec().decode_document(handle.read())
                derived = (
                    _chunk_presence_of(Archive.from_xml_string(text, spec))
                    if spec is not None
                    else None
                )
            except (CodecError, ValueError, OSError, EOFError):
                continue  # undecodable chunks were handled by the hash pass
            if derived is None:
                continue
            recorded: Optional[VersionSet] = None
            try:
                with open(presence_path, "r", encoding="utf-8") as handle:
                    recorded = VersionSet.parse(handle.read())
            except FileNotFoundError:
                finding = self.report.add(
                    "presence-mismatch",
                    self._rel(presence_path),
                    "presence sidecar missing for a stored chunk",
                    repair="rebuild from the chunk's contents",
                )
                self._rebuild_presence(presence_path, derived, finding)
                continue
            except ValueError:
                recorded = None
            if recorded is None or recorded.to_text() != derived.to_text():
                have = recorded.to_text() if recorded is not None else "unparsable"
                finding = self.report.add(
                    "presence-mismatch",
                    self._rel(presence_path),
                    f"sidecar says {have!r}, chunk contents say "
                    f"{derived.to_text()!r}",
                    repair="rebuild from the chunk's contents",
                )
                self._rebuild_presence(presence_path, derived, finding)

    def _rebuild_presence(self, presence_path, derived, finding) -> None:
        if not self.repair:
            return
        atomic_write_text(presence_path, derived.to_text())
        name = os.path.basename(presence_path)
        if self.sidecar is not None:
            with open(presence_path, "rb") as handle:
                self.sidecar.record(name, handle.read())
            self._sidecar_dirty = True
        finding.repaired = True
        finding.repair = "rebuilt from the chunk's contents"
        # The hash pass deferred this file to us; close its finding too.
        for earlier in self.report.findings:
            if earlier.path == name and not earlier.repaired:
                earlier.repaired = True
                earlier.repair = "rebuilt from the chunk's contents"

    def _load_spec(self):
        from ..keys.keyparser import parse_key_spec

        keys_path = self.keys_file or keys_location(self.path)
        try:
            with open(keys_path, "r", encoding="utf-8") as handle:
                return parse_key_spec(handle.read())
        except (OSError, ValueError):
            return None

    def _scrub_external(self) -> None:
        """Deep-walk the event stream so structural damage is caught."""
        if not self.deep:
            return
        stream = os.path.join(self.path, "archive.jsonl")
        if not os.path.exists(stream):
            return
        from .events import IOStats, read_events

        try:
            for _ in read_events(stream, IOStats(), self.codec):
                pass
        except IntegrityError as error:
            self.report.add(
                "undecodable", self._rel(stream), str(error),
                repair="quarantine the stream",
            )

    def _flush_sidecar(self) -> None:
        if self.sidecar is not None and self._sidecar_dirty and self.repair:
            atomic_write_text(self.sidecar.path, self.sidecar.to_json())
            self.sidecar.present = True


#: Callable other modules may monkeypatch in tests.
FsckRunner = Callable[..., FsckReport]
