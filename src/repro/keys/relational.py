"""Keys from relational schemas (Sec. 3 / Sec. 8).

"For documents that are standard and consistent representations of
relations in XML, the set of keys can be automatically generated from
the relational schema."  This module implements that generation plus
the standard representation itself, so relational data can be archived
directly — the paper's Sec. 8 point that a keyed archive beats a
temporal relational database on storage ("only the new attribute value
together with its timestamp need to be added").

The representation::

    <db>
      <employee>             <!-- one element per row, tag = table -->
        <emp_id>7</emp_id>   <!-- one child per column -->
        <name>Jane</name>
      </employee>
      ...
    </db>

The generated keys: rows are identified by their primary-key columns;
each non-key column is a singleton child (the weak-entity analogy the
paper draws in Appendix A.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..xmltree.model import Element, Text
from .spec import Key, KeySpec, KeySpecError


@dataclass(frozen=True)
class Table:
    """One relation: name, columns, and the primary-key columns."""

    name: str
    columns: tuple[str, ...]
    primary_key: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.columns:
            raise KeySpecError(f"Table {self.name!r} has no columns")
        missing = [c for c in self.primary_key if c not in self.columns]
        if missing:
            raise KeySpecError(
                f"Primary-key columns {missing} not in table {self.name!r}"
            )
        if not self.primary_key:
            raise KeySpecError(f"Table {self.name!r} needs a primary key")


@dataclass
class RelationalSchema:
    """A set of tables sharing one XML document root."""

    tables: list[Table]
    root: str = "db"

    def __post_init__(self) -> None:
        names = [table.name for table in self.tables]
        if len(set(names)) != len(names):
            raise KeySpecError("Duplicate table names in schema")


def keys_for_schema(schema: RelationalSchema) -> KeySpec:
    """Generate the relative keys of the standard XML representation."""
    keys: list[Key] = [Key(context=(), target=(schema.root,), key_paths=())]
    for table in schema.tables:
        keys.append(
            Key(
                context=(schema.root,),
                target=(table.name,),
                key_paths=tuple((column,) for column in sorted(table.primary_key)),
            )
        )
        for column in table.columns:
            if column in table.primary_key:
                continue  # implied keys cover primary-key columns
            keys.append(
                Key(
                    context=(schema.root, table.name),
                    target=(column,),
                    key_paths=(),
                )
            )
    return KeySpec(explicit_keys=keys)


Row = Mapping[str, object]


def rows_to_document(
    schema: RelationalSchema, data: Mapping[str, Iterable[Row]]
) -> Element:
    """Render table rows into the standard XML representation.

    ``data`` maps table names to iterables of row mappings.  ``None``
    column values are omitted (SQL NULL → absent optional element);
    everything else is stringified.
    """
    known = {table.name: table for table in schema.tables}
    unknown = set(data) - set(known)
    if unknown:
        raise KeySpecError(f"Data for unknown tables: {sorted(unknown)}")
    document = Element(schema.root)
    for table in schema.tables:
        for row in data.get(table.name, ()):  # preserve caller's row order
            extra = set(row) - set(table.columns)
            if extra:
                raise KeySpecError(
                    f"Row for {table.name!r} has unknown columns {sorted(extra)}"
                )
            missing_key = [c for c in table.primary_key if row.get(c) is None]
            if missing_key:
                raise KeySpecError(
                    f"Row for {table.name!r} lacks primary-key values "
                    f"{missing_key}"
                )
            row_element = document.append(Element(table.name))
            for column in table.columns:
                value = row.get(column)
                if value is None:
                    continue
                cell = row_element.append(Element(column))
                cell.append(Text(str(value)))
    return document


@dataclass
class RelationalArchiver:
    """Convenience wrapper: archive successive snapshots of a relational
    database, getting element-level temporal history per row and cell.

    Compare with a temporal relational database (Sec. 8): there, any
    cell update copies the whole tuple with a new timestamp; here only
    the changed cell gains a new timestamped value.
    """

    schema: RelationalSchema
    options: object = None

    def __post_init__(self) -> None:
        from ..core.archive import Archive, ArchiveOptions

        options = self.options if self.options is not None else ArchiveOptions()
        self.spec = keys_for_schema(self.schema)
        self.archive = Archive(self.spec, options)

    def add_snapshot(self, data: Mapping[str, Iterable[Row]]):
        """Archive one database state."""
        return self.archive.add_version(rows_to_document(self.schema, data))

    def row_history(self, table: str, **key_values):
        """Temporal history of one row, identified by its primary key."""
        table_def = next(t for t in self.schema.tables if t.name == table)
        predicate = ", ".join(
            f"{column}={key_values[column]}" for column in sorted(table_def.primary_key)
        )
        return self.archive.history(f"/{self.schema.root}/{table}[{predicate}]")

    def cell_history(self, table: str, column: str, **key_values):
        """Temporal history of one cell (row + column)."""
        table_def = next(t for t in self.schema.tables if t.name == table)
        predicate = ", ".join(
            f"{c}={key_values[c]}" for c in sorted(table_def.primary_key)
        )
        return self.archive.history(
            f"/{self.schema.root}/{table}[{predicate}]/{column}"
        )
