"""Keys for hierarchical data (Sec. 3, Appendix A-B).

Path expressions, relative keys ``(Q, (Q', {P1..Pk}))``, the textual
key-spec syntax of Appendix B, the Annotate Keys algorithm (Sec. 4.1)
and full key-satisfaction checking.
"""

from .annotate import (
    AnnotatedDocument,
    KeyCoverageError,
    KeyLabel,
    KeyValue,
    KeyViolationError,
    annotate_keys,
    compute_key_value,
    iter_keyed_nodes,
)
from .keyparser import parse_key_line, parse_key_spec
from .mining import MiningReport, mine_keys
from .relational import (
    RelationalArchiver,
    RelationalSchema,
    Table,
    keys_for_schema,
    rows_to_document,
)
from .paths import (
    EMPTY_PATH,
    Path,
    concat,
    format_path,
    is_proper_prefix,
    navigate,
    parse_path,
    value_at,
)
from .spec import Key, KeySpec, KeySpecError, empty_spec, key
from .validate import Violation, check_document, check_key, satisfies

__all__ = [
    "EMPTY_PATH",
    "AnnotatedDocument",
    "Key",
    "KeyCoverageError",
    "KeyLabel",
    "KeySpec",
    "KeySpecError",
    "KeyValue",
    "KeyViolationError",
    "Path",
    "Violation",
    "annotate_keys",
    "check_document",
    "check_key",
    "compute_key_value",
    "concat",
    "empty_spec",
    "format_path",
    "is_proper_prefix",
    "iter_keyed_nodes",
    "key",
    "MiningReport",
    "RelationalArchiver",
    "RelationalSchema",
    "Table",
    "keys_for_schema",
    "rows_to_document",
    "mine_keys",
    "navigate",
    "parse_key_line",
    "parse_key_spec",
    "parse_path",
    "satisfies",
    "value_at",
]
