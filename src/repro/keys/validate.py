"""Full key-satisfaction check (Appendix A.4-A.5 definitions).

:func:`annotate_keys` already enforces everything Nested Merge needs.
This module provides the declarative check — "document D satisfies key
specification K" — reporting *all* violations rather than failing fast,
which is what a data curator wants when designing a key structure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..xmltree.model import Element
from .paths import Path, format_path, navigate
from .spec import Key, KeySpec
from .annotate import KeyValue, compute_key_value, KeyViolationError


@dataclass(frozen=True)
class Violation:
    """One way in which a document fails a key."""

    key: Key
    message: str

    def __str__(self) -> str:
        return f"{self.key}: {self.message}"


def _context_nodes(root: Element, context: Path) -> list[Element]:
    """Nodes reached from the document root via the context path.

    The first step of an absolute context names the root element itself.
    """
    if not context:
        return [root]  # the virtual node above the document root
    if context[0] != root.tag:
        return []
    nodes = [root]
    for step in context[1:]:
        nodes = [child for node in nodes for child in node.find_all(step)]
    return nodes


def _target_nodes(context_node: Element, target: Path) -> list[Element]:
    nodes = [context_node]
    for step in target:
        next_nodes: list[Element] = []
        for node in nodes:
            next_nodes.extend(node.find_all(step))
        nodes = next_nodes
    return nodes


def check_key(root: Element, key: Key) -> list[Violation]:
    """All violations of one relative key in the document."""
    violations: list[Violation] = []
    for context_node in _context_nodes(root, key.context):
        targets = _target_nodes(context_node, key.target)
        seen: dict[KeyValue, Element] = {}
        for target in targets:
            try:
                value = compute_key_value(target, key)
            except KeyViolationError as err:
                violations.append(Violation(key=key, message=str(err)))
                continue
            if value in seen and seen[value] is not target:
                violations.append(
                    Violation(
                        key=key,
                        message=(
                            f"two <{target.tag}> nodes share the key value "
                            f"{dict(value) if value else '(empty key)'} under "
                            f"context {format_path(key.context)}"
                        ),
                    )
                )
            else:
                seen[value] = target
        if not key.key_paths and len(targets) > 1:
            violations.append(
                Violation(
                    key=key,
                    message=(
                        f"{len(targets)} <{format_path(key.target, absolute=False)}>"
                        f" nodes under one context node, but the empty key"
                        f" allows at most one"
                    ),
                )
            )
    return violations


def check_document(root: Element, spec: KeySpec) -> list[Violation]:
    """All violations of every key in the specification."""
    violations: list[Violation] = []
    for key in spec:
        violations.extend(check_key(root, key))
    return violations


def satisfies(root: Element, spec: KeySpec) -> bool:
    """``True`` when the document satisfies every key in the spec."""
    return not check_document(root, spec)


# Re-export navigate for API symmetry with the paper's n[[P]] notation.
__all__ = [
    "Violation",
    "check_key",
    "check_document",
    "navigate",
    "satisfies",
]
