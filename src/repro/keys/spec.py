"""Keys and relative keys for hierarchical data (Sec. 3, Appendix A.4-A.5).

A relative key is ``(Q, (Q', {P1, ..., Pk}))``: from each node in the
*context* ``Q``, the *target* path ``Q'`` identifies a set of nodes that
must each have exactly one value at every *key path* ``Pi``, and be
uniquely identified among their target set by those values.

The :class:`KeySpec` closes the user-supplied keys under the paper's
implication rule — "whenever a key ``(Q, (Q', {P1..Pk}))`` exists, the
keys ``(Q/Q', (Pi, {}))`` are implied" — computes the *frontier paths*
(keyed paths that are not proper prefixes of other keyed paths), and
verifies the paper's structural assumptions on the key structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .paths import (
    EMPTY_PATH,
    Path,
    concat,
    format_path,
    is_proper_prefix,
    parse_path,
)


class KeySpecError(ValueError):
    """Raised when a key specification violates the paper's assumptions."""


@dataclass(frozen=True)
class Key:
    """One relative key ``(context, (target, {key_paths}))``."""

    context: Path
    target: Path
    key_paths: tuple[Path, ...] = ()

    def __post_init__(self) -> None:
        if not self.target:
            raise KeySpecError("Key target path must be non-empty")
        seen: set[Path] = set()
        for path in self.key_paths:
            if path in seen:
                raise KeySpecError(
                    f"Duplicate key path {format_path(path, absolute=False)!r}"
                )
            seen.add(path)

    @property
    def absolute_target(self) -> Path:
        """``Q/Q'`` — the full root-to-target path (``CS_i`` in Sec. 4.1)."""
        return concat(self.context, self.target)

    def __str__(self) -> str:
        paths = ", ".join(format_path(p, absolute=False) for p in self.key_paths)
        return (
            f"({format_path(self.context)}, "
            f"({format_path(self.target, absolute=False)}, {{{paths}}}))"
        )


def key(context: str, target: str, key_paths: tuple[str, ...] | list[str] = ()) -> Key:
    """Convenience constructor from path strings."""
    return Key(
        context=parse_path(context),
        target=parse_path(target),
        key_paths=tuple(parse_path(p) for p in key_paths),
    )


@dataclass
class KeySpec:
    """A closed set of relative keys plus derived structure.

    Construction closes the explicit keys under the implied-key rule,
    indexes keys by absolute target path, computes frontier paths, and
    checks the three structural assumptions of Sec. 3:

    1. *insertion-friendly*: every key's context is itself a keyed path
       (or the root), so correspondences resolve top-down;
    2. coverage cannot be checked without a document — it is enforced
       during annotation (:mod:`repro.keys.annotate`);
    3. no keyed node beneath a key path.
    """

    explicit_keys: list[Key]
    keys_by_path: dict[Path, Key] = field(init=False, repr=False)
    frontier_paths: frozenset[Path] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        closed: dict[Path, Key] = {}
        for user_key in self.explicit_keys:
            self._add(closed, user_key)
        for user_key in list(self.explicit_keys):
            for key_path in user_key.key_paths:
                if key_path == EMPTY_PATH:
                    continue
                implied = Key(
                    context=user_key.absolute_target,
                    target=key_path,
                    key_paths=(),
                )
                if implied.absolute_target not in closed:
                    self._add(closed, implied)
        self.keys_by_path = closed
        all_paths = set(closed)
        self.frontier_paths = frozenset(
            path
            for path in all_paths
            if not any(is_proper_prefix(path, other) for other in all_paths)
        )
        self._check_insertion_friendly()
        self._check_no_keys_beneath_key_paths()

    @staticmethod
    def _add(closed: dict[Path, Key], new_key: Key) -> None:
        path = new_key.absolute_target
        if path in closed:
            raise KeySpecError(
                f"Two keys share the target path {format_path(path)!r}"
            )
        closed[path] = new_key

    def _check_insertion_friendly(self) -> None:
        for k in self.keys_by_path.values():
            if k.context == EMPTY_PATH:
                continue
            if k.context not in self.keys_by_path:
                raise KeySpecError(
                    f"Key {k} is not insertion-friendly: its context "
                    f"{format_path(k.context)!r} is not itself a keyed path"
                )

    def _check_no_keys_beneath_key_paths(self) -> None:
        # Assumption 3: for keys K1 with non-empty key path Pi, no keyed
        # path may lie strictly beneath K1's target extended by Pi.
        for k in self.explicit_keys:
            for key_path in k.key_paths:
                if key_path == EMPTY_PATH:
                    continue
                beneath = concat(k.absolute_target, key_path)
                for other_path in self.keys_by_path:
                    if is_proper_prefix(beneath, other_path):
                        raise KeySpecError(
                            f"Keyed path {format_path(other_path)!r} lies "
                            f"beneath the key path "
                            f"{format_path(beneath)!r} of key {k}"
                        )

    # -- queries -------------------------------------------------------------

    def key_for(self, path: Path) -> Key | None:
        """The key whose absolute target equals ``path``, if any."""
        return self.keys_by_path.get(path)

    def is_keyed_path(self, path: Path) -> bool:
        return path in self.keys_by_path

    def is_frontier_path(self, path: Path) -> bool:
        return path in self.frontier_paths

    def max_keyed_depth(self) -> int:
        """Length of the longest keyed path (0 for an empty spec)."""
        if not self.keys_by_path:
            return 0
        return max(len(path) for path in self.keys_by_path)

    def __len__(self) -> int:
        return len(self.keys_by_path)

    def __iter__(self):
        return iter(self.keys_by_path.values())

    def __str__(self) -> str:
        return "\n".join(str(k) for k in self.keys_by_path.values())


def empty_spec() -> KeySpec:
    """A key specification with no keys.

    Archiving under an empty spec degenerates to the SCCS approach
    (paper Sec. 2, first caveat): the document root acts as one frontier
    and all content is merged by diff.
    """
    return KeySpec(explicit_keys=[])
