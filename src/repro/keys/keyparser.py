"""Parser for the textual key syntax used in the paper's Appendix B.

Accepts lines such as::

    (/, (ROOT, {}))
    (/ROOT/Record, (Contributors, {Name, CNtype, Date/Month, Date/Day, Date/Year}))
    (/ROOT/Record, (AlternativeTitle, {\\e}))
    (/db/dept/emp, (tel, {.}))

``\\e`` and ``.`` both denote the empty key path ("keyed by its own
contents").  Lines that are blank or start with ``#`` are skipped.

Appendix B.3 abbreviates the six region names with ``_``
(``/site/regions/_``); :func:`parse_key_spec` accepts a ``wildcards``
mapping that expands each ``_`` step into one key per substitution.
"""

from __future__ import annotations

from .paths import parse_path
from .spec import Key, KeySpec, KeySpecError


def parse_key_line(line: str) -> Key:
    """Parse one ``(Q, (Q', {P1, ..., Pk}))`` line into a :class:`Key`."""
    text = line.strip()
    if not (text.startswith("(") and text.endswith(")")):
        raise KeySpecError(f"Key must be parenthesised: {line!r}")
    body = text[1:-1].strip()
    comma = body.find(",")
    if comma == -1:
        raise KeySpecError(f"Missing context/target separator in {line!r}")
    context_text = body[:comma].strip()
    rest = body[comma + 1 :].strip()
    if not (rest.startswith("(") and rest.endswith(")")):
        raise KeySpecError(f"Malformed target clause in {line!r}")
    inner = rest[1:-1].strip()
    brace_open = inner.find("{")
    brace_close = inner.rfind("}")
    if brace_open == -1 or brace_close == -1 or brace_close < brace_open:
        raise KeySpecError(f"Malformed key-path set in {line!r}")
    target_text = inner[:brace_open].strip().rstrip(",").strip()
    paths_text = inner[brace_open + 1 : brace_close].strip()
    key_paths: tuple = ()
    if paths_text:
        key_paths = tuple(
            parse_path(part.strip()) for part in paths_text.split(",") if part.strip()
        )
    return Key(
        context=parse_path(context_text),
        target=parse_path(target_text),
        key_paths=key_paths,
    )


def _expand_wildcards(key: Key, wildcards: dict[str, list[str]]) -> list[Key]:
    expanded = [key]
    for marker, substitutions in wildcards.items():
        next_round: list[Key] = []
        for candidate in expanded:
            positions = [i for i, step in enumerate(candidate.context) if step == marker]
            target_positions = [
                i for i, step in enumerate(candidate.target) if step == marker
            ]
            if not positions and not target_positions:
                next_round.append(candidate)
                continue
            for substitution in substitutions:
                context = tuple(
                    substitution if step == marker else step
                    for step in candidate.context
                )
                target = tuple(
                    substitution if step == marker else step
                    for step in candidate.target
                )
                next_round.append(
                    Key(context=context, target=target, key_paths=candidate.key_paths)
                )
        expanded = next_round
    return expanded


def parse_key_spec(
    source: str, wildcards: dict[str, list[str]] | None = None
) -> KeySpec:
    """Parse a multi-line key specification into a :class:`KeySpec`."""
    keys: list[Key] = []
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parsed = parse_key_line(stripped)
        if wildcards:
            keys.extend(_expand_wildcards(parsed, wildcards))
        else:
            keys.append(parsed)
    return KeySpec(explicit_keys=keys)
