"""Path expressions (Appendix A.2).

A path is a sequence of node names (tag or attribute names) joined with
``/``.  The empty path — written ``.`` or ``\\e`` in the paper's appendix —
denotes the node itself (its own value).  Attribute steps match A-nodes
as well as E-nodes, since the paper's path language ranges over both
("a sequence of node names — tag or attribute names").
"""

from __future__ import annotations

from typing import Union

from ..xmltree.canonical import canonical_form_of_children
from ..xmltree.model import Attribute, Element

Path = tuple[str, ...]

EMPTY_PATH: Path = ()

_EMPTY_SPELLINGS = {"", ".", "\\e"}


def parse_path(text: str) -> Path:
    """Parse a path expression string into a :data:`Path` tuple.

    ``'/db/dept'`` and ``'db/dept'`` both parse to ``('db', 'dept')``; a
    leading ``/`` simply anchors at the context node, which the tuple form
    already implies.  ``'.'``, ``'\\e'`` and ``''`` parse to the empty path.
    """
    text = text.strip()
    if text in _EMPTY_SPELLINGS or text == "/":
        return EMPTY_PATH
    steps = tuple(step for step in text.split("/") if step)
    if not steps:
        return EMPTY_PATH
    for step in steps:
        if step in _EMPTY_SPELLINGS:
            raise ValueError(f"Empty step inside path {text!r}")
    return steps


def format_path(path: Path, absolute: bool = True) -> str:
    """Render a path tuple back to its string form."""
    if not path:
        return "."
    body = "/".join(path)
    return f"/{body}" if absolute else body


def concat(prefix: Path, suffix: Path) -> Path:
    """Concatenate two paths (``P/Q`` in the paper)."""
    return prefix + suffix


def is_proper_prefix(short: Path, long: Path) -> bool:
    """``True`` when ``short`` is a proper prefix of ``long``."""
    return len(short) < len(long) and long[: len(short)] == short


PathTarget = Union[Element, Attribute]


def navigate(node: Element, path: Path) -> list[PathTarget]:
    """Return the nodes reachable from ``node`` via ``path``.

    A step first matches E-children by tag; if the final step matches no
    element, it may match an attribute of the current node (attribute
    names and tag names share the namespace in the paper's model).
    The empty path yields ``[node]``.
    """
    current: list[PathTarget] = [node]
    for step in path:
        next_nodes: list[PathTarget] = []
        for item in current:
            if not isinstance(item, Element):
                # A-nodes are leaves; nothing lies beneath them.
                continue
            matched = item.find_all(step)
            if matched:
                next_nodes.extend(matched)
            else:
                attr_value = item.get_attribute(step)
                if attr_value is not None:
                    next_nodes.append(Attribute(step, attr_value))
        current = next_nodes
    return current


def value_at(target: PathTarget) -> str:
    """Canonical string of the XML value rooted *under* a path target.

    For an attribute it is the attribute's string value.  For an element
    it is the canonical form of its content, prefixed with the element's
    own attributes when it has any: the paper's node value includes the
    A-children, and some key paths (XMark's ``seller``/``buyer``) are
    distinguished *only* by their attributes.  Attribute-free elements
    keep the friendly form — ``<fn>John</fn>`` keys on ``John``.
    """
    if isinstance(target, Attribute):
        return target.value
    attr_part = "".join(
        f'@{attr.name}="{attr.value}"'
        for attr in sorted(target.attributes, key=lambda a: a.name)
    )
    return attr_part + canonical_form_of_children(target)
