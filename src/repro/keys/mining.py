"""Key inference from version data (Sec. 9, open issues).

"Our archiver assumes the keys for the data are provided by experts of
the database.  A natural question is whether the keys can be
automatically derived, through data analysis or mining methodologies on
various versions."  This module answers it for the paper's key class:
given one or more versions of a document, it proposes a relative key
specification that every supplied version satisfies.

The search is top-down, mirroring the insertion-friendly structure the
archiver requires.  For each keyed path and each child tag beneath it:

1. if every parent instance in every version has at most one such
   child, propose the *singleton* key ``(parent, (tag, {}))``;
2. otherwise try each candidate key-path set, smallest first: single
   child paths and attributes that exist exactly once everywhere, then
   pairs, then the content key ``{.}``;
3. if nothing distinguishes the siblings, the parent becomes a
   frontier (its subtree stays unkeyed) — exactly the archiver's
   fallback behaviour for unkeyed data.

Candidate key paths are ranked *stable-first* when multiple versions
are supplied: a path whose value changed on an otherwise-matching
element (matched via an already-accepted candidate) is a poor key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from ..xmltree.model import Element
from .paths import Path, navigate, value_at
from .spec import Key, KeySpec


@dataclass
class MiningReport:
    """The inferred spec plus notes about paths left unkeyed."""

    spec: KeySpec
    unkeyed_paths: list[Path] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)


def _group_instances(
    versions: list[Element], path: Path
) -> list[list[Element]]:
    """Sibling groups at ``path``: one list per parent instance."""
    groups: list[list[Element]] = []
    for root in versions:
        if not path:
            raise ValueError("Path must be non-empty")
        if root.tag != path[0]:
            continue
        parents = [root]
        for step in path[1:-1]:
            parents = [c for p in parents for c in p.find_all(step)]
        for parent in parents:
            groups.append(parent.find_all(path[-1]))
    return groups


def _candidate_paths(instances: list[Element]) -> list[Path]:
    """Child paths/attributes that exist exactly once in EVERY instance."""
    if not instances:
        return []
    candidates: set[Path] = None  # type: ignore[assignment]
    for node in instances:
        here: set[Path] = set()
        tags = {}
        for child in node.element_children():
            tags[child.tag] = tags.get(child.tag, 0) + 1
        for tag, count in tags.items():
            if count == 1:
                here.add((tag,))
        for attr in node.attributes:
            if not any(c.tag == attr.name for c in node.element_children()):
                here.add((attr.name,))
        candidates = here if candidates is None else candidates & here
    return sorted(candidates or set())


def _values_unique(groups: list[list[Element]], key_paths: tuple[Path, ...]) -> bool:
    """Do the key paths distinguish siblings within every group?"""
    for group in groups:
        seen = set()
        for node in group:
            parts = []
            for key_path in key_paths:
                targets = navigate(node, key_path)
                if len(targets) != 1:
                    return False
                parts.append(value_at(targets[0]))
            signature = tuple(parts)
            if signature in seen:
                return False
            seen.add(signature)
    return True


def _content_unique(groups: list[list[Element]]) -> bool:
    for group in groups:
        seen = set()
        for node in group:
            signature = value_at(node)
            if signature in seen:
                return False
            seen.add(signature)
    return True


def _stability_rank(
    versions: list[Element], path: Path, candidate: Path
) -> int:
    """Lower is better: number of distinct values the candidate takes
    across versions at fixed positions — a crude churn proxy.  With a
    single version every candidate ranks equally."""
    if len(versions) < 2:
        return 0
    value_sets: dict[int, set[str]] = {}
    for root in versions:
        for position, group in enumerate(_group_instances([root], path)):
            for index, node in enumerate(group):
                targets = navigate(node, candidate)
                if len(targets) == 1:
                    value_sets.setdefault(position * 10_000 + index, set()).add(
                        value_at(targets[0])
                    )
    return sum(len(values) - 1 for values in value_sets.values())


def mine_keys(
    versions: list[Element],
    max_composite: int = 2,
    max_depth: int = 12,
) -> MiningReport:
    """Infer a relative key specification from document versions.

    ``max_composite`` bounds the size of composite keys tried (the
    paper's experimental keys use at most 5 components; 2 suffices for
    most of them); ``max_depth`` bounds the keyed depth.
    """
    if not versions:
        raise ValueError("Need at least one version to mine keys from")
    root_tags = {root.tag for root in versions}
    if len(root_tags) != 1:
        raise ValueError(f"Versions have different root tags: {root_tags}")
    (root_tag,) = root_tags

    keys: list[Key] = [Key(context=(), target=(root_tag,), key_paths=())]
    unkeyed: list[Path] = []
    notes: list[str] = []
    # Paths that are key-path values of an accepted key: never keyed below.
    blocked: set[Path] = set()

    queue: list[Path] = [(root_tag,)]
    while queue:
        parent_path = queue.pop(0)
        if len(parent_path) >= max_depth:
            continue
        if len(parent_path) > 1:
            parent_nodes = [
                node
                for group in _group_instances(versions, parent_path)
                for node in group
            ]
        else:
            parent_nodes = [root for root in versions if root.tag == parent_path[0]]
        child_tags = sorted(
            {
                child.tag
                for node in parent_nodes
                for child in node.element_children()
            }
        )
        for tag in child_tags:
            target_path = parent_path + (tag,)
            if any(
                target_path[: len(b)] == b and len(target_path) > len(b)
                for b in blocked
            ):
                continue
            groups = _group_instances(versions, target_path)
            instances = [node for group in groups for node in group]
            if not instances:
                continue
            if all(len(group) <= 1 for group in groups):
                keys.append(Key(context=parent_path, target=(tag,), key_paths=()))
                queue.append(target_path)
                continue
            found = _find_key(
                versions, target_path, groups, instances, max_composite
            )
            if found is None:
                if _content_unique(groups):
                    keys.append(
                        Key(context=parent_path, target=(tag,), key_paths=((),))
                    )
                    blocked.add(target_path)
                else:
                    unkeyed.append(target_path)
                    notes.append(
                        f"no key distinguishes siblings at "
                        f"/{'/'.join(target_path)}; left unkeyed"
                    )
                continue
            keys.append(Key(context=parent_path, target=(tag,), key_paths=found))
            for key_path in found:
                blocked.add(target_path + key_path)
            queue.append(target_path)

    return MiningReport(
        spec=KeySpec(explicit_keys=keys), unkeyed_paths=unkeyed, notes=notes
    )


def _find_key(
    versions: list[Element],
    target_path: Path,
    groups: list[list[Element]],
    instances: list[Element],
    max_composite: int,
) -> tuple[Path, ...] | None:
    candidates = _candidate_paths(instances)

    def average_value_length(candidate: Path) -> float:
        total = 0
        counted = 0
        for node in instances[:50]:
            targets = navigate(node, candidate)
            if len(targets) == 1:
                total += len(value_at(targets[0]))
                counted += 1
        return total / counted if counted else float("inf")

    def global_distinctness(candidate: Path) -> float:
        """Fraction of instances with a globally unique value — real
        identifiers are unique across the whole collection, not merely
        within one parent's children."""
        values = []
        for node in instances:
            targets = navigate(node, candidate)
            if len(targets) == 1:
                values.append(value_at(targets[0]))
        if not values:
            return 0.0
        return len(set(values)) / len(values)

    # Stable-first, identifier-like-first, then compact-first: short,
    # globally unique, unchanging fields (ids, accession numbers) make
    # the best keys.
    ranked = sorted(
        candidates,
        key=lambda c: (
            _stability_rank(versions, target_path, c),
            -global_distinctness(c),
            average_value_length(c),
            c,
        ),
    )
    for candidate in ranked:
        if _values_unique(groups, (candidate,)):
            return (candidate,)
    for size in range(2, max_composite + 1):
        for combo in combinations(ranked, size):
            if _values_unique(groups, combo):
                return tuple(sorted(combo))
    return None
