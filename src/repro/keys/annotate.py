"""Annotate Keys (Sec. 4.1): attach its key value to every keyed node.

The module walks a document in document order with an explicit stack
(the paper's Algorithm *Annotate Keys*), classifies every element as
*keyed*, *frontier* or *beyond the frontier*, evaluates key-path values,
and enforces the key constraints the merge relies on:

* every key path exists uniquely at each keyed node (existence part of
  strong-key satisfaction);
* no two siblings in the same target set share a key value (uniqueness);
* every node above the frontier is keyed (coverage — the paper's second
  structural assumption).

The result is an :class:`AnnotatedDocument`: the unchanged tree plus a
side table of :class:`KeyLabel` annotations (the paper mutates the tree;
a side table keeps the input immutable, which the experiments rely on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..xmltree.model import Element, Text
from .paths import Path, format_path, navigate, value_at
from .spec import Key, KeySpec


class KeyViolationError(ValueError):
    """The document does not satisfy the key specification."""


class KeyCoverageError(KeyViolationError):
    """An unkeyed node occurs above the frontier (assumption 2, Sec. 3)."""


# A key value: ((key-path string, canonical value string), ...) sorted by
# key-path string.  ``()`` means "keyed by tag alone" (empty key-path set).
KeyValue = tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class KeyLabel:
    """The full label of a node: tag plus key value (Sec. 4.2 ``label(x)``)."""

    tag: str
    key: KeyValue

    def sort_token(self) -> tuple:
        """Token realizing the paper's ``<=lab`` order on labels.

        Orders by tag, then number of key components, then component
        paths, then component values.  Canonical value strings stand in
        for ``<v`` on values: the order differs from the paper's letter
        but is total and consistent across archive and version, which is
        all Nested Merge requires ("all that really matters ... is that
        nodes with identical key values are merged together").
        """
        return (self.tag, len(self.key), self.key)

    def __str__(self) -> str:
        if not self.key:
            return self.tag
        inner = ", ".join(f"{path}={value}" for path, value in self.key)
        return f"{self.tag}{{{inner}}}"


@dataclass
class AnnotatedDocument:
    """A document plus key labels for every keyed node."""

    root: Element
    spec: KeySpec
    labels: dict[int, KeyLabel]
    frontier_ids: set[int]

    def label(self, node: Element) -> Optional[KeyLabel]:
        """The node's key label, or ``None`` for unkeyed nodes."""
        return self.labels.get(id(node))

    def is_keyed(self, node: Element) -> bool:
        return id(node) in self.labels

    def is_frontier(self, node: Element) -> bool:
        return id(node) in self.frontier_ids


def compute_key_value(node: Element, key: Key, value_of=None) -> KeyValue:
    """Evaluate a node's key value under ``key``.

    Raises :class:`KeyViolationError` unless every key path exists
    uniquely at the node (the paper's strong keys require unique
    existence).  ``value_of`` overrides the target-value extractor
    (default :func:`repro.keys.paths.value_at`); the archive parser uses
    it to decode key targets stored in the Fig. 5 representation.
    """
    value_of = value_of or value_at
    components: list[tuple[str, str]] = []
    for key_path in key.key_paths:
        targets = navigate(node, key_path)
        path_text = format_path(key_path, absolute=False)
        if not targets:
            raise KeyViolationError(
                f"Key path {path_text!r} missing at <{node.tag}> "
                f"(key {key})"
            )
        if len(targets) > 1:
            raise KeyViolationError(
                f"Key path {path_text!r} not unique at <{node.tag}> "
                f"(key {key}): {len(targets)} occurrences"
            )
        components.append((path_text, value_of(targets[0])))
    components.sort(key=lambda item: item[0])
    return tuple(components)


def annotate_keys(root: Element, spec: KeySpec) -> AnnotatedDocument:
    """Annotate every keyed node of ``root`` with its key value.

    The traversal is a single document-order scan maintaining the
    root-to-node path (the paper's main stack ``M``); key-path values are
    evaluated through pointers into the subtree, the implementation the
    paper's analysis assumes.

    With an empty key specification the root is treated as the single
    frontier node and the document is otherwise unannotated — archiving
    then degenerates to the SCCS approach, as the paper prescribes.
    """
    labels: dict[int, KeyLabel] = {}
    frontier_ids: set[int] = set()

    if len(spec) == 0:
        labels[id(root)] = KeyLabel(tag=root.tag, key=())
        frontier_ids.add(id(root))
        return AnnotatedDocument(
            root=root, spec=spec, labels=labels, frontier_ids=frontier_ids
        )

    # Iterative document-order walk carrying the path from the root.
    stack: list[tuple[Element, Path]] = [(root, (root.tag,))]
    while stack:
        node, path = stack.pop()
        key = spec.key_for(path)
        if key is None:
            raise KeyCoverageError(
                f"Unkeyed node above the frontier: <{node.tag}> at "
                f"{format_path(path)}"
            )
        labels[id(node)] = KeyLabel(tag=node.tag, key=compute_key_value(node, key))
        if spec.is_frontier_path(path):
            frontier_ids.add(id(node))
            continue  # everything beneath is beyond the frontier
        _check_children_coverage(node, path)
        for child in node.element_children():
            stack.append((child, path + (child.tag,)))

    document = AnnotatedDocument(
        root=root, spec=spec, labels=labels, frontier_ids=frontier_ids
    )
    _check_sibling_uniqueness(document)
    return document


def _check_children_coverage(node: Element, path: Path) -> None:
    for child in node.children:
        if isinstance(child, Text) and child.text.strip():
            raise KeyCoverageError(
                f"Text content above the frontier under <{node.tag}> at "
                f"{format_path(path)}"
            )


def _check_sibling_uniqueness(document: AnnotatedDocument) -> None:
    """No two keyed siblings may share a key label (strong-key uniqueness)."""
    stack = [document.root]
    while stack:
        node = stack.pop()
        if document.is_frontier(node):
            continue
        seen: set[KeyLabel] = set()
        for child in node.element_children():
            label = document.label(child)
            if label is None:
                continue
            if label in seen:
                raise KeyViolationError(
                    f"Duplicate key value {label} among children of "
                    f"<{node.tag}>"
                )
            seen.add(label)
            stack.append(child)


def iter_keyed_nodes(document: AnnotatedDocument) -> Iterator[tuple[Element, KeyLabel]]:
    """Yield ``(node, label)`` for every keyed node in document order."""
    for node in document.root.iter_elements():
        label = document.label(node)
        if label is not None:
            yield node, label
