"""Myers' O(ND) shortest-edit-script algorithm (Myers 1986).

This is the engine behind ``unix diff``; the paper runs ``diff -d`` to
produce the smallest possible edit scripts for its delta repositories,
so a faithful baseline needs the same minimal-script guarantee.

:func:`diff_lines` returns a list of opcodes; :mod:`.editscript` turns
them into ed-style scripts, and the SCCS weave consumes them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class OpCode:
    """One run of a diff: ``kind`` is ``'equal'``, ``'delete'`` or
    ``'insert'``; ranges are half-open indexes into the two sequences."""

    kind: str
    a_start: int
    a_end: int
    b_start: int
    b_end: int


def diff_lines(a: Sequence[str], b: Sequence[str]) -> list[OpCode]:
    """Shortest edit script between two line sequences.

    Runs Myers' greedy algorithm with the standard common-prefix/suffix
    reduction.  The result is minimal in the number of inserted plus
    deleted lines (what ``diff -d`` optimizes).
    """
    prefix = 0
    limit = min(len(a), len(b))
    while prefix < limit and a[prefix] == b[prefix]:
        prefix += 1
    suffix = 0
    while (
        suffix < limit - prefix
        and a[len(a) - 1 - suffix] == b[len(b) - 1 - suffix]
    ):
        suffix += 1

    # Intern lines as integers: the O(ND) inner loop then compares ints
    # rather than strings, which matters on the experiments' large files.
    intern: dict[str, int] = {}
    core_a = [
        intern.setdefault(line, len(intern)) for line in a[prefix : len(a) - suffix]
    ]
    core_b = [
        intern.setdefault(line, len(intern)) for line in b[prefix : len(b) - suffix]
    ]
    steps = _myers_steps(core_a, core_b)

    ops: list[OpCode] = []
    ax = bx = 0

    def emit(kind: str, a_len: int, b_len: int) -> None:
        nonlocal ax, bx
        op = OpCode(kind, prefix + ax, prefix + ax + a_len, prefix + bx, prefix + bx + b_len)
        ax += a_len
        bx += b_len
        if ops and ops[-1].kind == kind:
            last = ops[-1]
            ops[-1] = OpCode(kind, last.a_start, op.a_end, last.b_start, op.b_end)
        else:
            ops.append(op)

    if prefix:
        ops.append(OpCode("equal", 0, prefix, 0, prefix))
    for kind in steps:
        if kind == "equal":
            emit("equal", 1, 1)
        elif kind == "delete":
            emit("delete", 1, 0)
        else:
            emit("insert", 0, 1)
    if suffix:
        start_a = len(a) - suffix
        start_b = len(b) - suffix
        if ops and ops[-1].kind == "equal" and ops[-1].a_end == start_a:
            last = ops[-1]
            ops[-1] = OpCode("equal", last.a_start, len(a), last.b_start, len(b))
        else:
            ops.append(OpCode("equal", start_a, len(a), start_b, len(b)))
    return ops


def _myers_steps(a: list[int], b: list[int]) -> list[str]:
    """Unit steps ('equal' / 'delete' / 'insert') of a shortest script."""
    n, m = len(a), len(b)
    if n == 0:
        return ["insert"] * m
    if m == 0:
        return ["delete"] * n

    max_d = n + m
    offset = max_d
    v = [0] * (2 * max_d + 1)
    # Per-depth snapshots keep only the active band |k| <= d + 1, so the
    # trace costs O(D^2) rather than O(D * (N + M)) memory.
    trace: list[tuple[int, list[int]]] = []
    depth = 0
    found = False
    for d in range(max_d + 1):
        band_start = max(0, offset - d - 1)
        trace.append((band_start, v[band_start : offset + d + 2]))
        for k in range(-d, d + 1, 2):
            if k == -d or (k != d and v[offset + k - 1] < v[offset + k + 1]):
                x = v[offset + k + 1]  # downward move: insert from b
            else:
                x = v[offset + k - 1] + 1  # rightward move: delete from a
            y = x - k
            while x < n and y < m and a[x] == b[y]:
                x += 1
                y += 1
            v[offset + k] = x
            if x >= n and y >= m:
                depth = d
                found = True
                break
        if found:
            break

    # Backtrack from (n, m) using the per-depth snapshots of v.
    steps_reversed: list[str] = []
    x, y = n, m
    for d in range(depth, 0, -1):
        band_start, v_prev = trace[d]
        local = offset - band_start  # maps k=0 to its snapshot index
        k = x - y
        if k == -d or (k != d and v_prev[local + k - 1] < v_prev[local + k + 1]):
            prev_k = k + 1
        else:
            prev_k = k - 1
        prev_x = v_prev[local + prev_k]
        prev_y = prev_x - prev_k
        while x > prev_x and y > prev_y:  # snake: matched lines
            steps_reversed.append("equal")
            x -= 1
            y -= 1
        if x == prev_x:
            steps_reversed.append("insert")
            y -= 1
        else:
            steps_reversed.append("delete")
            x -= 1
        assert (x, y) == (prev_x, prev_y)
    while x > 0 and y > 0:  # depth-0 snake
        steps_reversed.append("equal")
        x -= 1
        y -= 1
    assert x == 0 and y == 0, "backtrack did not reach the origin"
    steps_reversed.reverse()
    return steps_reversed


def edit_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Number of inserted plus deleted lines in the shortest script."""
    return sum(
        (op.a_end - op.a_start) + (op.b_end - op.b_start)
        for op in diff_lines(a, b)
        if op.kind != "equal"
    )


def common_lines(a: Sequence[str], b: Sequence[str]) -> int:
    """Number of matched lines in the shortest script (the LCS length)."""
    return sum(
        op.a_end - op.a_start for op in diff_lines(a, b) if op.kind == "equal"
    )
