"""Delta-based version repositories — the paper's competitors (Sec. 5).

Two variants, both storing the first version in full plus line-diff
edit scripts:

* :class:`IncrementalDiffRepository` — ``V1 + diff(V1,V2) + diff(V2,V3)
  + ...`` (the "incremental diff" approach; CVS-style, modulo direction,
  which the paper argues is size-equivalent);
* :class:`CumulativeDiffRepository` — ``V1 + diff(V1,V2) + diff(V1,V3)
  + ...``; any version is one script application away, but storage grows
  quadratically (Sec. 5.2).

Documents are stored in the paper's line-oriented serialization, so the
line diffs are as compact as ``diff -d`` on the paper's files.
"""

from __future__ import annotations

from typing import Optional

from ..xmltree.model import Element
from ..xmltree.parser import parse_document
from ..xmltree.serializer import to_pretty_string
from .editscript import apply_script, make_script, parse_script, render_script

_EMPTY_MARKER = ""  # an empty version serializes to the empty text


def _serialize(document: Optional[Element]) -> str:
    if document is None:
        return _EMPTY_MARKER
    return to_pretty_string(document)


def _deserialize(text: str) -> Optional[Element]:
    if not text.strip():
        return None
    return parse_document(text)


class _DiffRepositoryBase:
    """Shared bookkeeping: stored scripts and size accounting."""

    def __init__(self) -> None:
        self._base_text: Optional[str] = None
        self._scripts: list[str] = []
        self._latest_text: str = _EMPTY_MARKER

    @property
    def version_count(self) -> int:
        if self._base_text is None:
            return 0
        return 1 + len(self._scripts)

    def total_bytes(self) -> int:
        """Total storage: the base version plus every delta (UTF-8)."""
        if self._base_text is None:
            return 0
        size = len(self._base_text.encode("utf-8"))
        for script in self._scripts:
            size += len(script.encode("utf-8"))
        return size

    def pieces(self) -> list[str]:
        """The stored texts (base first) — used by compression studies."""
        if self._base_text is None:
            return []
        return [self._base_text, *self._scripts]

    def _check_version(self, version: int) -> None:
        if not 1 <= version <= self.version_count:
            raise IndexError(
                f"Version {version} not in repository (have 1..{self.version_count})"
            )


class IncrementalDiffRepository(_DiffRepositoryBase):
    """V1 plus forward deltas between consecutive versions."""

    def add_version(self, document: Optional[Element]) -> None:
        text = _serialize(document)
        if self._base_text is None:
            self._base_text = text
        else:
            old_lines = self._latest_text.split("\n")
            new_lines = text.split("\n")
            self._scripts.append(render_script(make_script(old_lines, new_lines)))
        self._latest_text = text

    def retrieve(self, version: int) -> Optional[Element]:
        """Reconstruct by replaying ``version - 1`` deltas."""
        self._check_version(version)
        assert self._base_text is not None
        lines = self._base_text.split("\n")
        for script in self._scripts[: version - 1]:
            lines = apply_script(lines, parse_script(script))
        return _deserialize("\n".join(lines))

    def applications_for(self, version: int) -> int:
        """Number of delta applications retrieval needs (cost model)."""
        self._check_version(version)
        return version - 1


class CumulativeDiffRepository(_DiffRepositoryBase):
    """V1 plus a delta from V1 to every subsequent version."""

    def add_version(self, document: Optional[Element]) -> None:
        text = _serialize(document)
        if self._base_text is None:
            self._base_text = text
        else:
            base_lines = self._base_text.split("\n")
            new_lines = text.split("\n")
            self._scripts.append(render_script(make_script(base_lines, new_lines)))
        self._latest_text = text

    def retrieve(self, version: int) -> Optional[Element]:
        """Reconstruct with at most one script application."""
        self._check_version(version)
        assert self._base_text is not None
        if version == 1:
            return _deserialize(self._base_text)
        lines = self._base_text.split("\n")
        script = self._scripts[version - 2]
        return _deserialize("\n".join(apply_script(lines, parse_script(script))))

    def applications_for(self, version: int) -> int:
        self._check_version(version)
        return 0 if version == 1 else 1


class FullCopyRepository:
    """Every version stored whole — the "keep all versions" strawman
    (Swiss-Prot's actual practice, per the introduction)."""

    def __init__(self) -> None:
        self._texts: list[str] = []

    @property
    def version_count(self) -> int:
        return len(self._texts)

    def add_version(self, document: Optional[Element]) -> None:
        self._texts.append(_serialize(document))

    def retrieve(self, version: int) -> Optional[Element]:
        if not 1 <= version <= len(self._texts):
            raise IndexError(f"Version {version} not stored")
        return _deserialize(self._texts[version - 1])

    def total_bytes(self) -> int:
        return sum(len(text.encode("utf-8")) for text in self._texts)

    def pieces(self) -> list[str]:
        return list(self._texts)

    def concatenated(self) -> str:
        """All versions side by side (the ``xmill(V1+...+Vi)`` input)."""
        return "\n".join(self._texts)
