"""An SCCS-style weave archiver over line files (Rochkind 1975; Sec. 8).

SCCS keeps one *weave*: every line that ever existed, in order, tagged
with the set of versions in which it is visible.  Retrieving any version
is a single scan.  The paper's archiver "is more like SCCS" than CVS;
when a document has no keys at all, key-based archiving degenerates to
exactly this structure (Sec. 2), and *further compaction* applies it
below the frontier.

This standalone implementation works on arbitrary line sequences and is
used both as a baseline in its own right and as the reference the core
weave is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.versionset import VersionSet
from .myers import diff_lines


@dataclass
class WeaveLine:
    """One line of the weave plus the versions in which it is visible."""

    text: str
    versions: VersionSet


@dataclass
class SCCSWeave:
    """A line weave over a sequence of file versions."""

    lines: list[WeaveLine] = field(default_factory=list)
    version_count: int = 0

    def add_version(self, new_lines: Sequence[str]) -> None:
        """Weave in the next version (diffed against the previous one)."""
        version = self.version_count + 1
        visible_indexes = [
            index
            for index, line in enumerate(self.lines)
            if self.version_count > 0 and self.version_count in line.versions
        ]
        old_lines = [self.lines[index].text for index in visible_indexes]
        ops = diff_lines(old_lines, list(new_lines))

        kept: set[int] = set()
        insert_before: dict[int, list[str]] = {}
        for op in ops:
            if op.kind == "equal":
                kept.update(range(op.a_start, op.a_end))
            elif op.kind == "insert":
                insert_before.setdefault(op.a_start, []).extend(
                    new_lines[op.b_start : op.b_end]
                )

        rebuilt: list[WeaveLine] = []
        position = 0
        visible_set = set(visible_indexes)
        for index, line in enumerate(self.lines):
            if index not in visible_set:
                rebuilt.append(line)
                continue
            for text in insert_before.pop(position, []):
                rebuilt.append(WeaveLine(text=text, versions=VersionSet([version])))
            if position in kept:
                line.versions.add(version)
            rebuilt.append(line)
            position += 1
        for text in insert_before.pop(position, []):
            rebuilt.append(WeaveLine(text=text, versions=VersionSet([version])))
        assert not insert_before, "unplaced weave insertions"
        self.lines = rebuilt
        self.version_count = version

    def retrieve(self, version: int) -> list[str]:
        """Single-scan reconstruction of a version's lines."""
        if not 1 <= version <= self.version_count:
            raise IndexError(
                f"Version {version} not woven (have 1..{self.version_count})"
            )
        return [line.text for line in self.lines if version in line.versions]

    def line_history(self, text: str) -> list[VersionSet]:
        """Timestamps of every weave line with the given text.

        SCCS's weakness (Sec. 8): a line deleted and re-inserted appears
        as *multiple* entries — the weave has no key to unify them.
        """
        return [line.versions.copy() for line in self.lines if line.text == text]

    def total_bytes(self) -> int:
        """Serialized weave size: lines plus interval-set annotations."""
        return len(self.serialize().encode("utf-8"))

    def serialize(self) -> str:
        parts = [f"#sccs {self.version_count}"]
        for line in self.lines:
            parts.append(f"^{line.versions.to_text()}")
            parts.append(line.text)
        return "\n".join(parts) + "\n"

    @classmethod
    def deserialize(cls, text: str) -> "SCCSWeave":
        lines = text.split("\n")
        if not lines or not lines[0].startswith("#sccs "):
            raise ValueError("Not a serialized SCCS weave")
        weave = cls(version_count=int(lines[0][6:]))
        index = 1
        while index + 1 < len(lines):
            marker = lines[index]
            if not marker.startswith("^"):
                if marker == "":
                    index += 1
                    continue
                raise ValueError(f"Bad weave marker {marker!r}")
            weave.lines.append(
                WeaveLine(
                    text=lines[index + 1],
                    versions=VersionSet.parse(marker[1:]),
                )
            )
            index += 2
        return weave
