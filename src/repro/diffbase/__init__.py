"""Diff-based competitors (Sec. 5) and the SCCS weave (Sec. 8).

From-scratch Myers O(ND) line diff, ed-style edit scripts (the ``diff``
output format of Fig. 1), incremental and cumulative delta
repositories, and an SCCS-style weave archiver.
"""

from .editscript import (
    EditCommand,
    EditScriptError,
    apply_script,
    apply_text,
    diff_text,
    make_script,
    parse_script,
    render_script,
    script_size,
)
from .myers import OpCode, common_lines, diff_lines, edit_distance
from .repository import (
    CumulativeDiffRepository,
    FullCopyRepository,
    IncrementalDiffRepository,
)
from .sccs import SCCSWeave, WeaveLine
from .treediff import TreeDiffError, apply_tree_delta, tree_delta_size, tree_diff
from .checkpoint import CheckpointedDiffRepository

__all__ = [
    "CumulativeDiffRepository",
    "EditCommand",
    "EditScriptError",
    "FullCopyRepository",
    "IncrementalDiffRepository",
    "CheckpointedDiffRepository",
    "OpCode",
    "TreeDiffError",
    "apply_tree_delta",
    "tree_delta_size",
    "tree_diff",
    "SCCSWeave",
    "WeaveLine",
    "apply_script",
    "apply_text",
    "common_lines",
    "diff_lines",
    "diff_text",
    "edit_distance",
    "make_script",
    "parse_script",
    "render_script",
    "script_size",
]
