"""ed-style edit scripts — the output format of ``unix diff`` (Fig. 1).

The paper stores deltas as the output of ``diff -d``: commands like
``2,3c`` followed by replacement lines (its Fig. 1 shows exactly this
form).  This module renders Myers opcodes into that format, measures the
script's byte size (the quantity every storage experiment plots), and
applies scripts forward to reconstruct versions.

Command syntax (classic ed diff, as consumed by ``patch -e``):

* ``NaM`` / ``Na`` — append the following lines after line ``N`` of the
  old file;
* ``N,McP`` / ``Nc`` — change old lines ``N..M`` to the following lines;
* ``N,Md`` / ``Nd`` — delete old lines ``N..M``.

We emit the terse form (``2,3c`` + lines), matching Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .myers import diff_lines


@dataclass(frozen=True)
class EditCommand:
    """One edit-script command."""

    kind: str  # 'a' (append), 'c' (change), 'd' (delete)
    a_start: int  # 1-based inclusive, per ed conventions
    a_end: int
    lines: tuple[str, ...] = ()


class EditScriptError(ValueError):
    """Raised when a script cannot be parsed or applied."""


def make_script(old: Sequence[str], new: Sequence[str]) -> list[EditCommand]:
    """Shortest edit script between two line sequences."""
    ops = diff_lines(old, new)
    commands: list[EditCommand] = []
    index = 0
    while index < len(ops):
        op = ops[index]
        if op.kind == "equal":
            index += 1
            continue
        if (
            op.kind == "delete"
            and index + 1 < len(ops)
            and ops[index + 1].kind == "insert"
            and ops[index + 1].a_start == op.a_end
        ):
            insert = ops[index + 1]
            commands.append(
                EditCommand(
                    kind="c",
                    a_start=op.a_start + 1,
                    a_end=op.a_end,
                    lines=tuple(new[insert.b_start : insert.b_end]),
                )
            )
            index += 2
            continue
        if op.kind == "delete":
            commands.append(
                EditCommand(kind="d", a_start=op.a_start + 1, a_end=op.a_end)
            )
        else:  # insert
            commands.append(
                EditCommand(
                    kind="a",
                    a_start=op.a_start,  # append *after* this old line
                    a_end=op.a_start,
                    lines=tuple(new[op.b_start : op.b_end]),
                )
            )
        index += 1
    return commands


def render_script(commands: list[EditCommand]) -> str:
    """Render commands in the terse ``2,3c`` form of Fig. 1."""
    parts: list[str] = []
    for command in commands:
        if command.a_start == command.a_end or command.kind == "a":
            address = str(command.a_start)
        else:
            address = f"{command.a_start},{command.a_end}"
        parts.append(f"{address}{command.kind}")
        parts.extend(command.lines)
        if command.kind in ("a", "c"):
            parts.append(".")
    return "\n".join(parts) + ("\n" if parts else "")


def parse_script(text: str) -> list[EditCommand]:
    """Parse a script previously produced by :func:`render_script`."""
    commands: list[EditCommand] = []
    lines = text.split("\n")
    index = 0
    while index < len(lines):
        header = lines[index]
        if not header:
            index += 1
            continue
        kind = header[-1]
        if kind not in "acd":
            raise EditScriptError(f"Bad command header {header!r}")
        address = header[:-1]
        try:
            if "," in address:
                start_text, end_text = address.split(",", 1)
                a_start, a_end = int(start_text), int(end_text)
            else:
                a_start = a_end = int(address)
        except ValueError as err:
            raise EditScriptError(f"Bad command address in {header!r}") from err
        index += 1
        body: list[str] = []
        if kind in ("a", "c"):
            while index < len(lines) and lines[index] != ".":
                body.append(lines[index])
                index += 1
            if index >= len(lines):
                raise EditScriptError(f"Unterminated {kind} command at line {a_start}")
            index += 1  # consume the '.'
        commands.append(
            EditCommand(kind=kind, a_start=a_start, a_end=a_end, lines=tuple(body))
        )
    return commands


def apply_script(old: Sequence[str], commands: list[EditCommand]) -> list[str]:
    """Apply a forward script to ``old``, producing the new line list."""
    result: list[str] = []
    cursor = 0  # 0-based index into old
    for command in commands:
        if command.kind == "a":
            take = command.a_start  # append after old line N (1-based)
            if take < cursor:
                raise EditScriptError("Script commands out of order")
            result.extend(old[cursor:take])
            result.extend(command.lines)
            cursor = take
        else:  # c or d consume old lines a_start..a_end
            start = command.a_start - 1
            if start < cursor:
                raise EditScriptError("Script commands out of order")
            result.extend(old[cursor:start])
            cursor = command.a_end
            if cursor > len(old):
                raise EditScriptError(
                    f"Command {command.kind} addresses line {command.a_end}, "
                    f"but the file has {len(old)} lines"
                )
            if command.kind == "c":
                result.extend(command.lines)
    result.extend(old[cursor:])
    return result


def diff_text(old: str, new: str) -> str:
    """Convenience: edit script between two newline-joined texts."""
    return render_script(make_script(old.split("\n"), new.split("\n")))


def apply_text(old: str, script: str) -> str:
    """Convenience: apply a rendered script to a text."""
    return "\n".join(apply_script(old.split("\n"), parse_script(script)))


def script_size(old: Sequence[str], new: Sequence[str]) -> int:
    """Byte size of the rendered shortest edit script (UTF-8)."""
    return len(render_script(make_script(old, new)).encode("utf-8"))
