"""Checkpointed delta repositories (Sec. 9, open issues).

The conclusion proposes comparing against "delta-based repositories
where checkpointing may occur periodically: ... an entire version of
data is stored as a whole for every kth version".  This bounds
retrieval to at most ``k - 1`` delta applications at the cost of
storing periodic full copies — the classic space/retrieval-time dial
between the incremental (k = ∞) and full-copy (k = 1) extremes.
"""

from __future__ import annotations

from typing import Optional

from ..xmltree.model import Element
from ..xmltree.parser import parse_document
from ..xmltree.serializer import to_pretty_string
from .editscript import apply_script, make_script, parse_script, render_script


class CheckpointedDiffRepository:
    """V1 + deltas, with a full snapshot every ``interval`` versions."""

    def __init__(self, interval: int) -> None:
        if interval < 1:
            raise ValueError("Checkpoint interval must be >= 1")
        self.interval = interval
        # One entry per version: ("full", text) or ("delta", script).
        self._entries: list[tuple[str, str]] = []
        self._latest_text = ""

    @property
    def version_count(self) -> int:
        return len(self._entries)

    def add_version(self, document: Optional[Element]) -> None:
        text = to_pretty_string(document) if document is not None else ""
        index = len(self._entries)
        if index % self.interval == 0:
            self._entries.append(("full", text))
        else:
            script = render_script(
                make_script(self._latest_text.split("\n"), text.split("\n"))
            )
            self._entries.append(("delta", script))
        self._latest_text = text

    def retrieve(self, version: int) -> Optional[Element]:
        if not 1 <= version <= len(self._entries):
            raise IndexError(
                f"Version {version} not stored (have 1..{len(self._entries)})"
            )
        index = version - 1
        checkpoint = (index // self.interval) * self.interval
        kind, payload = self._entries[checkpoint]
        assert kind == "full"
        lines = payload.split("\n")
        for position in range(checkpoint + 1, index + 1):
            kind, payload = self._entries[position]
            assert kind == "delta"
            lines = apply_script(lines, parse_script(payload))
        text = "\n".join(lines)
        return parse_document(text) if text.strip() else None

    def applications_for(self, version: int) -> int:
        """Delta applications retrieval needs: at most interval - 1."""
        if not 1 <= version <= len(self._entries):
            raise IndexError(f"Version {version} not stored")
        index = version - 1
        return index - (index // self.interval) * self.interval

    def total_bytes(self) -> int:
        return sum(len(payload.encode("utf-8")) for _, payload in self._entries)

    def pieces(self) -> list[str]:
        return [payload for _, payload in self._entries]

    def checkpoint_count(self) -> int:
        return sum(1 for kind, _ in self._entries if kind == "full")
